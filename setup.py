"""Setup shim: keeps ``pip install -e .`` working on offline
environments without the ``wheel`` package (legacy editable install)."""

from setuptools import setup

setup()
