"""Crash recovery in action: power loss, remount and the durability audit.

Three short scenes on the small test SSD (E19):

1. **Pulling the plug** -- a power loss mid-workload: in-flight
   programs tear, the device remounts by scanning every page's OOB
   metadata, and the workload carries on.  The durability audit checks
   that every acknowledged write survived.
2. **The checkpoint trade** -- same crash, but the FTL checkpoints its
   mapping periodically and journals updates in battery-backed RAM:
   mounting replays a short journal instead of scanning the device,
   at the price of mapping-page writes during the run.
3. **Batteries matter** -- the write buffer with and without
   battery-backed RAM: buffered data dies with the power unless the
   battery holds, but acknowledged writes are never lost either way
   (the volatile buffer is write-through).

Run with::

    python examples/crash_recovery_demo.py [--sanitize] [--json PATH]

``--sanitize`` arms the full invariant sanitizer on every scene;
``--json PATH`` writes the collected metrics for CI artifacts.
"""

import argparse
import json

from repro import FaultPlan, FtlKind, RecoveryStrategy, Simulation, small_config
from repro.workloads import RandomWriterThread

CRASH_NS = 3_000_000
OUTAGE_NS = 500_000


def crash_config(
    strategy=RecoveryStrategy.OOB_SCAN,
    battery=True,
    sanitize=False,
    ftl="page",
):
    config = small_config()
    config.controller.ftl = FtlKind(ftl)
    config.controller.write_buffer_pages = 16
    config.controller.write_buffer_battery_backed = battery
    config.crash.strategy = strategy
    config.sanitize = sanitize
    config.reliability.fault_plan = FaultPlan().power_loss(
        at_ns=CRASH_NS, off_ns=OUTAGE_NS
    )
    return config


def run_crash(config, count=800):
    simulation = Simulation(config)
    simulation.add_thread(RandomWriterThread("app", count=count))
    return simulation.run()


def scene_1_pulling_the_plug(sanitize: bool) -> dict:
    print("-- scene 1: pulling the plug (OOB scan remount) " + "-" * 21)
    result = run_crash(crash_config(sanitize=sanitize))
    summary = result.summary()
    report = result.mount_reports[0]
    print(f"  power lost at       : {report.loss_ns / 1e6:.1f} ms")
    print(f"  torn pages          : {summary['torn_pages']:.0f} "
          "(programs caught mid-flight)")
    print(f"  pages scanned       : {summary['recovery_scanned_pages']:.0f}")
    print(f"  mount time          : {summary['mount_time_ms']:.3f} ms")
    print(f"  unacked data lost   : {summary['lost_writes']:.0f} "
          "(all unacknowledged -- the audit proves it)")
    print(f"  workload finished   : {not result.incomplete}")
    print()
    return {f"scene1_{k}": summary[k] for k in (
        "power_losses", "mount_time_ms", "recovery_scanned_pages",
        "lost_writes", "torn_pages",
    )}


def scene_2_the_checkpoint_trade(sanitize: bool) -> dict:
    print("-- scene 2: the checkpoint trade " + "-" * 36)
    metrics = {}
    for strategy in (RecoveryStrategy.OOB_SCAN, RecoveryStrategy.CHECKPOINT_JOURNAL):
        summary = run_crash(
            crash_config(strategy=strategy, sanitize=sanitize)
        ).summary()
        name = strategy.value
        print(f"  [{name}]")
        print(f"    mount time        : {summary['mount_time_ms']:.3f} ms")
        print(f"    pages scanned     : {summary['recovery_scanned_pages']:.0f}")
        print(f"    records replayed  : {summary['recovery_replayed_records']:.0f}")
        print(f"    checkpoint pages  : {summary['checkpoint_pages_written']:.0f} "
              "(runtime write amplification)")
        metrics[f"scene2_{name}_mount_time_ms"] = summary["mount_time_ms"]
        metrics[f"scene2_{name}_checkpoint_pages"] = summary[
            "checkpoint_pages_written"
        ]
    print()
    return metrics


def scene_3_batteries_matter(sanitize: bool) -> dict:
    print("-- scene 3: batteries matter " + "-" * 40)
    metrics = {}
    for battery in (True, False):
        summary = run_crash(
            crash_config(battery=battery, sanitize=sanitize)
        ).summary()
        name = "battery" if battery else "volatile"
        print(f"  [{name} write buffer]")
        print(f"    buffered loss     : "
              f"{summary['lost_writes'] - summary['torn_pages']:.0f} pages")
        print(f"    torn in-flight    : {summary['torn_pages']:.0f} pages")
        metrics[f"scene3_{name}_lost_writes"] = summary["lost_writes"]
        metrics[f"scene3_{name}_torn_pages"] = summary["torn_pages"]
    print("  (acknowledged writes lost, either mode: 0 -- audited)")
    print()
    return metrics


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sanitize", action="store_true",
        help="arm the runtime invariant sanitizer in every scene",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write collected metrics to PATH as JSON",
    )
    args = parser.parse_args(argv)
    metrics = {}
    metrics.update(scene_1_pulling_the_plug(args.sanitize))
    metrics.update(scene_2_the_checkpoint_trade(args.sanitize))
    metrics.update(scene_3_batteries_matter(args.sanitize))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
        print(f"metrics written to {args.json}")


if __name__ == "__main__":
    main()
