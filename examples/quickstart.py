"""Quickstart: simulate an SSD, run a workload, read the numbers.

Run with::

    python examples/quickstart.py
"""

from repro import Simulation, demo_config
from repro.workloads import MixedWorkloadThread, precondition_sequential


def main() -> None:
    # 1. Configure the simulated system.  Every knob of every layer is a
    #    field on this object -- geometry, chip timings, FTL, GC, wear
    #    leveling, schedulers, queue depth, open interface.
    config = demo_config(seed=7)
    print(config.describe())
    print()

    # 2. Build the simulation and attach workload threads.  The
    #    preparation thread writes the whole logical space first (the
    #    paper's well-defined-state methodology); the measured thread
    #    only starts once it finishes.
    simulation = Simulation(config)
    prep = precondition_sequential(config.logical_pages)
    simulation.add_thread(prep)
    simulation.add_thread(
        MixedWorkloadThread("app", count=20_000, read_fraction=0.5, depth=16),
        depends_on=[prep.name],
    )

    # 3. Run to completion (virtual time) and inspect the results.
    result = simulation.run()
    print(result.report())
    print()

    # Per-thread statistics exclude the preparation phase:
    app = result.thread_stats["app"]
    print(app.report())


if __name__ == "__main__":
    main()
