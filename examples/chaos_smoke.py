"""Chaos smoke: SIGKILL a live campaign, resume it, audit the cache.

The executable proof behind PR 8's robustness claims, and the script CI
runs as the ``chaos-smoke`` job:

1. run a reference 16-cell sweep to completion (separate store);
2. start the same sweep in a child process, SIGKILL it after a few
   cells have been journalled (no cleanup, no atexit -- the OOM-killer
   treatment);
3. ``python -m repro.service resume`` the dead job and assert
   - the grid completes,
   - every journalled cell was *replayed*, zero re-runs,
   - every summary is byte-identical to the uninterrupted reference;
4. ``cache verify`` must come back clean;
5. corruption drill: truncate one cache entry and scribble over
   another, assert ``cache verify`` fails loudly, ``cache repair``
   quarantines both, and a final ``cache verify`` is clean.

Usage::

    PYTHONPATH=src python examples/chaos_smoke.py
    PYTHONPATH=src python examples/chaos_smoke.py --ios 500 --kill-after 3
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

AXES = ["controller.gc_greediness=1,2,3,4", "host.max_outstanding=4,8,16,32"]
CELLS = 16


def log(message: str) -> None:
    print(f"[chaos-smoke] {message}", flush=True)


def fail(message: str) -> "int":
    print(f"[chaos-smoke] FAIL: {message}", file=sys.stderr, flush=True)
    return 1


def service_cmd(*args: str) -> list[str]:
    return [sys.executable, "-m", "repro.service", *args]


def run_cli(*args: str, check: bool = True) -> subprocess.CompletedProcess:
    process = subprocess.run(
        service_cmd(*args), capture_output=True, text=True
    )
    if check and process.returncode != 0:
        raise RuntimeError(
            f"command {' '.join(args)} exited {process.returncode}:\n"
            f"{process.stdout}\n{process.stderr}"
        )
    return process


def run_flags(work: Path, ios: int, tag: str) -> list[str]:
    flags = []
    for axis in AXES:
        flags += ["--axis", axis]
    flags += [
        "--ios", str(ios),
        "--cache-dir", str(work / f"cache-{tag}"),
        "--journal-dir", str(work / f"journals-{tag}"),
        "--no-watch",
        "--json", str(work / f"report-{tag}.json"),
    ]
    return flags


def journalled_cells(journal: Path) -> list[int]:
    """Spec positions of intact cell records in a (possibly torn)
    journal -- the same prefix-tolerant read the journal itself does."""
    if not journal.exists():
        return []
    positions = []
    for line in journal.read_text(encoding="utf-8").splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            break  # torn tail
        if record.get("type") == "cell":
            positions.append(int(record["index"]))
    return positions


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ios", type=int, default=2000, help="IOs per cell")
    parser.add_argument(
        "--kill-after", type=int, default=3,
        help="SIGKILL the child once this many cells are journalled",
    )
    parser.add_argument(
        "--work-dir", default=".chaos-smoke",
        help="scratch directory (wiped at start)",
    )
    args = parser.parse_args()

    work = Path(args.work_dir)
    shutil.rmtree(work, ignore_errors=True)
    work.mkdir(parents=True)

    # ------------------------------------------------------------------
    # 1. The uninterrupted reference.
    # ------------------------------------------------------------------
    log(f"reference pass: {CELLS} cells x {args.ios} IOs")
    run_cli("run", *run_flags(work, args.ios, "reference"))
    reference = json.loads((work / "report-reference.json").read_text())
    if reference["state"] != "done" or reference["completed_cells"] != CELLS:
        return fail(f"reference pass did not complete: {reference['state']}")

    # ------------------------------------------------------------------
    # 2. The doomed pass: SIGKILL mid-sweep.
    # ------------------------------------------------------------------
    log("chaos pass: starting the same sweep, then SIGKILL")
    journal = work / "journals-chaos" / "job-0001.jsonl"
    child = subprocess.Popen(
        service_cmd("run", *run_flags(work, args.ios, "chaos")),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 300.0
    while len(journalled_cells(journal)) < args.kill_after:
        if child.poll() is not None:
            return fail("chaos child finished before it could be killed")
        if time.monotonic() > deadline:
            child.kill()
            return fail("chaos child made no journalled progress in 300s")
        time.sleep(0.02)
    os.kill(child.pid, signal.SIGKILL)
    child.wait(timeout=30)
    killed_at = journalled_cells(journal)
    log(f"SIGKILLed with {len(killed_at)} cells journalled: {sorted(killed_at)}")
    if not killed_at or len(killed_at) >= CELLS:
        return fail("kill did not land mid-sweep")

    # ------------------------------------------------------------------
    # 3. Resume and compare bytes.
    # ------------------------------------------------------------------
    log("resume pass: finishing the dead job from its journal")
    run_cli(
        "resume", "job-0001",
        "--cache-dir", str(work / "cache-chaos"),
        "--journal-dir", str(work / "journals-chaos"),
        "--no-watch",
        "--json", str(work / "report-resumed.json"),
    )
    resumed = json.loads((work / "report-resumed.json").read_text())
    if resumed["state"] != "done" or resumed["completed_cells"] != CELLS:
        return fail(f"resumed job did not complete: {resumed['state']}")

    if resumed["resumed_cells"] != len(killed_at):
        return fail(
            f"{len(killed_at)} cells were journalled but "
            f"{resumed['resumed_cells']} were replayed"
        )
    for position in killed_at:
        state = resumed["cells"][position]["state"]
        if state != "resumed":
            return fail(
                f"journalled cell #{position} was {state}, not replayed "
                "(it re-ran)"
            )
    log(f"zero re-runs: all {len(killed_at)} journalled cells replayed")

    mismatches = [
        index
        for index, (ref, res) in enumerate(
            zip(reference["cells"], resumed["cells"])
        )
        if ref["summary_text"] != res["summary_text"]
    ]
    if mismatches:
        return fail(f"summaries differ from the reference at cells {mismatches}")
    log(f"bit-identical: {CELLS}/{CELLS} summaries byte-equal to the reference")

    # ------------------------------------------------------------------
    # 4. The surviving store must audit clean.
    # ------------------------------------------------------------------
    verify = run_cli(
        "cache", "verify", "--cache-dir", str(work / "cache-chaos"), check=False
    )
    if verify.returncode != 0:
        return fail(f"cache verify failed after resume:\n{verify.stdout}")
    log("cache verify clean after the kill + resume")

    # ------------------------------------------------------------------
    # 5. Corruption drill: verify fails loudly, repair quarantines.
    # ------------------------------------------------------------------
    cache_dir = work / "cache-chaos"
    entries = sorted(
        path
        for path in cache_dir.rglob("*.json")
        if path.parent.name != "quarantine"
    )
    if len(entries) < 2:
        return fail(f"expected >= 2 cache entries, found {len(entries)}")
    entries[0].write_bytes(entries[0].read_bytes()[:-30])  # truncated
    entries[1].write_text("{ scribbled over", encoding="utf-8")  # garbage
    log(f"corrupted 2 of {len(entries)} entries")

    verify = run_cli("cache", "verify", "--cache-dir", str(cache_dir), check=False)
    if verify.returncode == 0:
        return fail("cache verify passed over corrupted entries")
    log("cache verify detected the corruption (non-zero exit)")

    run_cli("cache", "repair", "--cache-dir", str(cache_dir))
    verify = run_cli("cache", "verify", "--cache-dir", str(cache_dir), check=False)
    if verify.returncode != 0:
        return fail(f"cache verify still failing after repair:\n{verify.stdout}")
    quarantined = list(cache_dir.rglob("quarantine/*.json"))
    if len(quarantined) != 2:
        return fail(f"expected 2 quarantined entries, found {len(quarantined)}")
    log("cache repair quarantined both corrupt entries; verify clean")

    log("PASS: kill/resume bit-identity, zero re-runs, integrity audit")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
