"""Opening the block device interface (paper Section 2.2 and the demo's
"Open Interface Appetizers").

Shows the three standard hint kinds and the extensible message bus:

1. temperature hints steering hot/cold data placement;
2. a standalone ``set_temperature`` message (bulk classification);
3. a user-defined message kind, registered at runtime -- "users are able
   to create new types of messages [...] conveying any amount of
   information or instructions".

Run with::

    python examples/open_interface.py
"""

from repro import (
    AllocationPolicy,
    Simulation,
    TemperatureDetector,
    demo_config,
)
from repro.analysis.reporting import format_table
from repro.core.events import IoType
from repro.host.interface import Message, temperature_hint
from repro.workloads.threads import GeneratorThread


class HotColdWriter(GeneratorThread):
    """90% of writes to a small hot region; hints when asked to."""

    def __init__(self, name, count, with_hints):
        super().__init__(name, depth=16)
        self.count = count
        self.with_hints = with_hints
        self._step = 0

    def next_io(self, ctx):
        if self._step >= self.count:
            return None
        self._step += 1
        rng = ctx.rng("hotcold")
        hot_span = max(1, ctx.logical_pages // 32)
        if rng.random() < 0.9:
            lpn, hot = rng.randrange(hot_span), True
        else:
            lpn = hot_span + rng.randrange(ctx.logical_pages - hot_span)
            hot = False
        return (IoType.WRITE, lpn, temperature_hint(hot) if self.with_hints else None)


def run(open_interface: bool):
    config = demo_config()
    config.controller.overprovisioning = 0.2
    if open_interface:
        config.host.open_interface = True
        config.controller.allocation = AllocationPolicy.TEMPERATURE
        config.controller.temperature.detector = TemperatureDetector.HINT
    simulation = Simulation(config)
    simulation.add_thread(HotColdWriter("app", 25_000, with_hints=open_interface))
    result = simulation.run()
    return simulation, result


def main() -> None:
    rows = []
    for open_interface in (False, True):
        simulation, result = run(open_interface)
        rows.append(
            [
                "open interface + hints" if open_interface else "block interface",
                result.stats.write_amplification(),
                result.stats.throughput_iops(),
                result.gc_relocated_pages,
            ]
        )
    print(format_table(
        ["interface", "write amp.", "IOPS", "GC relocations"],
        rows,
        title="the same workload through two interfaces",
    ))

    # --- Standalone messages -------------------------------------------
    print("\nstandalone messages on the open interface:")
    simulation, _ = run(open_interface=True)
    interface = simulation.os.open_interface

    # Bulk temperature classification (e.g. after a file-system scan):
    interface.send(Message("set_temperature", {"lpns": range(0, 64), "hot": True}))
    print("  sent set_temperature for 64 pages")

    # SSD -> OS information flow:
    stats = interface.send(Message("get_statistics"))[0]
    print(f"  device reports {stats['throughput_iops']:,.0f} IOPS, "
          f"WAF {stats['write_amplification']:.2f}")

    # A protocol of your own: ask the device for its wear picture.
    controller = simulation.controller

    def wear_report(message):
        return controller.wear_leveler.wear_statistics()

    interface.register("get_wear_report", wear_report)
    wear = interface.send(Message("get_wear_report"))[0]
    print(f"  custom message kind: wear spread {wear['spread']:.0f} erases "
          f"(sd {wear['stddev']:.2f})")


if __name__ == "__main__":
    main()
