"""Database algorithms on different FTLs: the cross-layer view.

The paper's motivating question: how do database algorithms -- hash
joins, LSM-tree insertions, external sorts -- interact with what is
hidden behind the block interface?  This example runs all three on the
same simulated hardware under the three mapping schemes (page map, DFTL,
FAST-style hybrid) and prints run time and write amplification for each
combination: a 3x3 design-space slice in a few seconds of virtual time.

Run with::

    python examples/database_workloads.py
"""

from repro import FtlKind, Simulation, demo_config
from repro.analysis.reporting import format_table
from repro.core import units
from repro.workloads import (
    ExternalSortThread,
    GraceHashJoinThread,
    LsmInsertThread,
)


def make_workload(kind: str):
    if kind == "hash join":
        return GraceHashJoinThread("app", r_pages=400, s_pages=600, partitions=8, depth=16)
    if kind == "lsm inserts":
        return LsmInsertThread("app", inserts=2000, memtable_pages=8, fanout=4, levels=3, depth=16)
    if kind == "external sort":
        return ExternalSortThread("app", input_pages=512, memory_pages=32, fanin=4, depth=16)
    raise ValueError(kind)


def run(workload_kind: str, ftl: FtlKind):
    config = demo_config()
    config.controller.ftl = ftl
    if ftl is FtlKind.DFTL:
        config.controller.dftl.cmt_entries = 512
    if ftl is FtlKind.HYBRID:
        config.controller.hybrid.log_blocks = 16
    simulation = Simulation(config)
    simulation.add_thread(make_workload(workload_kind))
    result = simulation.run()
    return (
        units.to_milliseconds(result.elapsed_ns),
        result.stats.write_amplification(),
    )


def main() -> None:
    rows = []
    for workload_kind in ("hash join", "lsm inserts", "external sort"):
        for ftl in (FtlKind.PAGE, FtlKind.DFTL, FtlKind.HYBRID):
            elapsed_ms, waf = run(workload_kind, ftl)
            rows.append([workload_kind, ftl.value, elapsed_ms, waf])
            print(f"  {workload_kind:<14} on {ftl.value:<6}: "
                  f"{elapsed_ms:8.1f} ms, WAF {waf:.2f}")
    print()
    print(format_table(
        ["workload", "ftl", "run time (ms)", "write amp."],
        rows,
        title="database algorithms x mapping schemes",
    ))
    print(
        "\nNote how the algorithm's IO pattern decides which FTL artefact"
        "\nbites: the scattered partition writes of the hash join force the"
        "\nhybrid FTL into full merges (9x slower); DFTL costs each workload"
        "\na few mapping IOs (its CMT holds the working sets here); and the"
        "\nsequential runs of the external sort switch-merge for free even"
        "\non the hybrid -- only its single log append point slows it down."
    )


if __name__ == "__main__":
    main()
