"""The demonstration console: the terminal version of the demo GUI
(paper Figure 2, "Layered Tour").

Pick configuration parameters on the command line, run the simulator,
and observe the numeric metrics, the throughput/latency/GC graphs over
time, and an excerpt of the per-IO trace.

Runs go through the experiment service, so repeated invocations with
the same parameters are served from the content-addressed result cache
(summary metrics only -- pass ``--no-cache`` or change a parameter to
force a fresh run with the full timelines and trace).

Examples::

    python examples/demo_console.py
    python examples/demo_console.py --channels 8 --ssd-scheduler priority
    python examples/demo_console.py --ftl dftl --gc-greediness 4 --trace
    python examples/demo_console.py --open-interface --workload hotcold
    python examples/demo_console.py --no-cache   # always simulate
"""

import argparse
import functools

from repro import (
    CachedResult,
    ExperimentService,
    FtlKind,
    OsSchedulerPolicy,
    ResultCache,
    RunSpec,
    SimulationConfig,
    SsdSchedulerPolicy,
    demo_config,
)
from repro.analysis.reporting import ascii_histogram, ascii_timeline
from repro.core.events import IoType
from repro.service.grids import demo_workload


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--channels", type=int, default=4)
    parser.add_argument("--luns-per-channel", type=int, default=2)
    parser.add_argument("--queue-depth", type=int, default=32)
    parser.add_argument("--gc-greediness", type=int, default=2)
    parser.add_argument(
        "--ftl", choices=[kind.value for kind in FtlKind], default="page"
    )
    parser.add_argument(
        "--ssd-scheduler",
        choices=[policy.value for policy in SsdSchedulerPolicy],
        default="fifo",
    )
    parser.add_argument(
        "--os-scheduler",
        choices=[policy.value for policy in OsSchedulerPolicy],
        default="fifo",
    )
    parser.add_argument("--open-interface", action="store_true")
    parser.add_argument(
        "--workload", choices=["mixed", "writes", "hotcold"], default="mixed"
    )
    parser.add_argument("--ops", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--trace", action="store_true", help="show an IO trace excerpt")
    parser.add_argument("--cache-dir", default=None, help="result-store directory")
    parser.add_argument(
        "--no-cache", action="store_true", help="always run the simulator"
    )
    return parser


def configure(args) -> SimulationConfig:
    config = demo_config(seed=args.seed)
    config.geometry.channels = args.channels
    config.geometry.luns_per_channel = args.luns_per_channel
    config.host.max_outstanding = args.queue_depth
    config.host.os_scheduler = OsSchedulerPolicy(args.os_scheduler)
    config.host.open_interface = args.open_interface
    config.controller.gc_greediness = args.gc_greediness
    config.controller.ftl = FtlKind(args.ftl)
    config.controller.scheduler.policy = SsdSchedulerPolicy(args.ssd_scheduler)
    config.trace_enabled = args.trace
    config.validate()
    print(config.describe())
    return config


def show_cached(result: CachedResult) -> None:
    print(result.report())
    print()
    print(
        "(served from the result cache -- summary metrics only; "
        "run with --no-cache for timelines and traces)"
    )


def show_fresh(result, args) -> None:
    print(result.report())

    app = result.thread_stats["app"]
    print()
    print(app.report())

    print()
    print(
        ascii_timeline(
            app.completions_over_time[IoType.WRITE].rate_per_second(),
            title="write completions over time (IOPS)",
        )
    )
    write_samples = app.latency[IoType.WRITE].samples()
    if write_samples:
        print()
        print(ascii_histogram(write_samples, title="write latency distribution"))

    gc_series = result.stats.gc_activity_over_time.series()
    if any(value for _, value in gc_series):
        print()
        print(ascii_timeline(gc_series, title="GC pages relocated over time"))

    if args.trace:
        print()
        print(result.tracer.render(limit=40))


def main() -> None:
    args = build_parser().parse_args()
    config = configure(args)
    spec = RunSpec(
        config=config,
        workload=functools.partial(demo_workload, kind=args.workload, ops=args.ops),
        label=f"demo {args.workload}",
    )
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    print("\nrunning in virtual time ...")
    with ExperimentService(cache=cache) as service:
        job_id = service.submit([spec], name="demo console")
        (result,) = service.results(job_id)
        status = service.status(job_id)
    print(
        f"[service {job_id}: {status.cache_hits} cache hit, "
        f"{status.cache_misses} simulated]"
    )

    print()
    if isinstance(result, CachedResult):
        show_cached(result)
    else:
        show_fresh(result, args)


if __name__ == "__main__":
    main()
