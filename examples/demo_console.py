"""The demonstration console: the terminal version of the demo GUI
(paper Figure 2, "Layered Tour").

Pick configuration parameters on the command line, run the simulator,
and observe the numeric metrics, the throughput/latency/GC graphs over
time, and an excerpt of the per-IO trace.

Examples::

    python examples/demo_console.py
    python examples/demo_console.py --channels 8 --ssd-scheduler priority
    python examples/demo_console.py --ftl dftl --gc-greediness 4 --trace
    python examples/demo_console.py --open-interface --workload hotcold
"""

import argparse

from repro import (
    FtlKind,
    OsSchedulerPolicy,
    Simulation,
    SsdSchedulerPolicy,
    demo_config,
)
from repro.analysis.reporting import ascii_histogram, ascii_timeline
from repro.core import units
from repro.core.events import IoType
from repro.host.interface import temperature_hint
from repro.workloads import MixedWorkloadThread, RandomWriterThread, precondition_sequential


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--channels", type=int, default=4)
    parser.add_argument("--luns-per-channel", type=int, default=2)
    parser.add_argument("--queue-depth", type=int, default=32)
    parser.add_argument("--gc-greediness", type=int, default=2)
    parser.add_argument(
        "--ftl", choices=[kind.value for kind in FtlKind], default="page"
    )
    parser.add_argument(
        "--ssd-scheduler",
        choices=[policy.value for policy in SsdSchedulerPolicy],
        default="fifo",
    )
    parser.add_argument(
        "--os-scheduler",
        choices=[policy.value for policy in OsSchedulerPolicy],
        default="fifo",
    )
    parser.add_argument("--open-interface", action="store_true")
    parser.add_argument(
        "--workload", choices=["mixed", "writes", "hotcold"], default="mixed"
    )
    parser.add_argument("--ops", type=int, default=20_000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--trace", action="store_true", help="show an IO trace excerpt")
    return parser


def configure(args) -> Simulation:
    config = demo_config(seed=args.seed)
    config.geometry.channels = args.channels
    config.geometry.luns_per_channel = args.luns_per_channel
    config.host.max_outstanding = args.queue_depth
    config.host.os_scheduler = OsSchedulerPolicy(args.os_scheduler)
    config.host.open_interface = args.open_interface
    config.controller.gc_greediness = args.gc_greediness
    config.controller.ftl = FtlKind(args.ftl)
    config.controller.scheduler.policy = SsdSchedulerPolicy(args.ssd_scheduler)
    config.trace_enabled = args.trace
    config.validate()
    print(config.describe())
    return Simulation(config)


def add_workload(simulation: Simulation, args) -> str:
    config = simulation.config
    prep = precondition_sequential(config.logical_pages)
    simulation.add_thread(prep)
    if args.workload == "mixed":
        thread = MixedWorkloadThread("app", count=args.ops, read_fraction=0.5, depth=16)
    elif args.workload == "writes":
        thread = RandomWriterThread("app", count=args.ops, depth=16)
    else:  # hotcold: 90% of writes to 10% of the space, hinted when open
        hot_span = config.logical_pages // 10

        def hint_fn(io_type, lpn):
            return temperature_hint(lpn < hot_span)

        thread = RandomWriterThread(
            "app", count=args.ops, depth=16, zipf_theta=0.9, hint_fn=hint_fn
        )
    simulation.add_thread(thread, depends_on=[prep.name])
    return thread.name


def main() -> None:
    args = build_parser().parse_args()
    simulation = configure(args)
    thread_name = add_workload(simulation, args)
    print("\nrunning in virtual time ...")
    result = simulation.run()

    print()
    print(result.report())

    app = result.thread_stats[thread_name]
    print()
    print(app.report())

    print()
    print(
        ascii_timeline(
            app.completions_over_time[IoType.WRITE].rate_per_second(),
            title="write completions over time (IOPS)",
        )
    )
    write_samples = app.latency[IoType.WRITE].samples()
    if write_samples:
        print()
        print(ascii_histogram(write_samples, title="write latency distribution"))

    gc_series = result.stats.gc_activity_over_time.series()
    if any(value for _, value in gc_series):
        print()
        print(ascii_timeline(gc_series, title="GC pages relocated over time"))

    if args.trace:
        print()
        print(result.tracer.render(limit=40))


if __name__ == "__main__":
    main()
