"""The EagleTree scheduling game (paper Section 3, Figure 3).

"The user will have to guess the optimal combination of scheduling
policies [...] to maximize throughput for a given workload while
balancing mean latency and latency variability between different types
of IOs."

Pick your configuration on the command line and see how close you get to
the optimum found by exhaustive search.  (No T-shirt, sorry.)

Examples::

    python examples/scheduling_game.py --ssd-scheduler priority \
        --prefer reads --queue-depth 64
    python examples/scheduling_game.py --search     # show the full board
"""

import argparse
import itertools

from repro import Simulation, SsdSchedulerPolicy, demo_config
from repro.analysis.metrics import game_score, latency_balance, variability_balance
from repro.analysis.reporting import format_table
from repro.workloads import MixedWorkloadThread, precondition_sequential

PREFERENCES = {
    "none": None,
    "reads": {"READ": 0, "PROGRAM": 1, "COPYBACK": 2, "ERASE": 3},
    "writes": {"PROGRAM": 0, "READ": 1, "COPYBACK": 2, "ERASE": 3},
}


def play(ssd_scheduler: str, prefer: str, queue_depth: int):
    """One round of the game; returns the score row."""
    config = demo_config()
    config.controller.scheduler.policy = SsdSchedulerPolicy(ssd_scheduler)
    if PREFERENCES[prefer] is not None:
        config.controller.scheduler.type_priorities = dict(PREFERENCES[prefer])
    config.host.max_outstanding = queue_depth

    simulation = Simulation(config)
    prep = precondition_sequential(config.logical_pages)
    simulation.add_thread(prep)
    simulation.add_thread(
        MixedWorkloadThread("mix", count=8000, read_fraction=0.5, depth=64),
        depends_on=[prep.name],
    )
    result = simulation.run()
    stats = result.thread_stats["mix"]
    return {
        "config": f"{ssd_scheduler}/{prefer}/qd{queue_depth}",
        "score": game_score(stats),
        "iops": stats.throughput_iops(),
        "latency balance": latency_balance(stats),
        "variability balance": variability_balance(stats),
    }


def search_board():
    """Every combination on the game board."""
    combos = itertools.product(
        ["fifo", "priority", "deadline", "fair"],
        ["none", "reads", "writes"],
        [8, 64],
    )
    rows = []
    for ssd_scheduler, prefer, queue_depth in combos:
        if ssd_scheduler != "priority" and prefer != "none":
            continue  # preference only applies to the priority policy
        rows.append(play(ssd_scheduler, prefer, queue_depth))
    rows.sort(key=lambda row: row["score"], reverse=True)
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ssd-scheduler",
        choices=["fifo", "priority", "deadline", "fair"],
        default="fifo",
    )
    parser.add_argument("--prefer", choices=list(PREFERENCES), default="none")
    parser.add_argument("--queue-depth", type=int, choices=[8, 64], default=8)
    parser.add_argument(
        "--search", action="store_true", help="reveal the whole game board"
    )
    args = parser.parse_args()

    if args.search:
        rows = search_board()
        print(format_table(
            ["configuration", "score", "IOPS", "lat balance", "var balance"],
            [[r["config"], r["score"], r["iops"], r["latency balance"],
              r["variability balance"]] for r in rows],
            title="the full game board (sorted by score)",
        ))
        print(f"\noptimal configuration: {rows[0]['config']}")
        return

    print("scoring your pick ...")
    yours = play(args.ssd_scheduler, args.prefer, args.queue_depth)
    print("searching for the optimum ...")
    board = search_board()
    best = board[0]
    rank = 1 + next(
        i for i, row in enumerate(board) if row["config"] == yours["config"]
    )
    print()
    print(format_table(
        ["", "configuration", "score", "IOPS", "lat balance", "var balance"],
        [
            ["you", yours["config"], yours["score"], yours["iops"],
             yours["latency balance"], yours["variability balance"]],
            ["best", best["config"], best["score"], best["iops"],
             best["latency balance"], best["variability balance"]],
        ],
        title="the scheduling game",
    ))
    print(f"\nyour rank: {rank} of {len(board)}")
    if yours["config"] == best["config"]:
        print("optimal! you win the (virtual) EagleTree T-shirt.")
    else:
        print(f"score gap to optimum: {yours['score'] / best['score']:.0%}")


if __name__ == "__main__":
    main()
