"""The EagleTree scheduling game (paper Section 3, Figure 3).

"The user will have to guess the optimal combination of scheduling
policies [...] to maximize throughput for a given workload while
balancing mean latency and latency variability between different types
of IOs."

Pick your configuration on the command line and see how close you get to
the optimum found by exhaustive search.  (No T-shirt, sorry.)

Examples::

    python examples/scheduling_game.py --ssd-scheduler priority \
        --prefer reads --queue-depth 64
    python examples/scheduling_game.py --search     # show the full board
    python examples/scheduling_game.py --search --workers 4
"""

import argparse
import itertools

from repro import RunSpec, SsdSchedulerPolicy, SweepExecutor, demo_config
from repro.analysis.metrics import game_score, latency_balance, variability_balance
from repro.analysis.reporting import format_table
from repro.workloads import MixedWorkloadThread, precondition_sequential

PREFERENCES = {
    "none": None,
    "reads": {"READ": 0, "PROGRAM": 1, "COPYBACK": 2, "ERASE": 3},
    "writes": {"PROGRAM": 0, "READ": 1, "COPYBACK": 2, "ERASE": 3},
}


def game_workload(config):
    """Preconditioning plus the mixed workload the game scores.

    Module-level so the :class:`RunSpec` stays picklable when the board
    search fans out over worker processes.
    """
    prep = precondition_sequential(config.logical_pages)
    mix = MixedWorkloadThread("mix", count=8000, read_fraction=0.5, depth=64)
    return [prep, (mix, [prep.name])]


def _game_config(ssd_scheduler: str, prefer: str, queue_depth: int):
    config = demo_config()
    config.controller.scheduler.policy = SsdSchedulerPolicy(ssd_scheduler)
    if PREFERENCES[prefer] is not None:
        config.controller.scheduler.type_priorities = dict(PREFERENCES[prefer])
    config.host.max_outstanding = queue_depth
    return config


def _score_row(label: str, result) -> dict:
    stats = result.thread_stats["mix"]
    return {
        "config": label,
        "score": game_score(stats),
        "iops": stats.throughput_iops(),
        "latency balance": latency_balance(stats),
        "variability balance": variability_balance(stats),
    }


def play(ssd_scheduler: str, prefer: str, queue_depth: int):
    """One round of the game; returns the score row."""
    config = _game_config(ssd_scheduler, prefer, queue_depth)
    result = RunSpec(config=config, workload=game_workload).execute()
    return _score_row(f"{ssd_scheduler}/{prefer}/qd{queue_depth}", result)


def search_board(workers: int = 1):
    """Every combination on the game board (optionally in parallel)."""
    combos = itertools.product(
        ["fifo", "priority", "deadline", "fair"],
        ["none", "reads", "writes"],
        [8, 64],
    )
    specs = []
    for index, (ssd_scheduler, prefer, queue_depth) in enumerate(combos):
        if ssd_scheduler != "priority" and prefer != "none":
            continue  # preference only applies to the priority policy
        specs.append(
            RunSpec(
                config=_game_config(ssd_scheduler, prefer, queue_depth),
                workload=game_workload,
                index=len(specs),
                label=f"{ssd_scheduler}/{prefer}/qd{queue_depth}",
            )
        )
    results = SweepExecutor(workers=workers).map(specs)
    rows = [_score_row(spec.label, result) for spec, result in zip(specs, results)]
    rows.sort(key=lambda row: row["score"], reverse=True)
    return rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--ssd-scheduler",
        choices=["fifo", "priority", "deadline", "fair"],
        default="fifo",
    )
    parser.add_argument("--prefer", choices=list(PREFERENCES), default="none")
    parser.add_argument("--queue-depth", type=int, choices=[8, 64], default=8)
    parser.add_argument(
        "--search", action="store_true", help="reveal the whole game board"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the board search (default: 1, serial)",
    )
    args = parser.parse_args()

    if args.search:
        rows = search_board(workers=args.workers)
        print(format_table(
            ["configuration", "score", "IOPS", "lat balance", "var balance"],
            [[r["config"], r["score"], r["iops"], r["latency balance"],
              r["variability balance"]] for r in rows],
            title="the full game board (sorted by score)",
        ))
        print(f"\noptimal configuration: {rows[0]['config']}")
        return

    print("scoring your pick ...")
    yours = play(args.ssd_scheduler, args.prefer, args.queue_depth)
    print("searching for the optimum ...")
    board = search_board(workers=args.workers)
    best = board[0]
    rank = 1 + next(
        i for i, row in enumerate(board) if row["config"] == yours["config"]
    )
    print()
    print(format_table(
        ["", "configuration", "score", "IOPS", "lat balance", "var balance"],
        [
            ["you", yours["config"], yours["score"], yours["iops"],
             yours["latency balance"], yours["variability balance"]],
            ["best", best["config"], best["score"], best["iops"],
             best["latency balance"], best["variability balance"]],
        ],
        title="the scheduling game",
    ))
    print(f"\nyour rank: {rank} of {len(board)}")
    if yours["config"] == best["config"]:
        print("optimal! you win the (virtual) EagleTree T-shirt.")
    else:
        print(f"score gap to optimum: {yours['score'] / best['score']:.0%}")


if __name__ == "__main__":
    main()
