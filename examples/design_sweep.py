"""Design-space exploration with the experiment suite (paper Section 2.3).

"An experiment template takes (1) an SSD parameter or policy (2) a
strategy for how to vary it in an experiment, and (3) a workload
definition.  It runs an experiment and produces a comprehensive amount
of visual statistical output."

This example sweeps the GC Greediness parameter under steady-state
random writes and prints the table plus ASCII charts of the resulting
throughput / write-amplification / tail-latency series -- a complete,
tractable design-space exploration in a few seconds of wall-clock time.

Run with::

    python examples/design_sweep.py
    python examples/design_sweep.py --workers 4   # one process per core
"""

import argparse

from repro import ExperimentTemplate, Parameter, demo_config
from repro.analysis.reporting import ascii_chart
from repro.workloads import RandomWriterThread, precondition_sequential


def workload(config):
    prep = precondition_sequential(config.logical_pages)
    writer = RandomWriterThread("writer", count=8000, depth=16)
    return [prep, (writer, [prep.name])]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the sweep (default: 1, serial)",
    )
    args = parser.parse_args()

    base = demo_config()
    base.controller.overprovisioning = 0.3  # room for the eager end

    template = ExperimentTemplate(
        name="GC greediness under steady-state random writes",
        base_config=base,
        parameter=Parameter("greediness", path="controller.gc_greediness"),
        values=[1, 2, 4, 8, 12],
        workload=workload,
    )

    mode = "serially" if args.workers == 1 else f"on {args.workers} workers"
    print(f"running 5 simulations {mode} ...")
    result = template.run(
        progress=lambda value, r: print(
            f"  greediness={value}: {r.stats.throughput_iops():,.0f} IOPS, "
            f"WAF {r.stats.write_amplification():.2f}"
        ),
        workers=args.workers,
    )

    print()
    print(result.table(["throughput_iops", "write_amplification", "write_p99_ns"]))

    print()
    print(ascii_chart(result.series("throughput_iops"),
                      title="throughput (IOPS) vs greediness"))
    print()
    print(ascii_chart(result.series("write_amplification"),
                      title="write amplification vs greediness"))

    best = result.best("throughput_iops")
    print(f"\nbest throughput at greediness={best.value} "
          f"({best.metric('throughput_iops'):,.0f} IOPS)")


if __name__ == "__main__":
    main()
