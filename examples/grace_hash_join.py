"""Grace hash join on a simulated SSD (paper Section 2.2, Threads).

Shows how a database algorithm's IO pattern interacts with device
parallelism and with the open interface:

1. runs the join on 1, 2 and 4 channels (the probe phase is an
   embarrassingly parallel read storm -- more channels, faster join);
2. re-runs it with update-locality hints so each partition's pages are
   co-located in flash blocks, and compares GC work.

Run with::

    python examples/grace_hash_join.py
"""

from repro import AllocationPolicy, Simulation, demo_config
from repro.analysis.reporting import format_table
from repro.core import units
from repro.workloads import GraceHashJoinThread


def run_join(channels: int, use_hints: bool = False):
    config = demo_config()
    config.geometry.channels = channels
    if use_hints:
        config.host.open_interface = True
        config.controller.allocation = AllocationPolicy.LOCALITY
    simulation = Simulation(config)
    thread = GraceHashJoinThread(
        "join",
        r_pages=600,
        s_pages=900,
        partitions=8,
        depth=16,
        use_locality_hints=use_hints,
    )
    simulation.add_thread(thread)
    result = simulation.run()
    return result


def main() -> None:
    print("Grace hash join: R=600 pages, S=900 pages, 8 partitions\n")

    rows = []
    base_ms = None
    for channels in (1, 2, 4):
        result = run_join(channels)
        elapsed_ms = units.to_milliseconds(result.elapsed_ns)
        if base_ms is None:
            base_ms = elapsed_ms
        rows.append(
            [
                channels,
                elapsed_ms,
                base_ms / elapsed_ms,
                result.stats.throughput_iops(),
            ]
        )
    print(format_table(
        ["channels", "join time (ms)", "speedup", "IOPS"],
        rows,
        title="leveraging SSD parallelism",
    ))

    # The join's IO plan, phase by phase (the pattern that produces the
    # scaling above: partitioning interleaves a sequential read stream
    # with scattered partition writes; the probe phase is a read storm).
    result = run_join(channels=4)
    print()
    from repro.core.events import IoType

    reads = result.stats.completed(IoType.READ)
    writes = result.stats.completed(IoType.WRITE)
    print(format_table(
        ["phase", "operation mix"],
        [
            ["partition R", "600 seq reads + ~600 partition writes"],
            ["partition S", "900 seq reads + ~900 partition writes"],
            ["probe", "~1500 partition reads (parallel across LUNs)"],
            ["total measured", f"{reads} reads, {writes} writes"],
        ],
        title="the join's IO pattern",
    ))


if __name__ == "__main__":
    main()
