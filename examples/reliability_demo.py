"""Reliability in action: bit errors, read retries, parity and wear-out.

Three short scenes on the small test SSD:

1. **Living with bit errors** -- a mixed workload at a raw bit-error
   rate where ECC corrections and occasional retry-ladder excursions are
   routine, with channel-stripe parity catching whatever the ladder
   cannot.
2. **A scripted disaster** -- a deterministic :class:`~repro.FaultPlan`
   corrupts one specific page and fails one specific block's erase;
   same seed, same disaster, every run.
3. **Growing old** -- program failures retire blocks until the spare
   pool runs dry and the device degrades to read-only mode, rejecting
   writes with a distinct status instead of corrupting data.

Run with::

    python examples/reliability_demo.py [--sanitize] [--json PATH]

``--sanitize`` arms the runtime invariant sanitizer on every scene;
``--json PATH`` writes the collected metrics for CI artifacts.
"""

import argparse
import json

from repro import FaultPlan, IoStatus, Simulation, small_config
from repro.analysis.metrics import mean_retries_per_read
from repro.workloads import MixedWorkloadThread, RandomWriterThread


def scene_1_living_with_bit_errors(sanitize: bool = False) -> dict:
    print("-- scene 1: living with bit errors " + "-" * 34)
    config = small_config()
    config.sanitize = sanitize
    r = config.reliability
    r.enabled = True
    r.base_rber = 2.5e-4  # ~4 bit errors per 2 KiB page
    r.ecc_correctable_bits = 4
    r.max_read_retries = 2
    r.parity = True
    simulation = Simulation(config)
    simulation.add_thread(MixedWorkloadThread("app", count=3000, read_fraction=0.6))
    result = simulation.run()
    summary = result.summary()
    print(f"  reads completed     : {summary['completed_reads']:.0f}")
    print(f"  ECC corrections     : {summary['corrected_reads']:.0f}")
    print(f"  retry-ladder reads  : {summary['read_retries']:.0f} "
          f"({mean_retries_per_read(summary):.3f} per read)")
    print(f"  parity rebuilds     : {summary['parity_rebuilds']:.0f}")
    print(f"  data lost           : {summary['uncorrectable_reads']:.0f}")
    print()
    return {f"scene1_{k}": summary[k] for k in (
        "completed_reads", "corrected_reads", "read_retries",
        "parity_rebuilds", "uncorrectable_reads",
    )}


def scene_2_a_scripted_disaster(sanitize: bool = False) -> dict:
    print("-- scene 2: a scripted disaster " + "-" * 37)
    plan = (
        FaultPlan()
        .corrupt_read(lpn=123)  # next read of LPN 123: uncorrectable
        .fail_erase(channel=0, lun=0, block=4, attempt=1)
    )
    config = small_config()
    config.sanitize = sanitize
    r = config.reliability
    r.enabled = True
    r.parity = True
    r.spare_blocks_per_lun = 2
    r.fault_plan = plan
    simulation = Simulation(config)
    # An overwrite-heavy region keeps the GC erasing, so the doomed
    # block meets its scripted fate.
    simulation.add_thread(
        MixedWorkloadThread("app", count=6000, read_fraction=0.3, region=(0, 400))
    )
    result = simulation.run()
    summary = result.summary()
    print(f"  parity rebuilds     : {summary['parity_rebuilds']:.0f} "
          "(the corrupted page, reconstructed from its stripe)")
    print(f"  erase failures      : {summary['erase_fails']:.0f}")
    print(f"  blocks retired      : {summary['runtime_retired_blocks']:.0f}")
    print(f"  data lost           : {summary['uncorrectable_reads']:.0f}")
    print()
    return {f"scene2_{k}": summary[k] for k in (
        "parity_rebuilds", "erase_fails", "runtime_retired_blocks",
        "uncorrectable_reads",
    )}


def scene_3_growing_old(sanitize: bool = False) -> dict:
    print("-- scene 3: growing old (spares run dry) " + "-" * 28)
    config = small_config()
    config.sanitize = sanitize
    config.controller.enable_copyback = False
    r = config.reliability
    r.enabled = True
    r.program_fail_probability = 0.01
    r.spare_blocks_per_lun = 2
    simulation = Simulation(config)
    simulation.add_thread(RandomWriterThread("app", count=20000, region=(0, 256)))
    result = simulation.run()
    summary = result.summary()
    print(f"  program failures    : {summary['program_fails']:.0f}")
    print(f"  blocks retired      : {summary['runtime_retired_blocks']:.0f} "
          f"(spare pool: {r.spare_blocks_per_lun} per LUN)")
    if summary["read_only_entry_ms"] >= 0.0:
        print(f"  read-only mode at   : {summary['read_only_entry_ms']:.2f} ms")
        print(f"  writes rejected     : {summary['writes_rejected']:.0f} "
              f"(status {IoStatus.READ_ONLY.name})")
    else:
        print("  read-only mode      : never (spares absorbed the damage)")
    print()
    return {f"scene3_{k}": summary[k] for k in (
        "program_fails", "runtime_retired_blocks", "writes_rejected",
        "read_only_entry_ms",
    )}


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sanitize", action="store_true",
        help="arm the runtime invariant sanitizer in every scene",
    )
    parser.add_argument(
        "--json", metavar="PATH",
        help="write collected metrics to PATH as JSON",
    )
    args = parser.parse_args(argv)
    metrics = {}
    metrics.update(scene_1_living_with_bit_errors(args.sanitize))
    metrics.update(scene_2_a_scripted_disaster(args.sanitize))
    metrics.update(scene_3_growing_old(args.sanitize))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
        print(f"metrics written to {args.json}")


if __name__ == "__main__":
    main()
