"""Repo-root pytest configuration.

Ensures ``src/`` is importable even when the package has not been
installed (some offline environments lack the ``wheel`` package needed
by ``pip install -e .``; ``python setup.py develop`` works there).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
