"""The flash command vocabulary.

Flash commands are what the SSD controller's scheduler queues and the
array executes.  Each command is tagged with its *source* -- the paper's
scheduler framework differentiates "IOs from various sources (e.g.
application, garbage-collection, mapping, etc.), of various types (e.g.
read, write, erase, copy-back) [...] waiting in the queue for different
lengths of time" -- exactly the attributes carried here.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Callable, Optional

from repro.hardware.addresses import Lpn, PhysicalAddress
from repro.hardware.flash import PageContent


class CommandKind(enum.Enum):
    READ = "READ"
    PROGRAM = "PROGRAM"
    ERASE = "ERASE"
    #: Internal data move: read + program inside one LUN, no bus transfer.
    COPYBACK = "COPYBACK"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CommandOutcome(enum.Enum):
    """How a flash command finished (reliability subsystem).

    Without the reliability subsystem every command succeeds and
    ``FlashCommand.outcome`` stays ``SUCCESS``.  With it, the array draws
    read bit errors and program/erase failures and reports them here; the
    controller reacts (retry ladder, parity rebuild, block retirement).
    """

    SUCCESS = "SUCCESS"
    #: Read had bit errors, all corrected by ECC.
    CORRECTED = "CORRECTED"
    #: Read had more bit errors than the ECC can correct.
    UNCORRECTABLE = "UNCORRECTABLE"
    #: Read was uncorrectable but reconstructed from channel parity.
    REBUILT = "REBUILT"
    #: Program operation reported a failure status.
    PROGRAM_FAIL = "PROGRAM_FAIL"
    #: Erase operation reported a failure status.
    ERASE_FAIL = "ERASE_FAIL"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CommandSource(enum.Enum):
    APPLICATION = "APPLICATION"
    GC = "GC"
    WEAR_LEVELING = "WEAR_LEVELING"
    #: DFTL translation-page traffic.
    MAPPING = "MAPPING"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# simlint: disable=SIM006 -- ids break scheduler ties; only their relative
# order within one run matters, and that is deterministic.
_command_ids = itertools.count(1)


class FlashCommand:
    """One operation for the flash array.

    Addressing rules:

    * READ / ERASE: ``address`` is fully bound at enqueue time.
    * PROGRAM: only the target LUN is bound at enqueue (``address.block``
      and ``address.page`` are -1); the allocator binds the exact page
      when the command starts executing, which guarantees sequential
      programming within blocks regardless of scheduling order.
    * COPYBACK: ``address`` is the source page; ``target_address`` is
      bound at start, inside the same LUN.

    ``on_complete`` is invoked by the array exactly once, when the last
    phase of the command finishes.
    """

    __slots__ = (
        "id",
        "kind",
        "source",
        "address",
        "target_address",
        "lpn",
        "content",
        "enqueue_time",
        "start_time",
        "complete_time",
        "deadline",
        "priority",
        "stream",
        "on_complete",
        "io",
        "context",
        "outcome",
        "retry_index",
        "aborted",
    )

    def __init__(
        self,
        kind: CommandKind,
        source: CommandSource,
        address: PhysicalAddress,
        lpn: Optional[Lpn] = None,
        content: Optional[PageContent] = None,
        deadline: Optional[int] = None,
        priority: int = 0,
        stream: str = "default",
        on_complete: Optional[Callable[["FlashCommand"], None]] = None,
        io: Any = None,
        context: Any = None,
    ):
        self.id = next(_command_ids)
        self.kind = kind
        self.source = source
        self.address = address
        self.target_address: Optional[PhysicalAddress] = None
        self.lpn = lpn
        self.content = content
        self.enqueue_time: Optional[int] = None
        self.start_time: Optional[int] = None
        self.complete_time: Optional[int] = None
        #: Absolute virtual time by which the command should finish.
        self.deadline = deadline
        #: Smaller is more urgent; produced from config / hints.
        self.priority = priority
        #: Allocation stream name (e.g. "app", "app_hot", "gc", "map").
        self.stream = stream
        self.on_complete = on_complete
        #: The logical IO this command serves, if any.
        self.io = io
        #: Free slot for the originating module (e.g. a GC job).
        self.context = context
        #: How the command finished; set by the array's error model.
        self.outcome: CommandOutcome = CommandOutcome.SUCCESS
        #: Read-retry ladder position: 0 for the first attempt, then 1..N
        #: for re-issued reads (scales the effective RBER down).
        self.retry_index = 0
        #: Aborted by the overload governor before execution (command
        #: timeout); the command never reaches the array and its
        #: ``on_complete`` never fires.
        self.aborted = False

    @property
    def lun_key(self) -> tuple[int, int]:
        """The (channel, lun) the command is bound to."""
        return (self.address.channel, self.address.lun)

    def age(self, now_ns: int) -> int:
        """Time spent queued, used by ageing/starvation policies."""
        if self.enqueue_time is None:
            return 0
        return now_ns - self.enqueue_time

    def overdue(self, now_ns: int) -> bool:
        return self.deadline is not None and now_ns > self.deadline

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        lpn = f" lpn={self.lpn}" if self.lpn is not None else ""
        return (
            f"FlashCommand(#{self.id} {self.kind} {self.source}"
            f" {self.address}{lpn})"
        )
