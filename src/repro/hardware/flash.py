"""Flash page, block and LUN state machines.

The classes here enforce the NAND ground rules the rest of the simulator
relies on (DESIGN.md invariant 4):

* pages within a block are programmed strictly sequentially;
* a page is never programmed twice between erases;
* a block is only erased when it carries no live data and no in-flight
  read still targets it.

Validity is split between layers exactly as in a real SSD: the *array*
knows whether a page holds data (``LIVE``) or is erased (``FREE``); the
*FTL* decides when data becomes stale and calls :meth:`Block.invalidate`
(``DEAD``).
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.sanitize import SanitizerError

PageContent = tuple[int, int]
"""What a programmed page stores: an ``(lpn, version)`` token.

The simulator does not shuffle real bytes around; the token is sufficient
for the read-your-writes integrity oracle used by the test suite.
Translation pages (DFTL) use negative pseudo-LPNs.
"""


class PageState(enum.Enum):
    FREE = "free"  # erased, programmable
    LIVE = "live"  # programmed, mapped by the FTL
    DEAD = "dead"  # programmed, superseded -- reclaimable space


class FlashStateError(RuntimeError):
    """A NAND constraint was violated (always a simulator bug)."""


class Page:
    """One flash page."""

    __slots__ = ("state", "content", "torn")

    def __init__(self) -> None:
        self.state = PageState.FREE
        self.content: Optional[PageContent] = None
        #: Power was lost while this page was being programmed: the cells
        #: hold an indeterminate mixture and any read would fail ECC.
        #: Torn pages are dead space until the block is erased.
        self.torn = False


class Block:
    """One erase block: a run of ``num_pages`` pages plus wear metadata.

    The wear-leveling module consumes ``erase_count`` and
    ``last_erase_ns`` (paper Section 2.2 WL: the default module tracks
    block ages and last-erase timestamps).
    """

    __slots__ = (
        "num_pages",
        "pages",
        "write_pointer",
        "erase_count",
        "last_erase_ns",
        "last_write_ns",
        "inflight_reads",
        "live_count",
        "dead_count",
        "is_bad",
        "sanitize",
        "label",
    )

    def __init__(self, num_pages: int, sanitize: bool = False, label: str = "?"):
        self.num_pages = num_pages
        self.pages = [Page() for _ in range(num_pages)]
        #: Next page index to program (NAND sequential-program rule).
        self.write_pointer = 0
        self.erase_count = 0
        self.last_erase_ns = 0
        self.last_write_ns = 0
        #: Reads queued or executing against this block; erases must wait
        #: until this drops to zero so stale-but-referenced data survives.
        self.inflight_reads = 0
        self.live_count = 0
        self.dead_count = 0
        #: Factory-bad or worn out; masked from allocation forever.
        self.is_bad = False
        #: Sanitizer mode (:mod:`repro.core.sanitize`): verify the page
        #: state machine and the live/dead counters on every mutation.
        self.sanitize = sanitize
        #: Physical identity for sanitizer diagnostics, e.g. "(c0,l1,b3)".
        self.label = label

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def free_pages(self) -> int:
        return self.num_pages - self.write_pointer

    @property
    def is_empty(self) -> bool:
        """True when fully erased (allocatable as a fresh open block)."""
        return self.write_pointer == 0

    @property
    def is_full(self) -> bool:
        return self.write_pointer == self.num_pages

    @property
    def erasable(self) -> bool:
        """True when erasing would lose no data and break no reader."""
        return self.live_count == 0 and self.inflight_reads == 0 and not self.is_empty

    # ------------------------------------------------------------------
    # Mutations (called by the array at command completion, and by the
    # FTL for invalidation)
    # ------------------------------------------------------------------
    def program_next(self, content: PageContent, now_ns: int) -> int:
        """Program the next sequential page; returns its index."""
        if self.sanitize:
            self._sanitize_check("program")
        if self.is_full:
            raise FlashStateError("program on a full block")
        index = self.write_pointer
        page = self.pages[index]
        if page.state is not PageState.FREE:
            if self.sanitize:
                raise SanitizerError(
                    "erase-before-program",
                    f"page {index} programmed twice without an intervening erase",
                    {"block": self.label, "page": index, "state": page.state.value},
                )
            raise FlashStateError(f"page {index} programmed twice without erase")
        page.state = PageState.LIVE
        page.content = content
        self.write_pointer += 1
        self.live_count += 1
        self.last_write_ns = now_ns
        return index

    def invalidate(self, page_index: int) -> None:
        """FTL hook: mark a superseded page as reclaimable."""
        if self.sanitize:
            self._sanitize_check("invalidate")
        page = self.pages[page_index]
        if page.state is not PageState.LIVE:
            raise FlashStateError(f"invalidate on non-live page {page_index}")
        page.state = PageState.DEAD
        self.live_count -= 1
        self.dead_count += 1

    def mark_torn(self, page_index: int) -> None:
        """Power-loss hook: the in-flight program writing this page was
        interrupted.  The page was charged at command start (NAND
        sequential-program bookkeeping), so it stays behind the write
        pointer, but its content is unreadable -- it becomes dead space."""
        page = self.pages[page_index]
        page.torn = True
        if page.state is PageState.LIVE:
            page.state = PageState.DEAD
            self.live_count -= 1
            self.dead_count += 1

    def _sanitize_check(self, operation: str, full: bool = False) -> None:
        """Sanitize mode: counters and page states must agree.

        The O(1) counter identity ``live + dead == write_pointer`` runs
        before every mutation; erases additionally pay an O(pages) scan
        verifying each page state (programmed strictly below the write
        pointer, erased at and above it).
        """
        if self.live_count + self.dead_count != self.write_pointer:
            raise SanitizerError(
                "flash-page-state",
                f"{operation}: live+dead != write_pointer",
                {
                    "block": self.label,
                    "live": self.live_count,
                    "dead": self.dead_count,
                    "write_pointer": self.write_pointer,
                },
            )
        if not full:
            return
        for index, page in enumerate(self.pages):
            programmed = page.state is not PageState.FREE
            if programmed != (index < self.write_pointer):
                raise SanitizerError(
                    "flash-page-state",
                    f"{operation}: page state contradicts the write pointer",
                    {
                        "block": self.label,
                        "page": index,
                        "state": page.state.value,
                        "write_pointer": self.write_pointer,
                    },
                )

    def read(self, page_index: int) -> PageContent:
        """Content of a programmed page (live or dead -- stale reads of
        not-yet-erased data are legal, see ``inflight_reads``)."""
        page = self.pages[page_index]
        if page.state is PageState.FREE or page.content is None:
            raise FlashStateError(f"read of unprogrammed page {page_index}")
        return page.content

    def erase(self, now_ns: int) -> None:
        if self.sanitize:
            self._sanitize_check("erase", full=True)
        if self.live_count:
            raise FlashStateError(f"erase would destroy {self.live_count} live pages")
        if self.inflight_reads:
            raise FlashStateError(f"erase with {self.inflight_reads} in-flight reads")
        for page in self.pages:
            page.state = PageState.FREE
            page.content = None
            page.torn = False
        self.write_pointer = 0
        self.live_count = 0
        self.dead_count = 0
        self.erase_count += 1
        self.last_erase_ns = now_ns

    def live_page_indexes(self) -> list[int]:
        """Indexes of pages the FTL still maps (GC must relocate these)."""
        return [
            index
            for index, page in enumerate(self.pages)
            if page.state is PageState.LIVE
        ]


class Lun:
    """One logical unit: the minimum granularity of parallelism.

    Executes one array operation at a time (``current_command`` /
    ``busy_until``) and owns its blocks.  Free-block membership is kept
    incrementally so allocation and GC-trigger checks are O(1).
    """

    __slots__ = (
        "channel_id",
        "lun_id",
        "blocks",
        "current_command",
        "busy_until",
        "free_block_ids",
        "busy_ns",
        "bad_block_ids",
    )

    def __init__(
        self,
        channel_id: int,
        lun_id: int,
        blocks_per_lun: int,
        pages_per_block: int,
        bad_block_ids: Optional[set[int]] = None,
        sanitize: bool = False,
    ):
        self.channel_id = channel_id
        self.lun_id = lun_id
        self.blocks = [
            Block(
                pages_per_block,
                sanitize=sanitize,
                label=f"(c{channel_id},l{lun_id},b{block_id})" if sanitize else "?",
            )
            for block_id in range(blocks_per_lun)
        ]
        self.current_command = None  # type: Optional[object]
        self.busy_until = 0
        #: Blocks that are fully erased and not handed out as open blocks.
        self.free_block_ids: set[int] = set(range(blocks_per_lun))
        #: Cumulative array-phase time, for utilisation statistics.
        self.busy_ns = 0
        #: Blocks masked as bad (factory defects + wear-outs).
        self.bad_block_ids: set[int] = set()
        for block_id in bad_block_ids or ():
            self.blocks[block_id].is_bad = True
            self.free_block_ids.discard(block_id)
            self.bad_block_ids.add(block_id)

    @property
    def is_busy(self) -> bool:
        return self.current_command is not None

    @property
    def key(self) -> tuple[int, int]:
        return (self.channel_id, self.lun_id)

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def take_free_block(self, block_id: int) -> Block:
        """Remove a block from the free set (it becomes an open block)."""
        if block_id not in self.free_block_ids:
            raise FlashStateError(f"block {block_id} is not free")
        self.free_block_ids.remove(block_id)
        return self.blocks[block_id]

    def on_block_erased(self, block_id: int) -> None:
        """Array hook: an erase completed, the block is free again."""
        self.free_block_ids.add(block_id)

    def retire_block(self, block_id: int) -> None:
        """Mask a worn-out block: it never returns to the free pool."""
        block = self.blocks[block_id]
        block.is_bad = True
        self.free_block_ids.discard(block_id)
        self.bad_block_ids.add(block_id)

    @property
    def usable_blocks(self) -> int:
        return len(self.blocks) - len(self.bad_block_ids)

    def total_live_pages(self) -> int:
        return sum(block.live_count for block in self.blocks)

    def total_dead_pages(self) -> int:
        return sum(block.dead_count for block in self.blocks)

    def total_free_pages(self) -> int:
        return sum(block.free_pages for block in self.blocks)

    def erase_counts(self) -> list[int]:
        return [block.erase_count for block in self.blocks]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Lun(c{self.channel_id},l{self.lun_id}, free_blocks="
            f"{len(self.free_block_ids)}, busy={self.is_busy})"
        )
