"""Flash page, block and LUN state machines.

The classes here enforce the NAND ground rules the rest of the simulator
relies on (DESIGN.md invariant 4):

* pages within a block are programmed strictly sequentially;
* a page is never programmed twice between erases;
* a block is only erased when it carries no live data and no in-flight
  read still targets it.

Validity is split between layers exactly as in a real SSD: the *array*
knows whether a page holds data (``LIVE``) or is erased (``FREE``); the
*FTL* decides when data becomes stale and calls :meth:`Block.invalidate`
(``DEAD``).

Since the array-backed refactor the actual state lives in flat numpy
arrays (:class:`repro.hardware.state.FlashState`): one structure-of-
arrays per device, shared by every LUN.  :class:`Page`, :class:`Block`
and :class:`Lun` are flyweight *views* into those arrays -- they keep
the exact pre-refactor interface (including attribute assignment, which
the sanitizer tests use to corrupt state on purpose) while bulk
consumers (GC victim selection, recovery scans, audits) read the arrays
directly.  Constructing a :class:`Block` or :class:`Lun` without an
explicit state builds a private single-LUN :class:`FlashState`, so the
classes remain usable standalone.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.core.sanitize import SanitizerError
from repro.hardware.state import FlashState, FreeBlockSet, iter_set_bits

PageContent = tuple[int, int]
"""What a programmed page stores: an ``(lpn, version)`` token.

The simulator does not shuffle real bytes around; the token is sufficient
for the read-your-writes integrity oracle used by the test suite.
Translation pages (DFTL) use negative pseudo-LPNs.
"""

_WORD_MASK = 0xFFFFFFFFFFFFFFFF


class PageState(enum.Enum):
    FREE = "free"  # erased, programmable
    LIVE = "live"  # programmed, mapped by the FTL
    DEAD = "dead"  # programmed, superseded -- reclaimable space


class FlashStateError(RuntimeError):
    """A NAND constraint was violated (always a simulator bug)."""


class Page:
    """View of one flash page (three packed bits + the content token)."""

    __slots__ = ("_state", "_block_id", "_page")

    def __init__(
        self,
        state: Optional[FlashState] = None,
        block_id: int = 0,
        page: int = 0,
    ) -> None:
        if state is None:
            state = FlashState(1, 1, 1)
        self._state = state
        self._block_id = block_id
        self._page = page

    @property
    def state(self) -> PageState:
        return PageState(self._state.page_state_name(self._block_id, self._page))

    @state.setter
    def state(self, value: PageState) -> None:
        s, b, p = self._state, self._block_id, self._page
        if value is PageState.FREE:
            s.clear_page_bit(s.mv_programmed, b, p)
            s.clear_page_bit(s.mv_valid, b, p)
        elif value is PageState.LIVE:
            s.set_page_bit(s.mv_programmed, b, p)
            s.set_page_bit(s.mv_valid, b, p)
        else:
            s.set_page_bit(s.mv_programmed, b, p)
            s.clear_page_bit(s.mv_valid, b, p)

    @property
    def content(self) -> Optional[PageContent]:
        return self._state.page_content(self._block_id, self._page)

    @content.setter
    def content(self, value: Optional[PageContent]) -> None:
        self._state.set_page_content(self._block_id, self._page, value)

    @property
    def torn(self) -> bool:
        """Power was lost while this page was being programmed: the cells
        hold an indeterminate mixture and any read would fail ECC.
        Torn pages are dead space until the block is erased."""
        return bool(self._state.page_bit(self._state.mv_torn, self._block_id, self._page))

    @torn.setter
    def torn(self, value: bool) -> None:
        s = self._state
        if value:
            s.set_page_bit(s.mv_torn, self._block_id, self._page)
        else:
            s.clear_page_bit(s.mv_torn, self._block_id, self._page)


class _PageSeq:
    """Lazy ``block.pages`` sequence: builds :class:`Page` views on demand."""

    __slots__ = ("_state", "_block_id")

    def __init__(self, state: FlashState, block_id: int) -> None:
        self._state = state
        self._block_id = block_id

    def __len__(self) -> int:
        return self._state.pages_per_block

    def __getitem__(self, index: int) -> Page:
        num_pages = self._state.pages_per_block
        if index < 0:
            index += num_pages
        if not 0 <= index < num_pages:
            raise IndexError(index)
        return Page(self._state, self._block_id, index)

    def __iter__(self):
        state, block_id = self._state, self._block_id
        for index in range(state.pages_per_block):
            yield Page(state, block_id, index)


class Block:
    """View of one erase block: ``num_pages`` pages plus wear metadata.

    The wear-leveling module consumes ``erase_count`` and
    ``last_erase_ns`` (paper Section 2.2 WL: the default module tracks
    block ages and last-erase timestamps).
    """

    __slots__ = ("_s", "_id", "_ppn_base", "num_pages", "sanitize", "label")

    def __init__(
        self,
        num_pages: int,
        sanitize: bool = False,
        label: str = "?",
        state: Optional[FlashState] = None,
        block_id: int = 0,
    ):
        if state is None:
            #: Standalone construction (tests, scratch blocks): a private
            #: one-block state backs this view alone.
            state = FlashState(1, 1, num_pages, sanitize=sanitize)
        self._s = state
        self._id = block_id
        self._ppn_base = block_id * state.pages_per_block
        self.num_pages = num_pages
        #: Sanitizer mode (:mod:`repro.core.sanitize`): verify the page
        #: state machine and the live/dead counters on every mutation.
        self.sanitize = sanitize
        #: Physical identity for sanitizer diagnostics, e.g. "(c0,l1,b3)".
        self.label = label

    # ------------------------------------------------------------------
    # Array-backed attributes
    # ------------------------------------------------------------------
    @property
    def write_pointer(self) -> int:
        """Next page index to program (NAND sequential-program rule)."""
        return self._s.mv_write_pointer[self._id]

    @write_pointer.setter
    def write_pointer(self, value: int) -> None:
        self._s.mv_write_pointer[self._id] = value

    @property
    def erase_count(self) -> int:
        return self._s.mv_erase_count[self._id]

    @erase_count.setter
    def erase_count(self, value: int) -> None:
        self._s.mv_erase_count[self._id] = value

    @property
    def last_erase_ns(self) -> int:
        return self._s.mv_last_erase_ns[self._id]

    @last_erase_ns.setter
    def last_erase_ns(self, value: int) -> None:
        self._s.mv_last_erase_ns[self._id] = value

    @property
    def last_write_ns(self) -> int:
        return self._s.mv_last_write_ns[self._id]

    @last_write_ns.setter
    def last_write_ns(self, value: int) -> None:
        self._s.mv_last_write_ns[self._id] = value

    @property
    def inflight_reads(self) -> int:
        """Reads queued or executing against this block; erases must wait
        until this drops to zero so stale-but-referenced data survives."""
        return self._s.mv_inflight_reads[self._id]

    @inflight_reads.setter
    def inflight_reads(self, value: int) -> None:
        self._s.mv_inflight_reads[self._id] = value

    @property
    def live_count(self) -> int:
        return self._s.mv_live_count[self._id]

    @live_count.setter
    def live_count(self, value: int) -> None:
        self._s.mv_live_count[self._id] = value

    @property
    def dead_count(self) -> int:
        return self._s.mv_dead_count[self._id]

    @dead_count.setter
    def dead_count(self, value: int) -> None:
        self._s.mv_dead_count[self._id] = value

    @property
    def is_bad(self) -> bool:
        """Factory-bad or worn out; masked from allocation forever."""
        return bool(self._s.mv_bad[self._id])

    @is_bad.setter
    def is_bad(self, value: bool) -> None:
        self._s.mv_bad[self._id] = 1 if value else 0

    @property
    def pages(self) -> _PageSeq:
        return _PageSeq(self._s, self._id)

    # ------------------------------------------------------------------
    # Derived state
    # ------------------------------------------------------------------
    @property
    def free_pages(self) -> int:
        return self.num_pages - self._s.mv_write_pointer[self._id]

    @property
    def is_empty(self) -> bool:
        """True when fully erased (allocatable as a fresh open block)."""
        return self._s.mv_write_pointer[self._id] == 0

    @property
    def is_full(self) -> bool:
        return self._s.mv_write_pointer[self._id] == self.num_pages

    @property
    def erasable(self) -> bool:
        """True when erasing would lose no data and break no reader."""
        s, block_id = self._s, self._id
        return (
            s.mv_live_count[block_id] == 0
            and s.mv_inflight_reads[block_id] == 0
            and s.mv_write_pointer[block_id] != 0
        )

    # ------------------------------------------------------------------
    # Mutations (called by the array at command completion, and by the
    # FTL for invalidation)
    # ------------------------------------------------------------------
    def program_next(self, content: PageContent, now_ns: int) -> int:
        """Program the next sequential page; returns its index."""
        if self.sanitize:
            self._sanitize_check("program")
        s, block_id = self._s, self._id
        index = s.mv_write_pointer[block_id]
        if index == self.num_pages:
            raise FlashStateError("program on a full block")
        word, bit = s.bit_location(block_id, index)
        programmed = s.mv_programmed[word]
        if (programmed >> bit) & 1:
            if self.sanitize:
                raise SanitizerError(
                    "erase-before-program",
                    f"page {index} programmed twice without an intervening erase",
                    {
                        "block": self.label,
                        "page": index,
                        "state": s.page_state_name(block_id, index),
                    },
                )
            raise FlashStateError(f"page {index} programmed twice without erase")
        mask = 1 << bit
        s.mv_programmed[word] = programmed | mask
        s.mv_valid[word] |= mask
        ppn = self._ppn_base + index
        s.mv_page_lpn[ppn] = content[0]
        s.mv_page_version[ppn] = content[1]
        s.mv_has_content[word] |= mask
        s.mv_write_pointer[block_id] = index + 1
        s.mv_live_count[block_id] += 1
        s.mv_last_write_ns[block_id] = now_ns
        return index

    def invalidate(self, page_index: int) -> None:
        """FTL hook: mark a superseded page as reclaimable."""
        if self.sanitize:
            self._sanitize_check("invalidate")
        s, block_id = self._s, self._id
        word, bit = s.bit_location(block_id, page_index)
        mask = 1 << bit
        valid = s.mv_valid[word]
        if not (valid & mask and s.mv_programmed[word] & mask):
            raise FlashStateError(f"invalidate on non-live page {page_index}")
        s.mv_valid[word] = valid & ~mask & _WORD_MASK
        s.mv_live_count[block_id] -= 1
        s.mv_dead_count[block_id] += 1

    def mark_torn(self, page_index: int) -> None:
        """Power-loss hook: the in-flight program writing this page was
        interrupted.  The page was charged at command start (NAND
        sequential-program bookkeeping), so it stays behind the write
        pointer, but its content is unreadable -- it becomes dead space."""
        s, block_id = self._s, self._id
        word, bit = s.bit_location(block_id, page_index)
        mask = 1 << bit
        s.mv_torn[word] |= mask
        valid = s.mv_valid[word]
        if valid & mask and s.mv_programmed[word] & mask:
            s.mv_valid[word] = valid & ~mask & _WORD_MASK
            s.mv_live_count[block_id] -= 1
            s.mv_dead_count[block_id] += 1

    def _sanitize_check(self, operation: str, full: bool = False) -> None:
        """Sanitize mode: counters and page states must agree.

        The O(1) counter identity ``live + dead == write_pointer`` runs
        before every mutation; erases additionally pay a packed-word scan
        verifying each page state (programmed strictly below the write
        pointer, erased at and above it)."""
        s, block_id = self._s, self._id
        write_pointer = s.mv_write_pointer[block_id]
        if s.mv_live_count[block_id] + s.mv_dead_count[block_id] != write_pointer:
            raise SanitizerError(
                "flash-page-state",
                f"{operation}: live+dead != write_pointer",
                {
                    "block": self.label,
                    "live": s.mv_live_count[block_id],
                    "dead": s.mv_dead_count[block_id],
                    "write_pointer": write_pointer,
                },
            )
        if not full:
            return
        base = block_id * s.words_per_block
        for word_index in range(s.words_per_block):
            offset = word_index << 6
            below = write_pointer - offset
            if below <= 0:
                expected = 0
            elif below >= 64:
                expected = _WORD_MASK
            else:
                expected = (1 << below) - 1
            mismatch = s.mv_programmed[base + word_index] ^ expected
            # Mask off the padding bits past num_pages in the last word.
            pages_here = min(64, self.num_pages - offset)
            if pages_here < 64:
                mismatch &= (1 << pages_here) - 1
            if mismatch:
                index = offset + next(iter_set_bits(mismatch))
                raise SanitizerError(
                    "flash-page-state",
                    f"{operation}: page state contradicts the write pointer",
                    {
                        "block": self.label,
                        "page": index,
                        "state": s.page_state_name(block_id, index),
                        "write_pointer": write_pointer,
                    },
                )

    def read(self, page_index: int) -> PageContent:
        """Content of a programmed page (live or dead -- stale reads of
        not-yet-erased data are legal, see ``inflight_reads``)."""
        s, block_id = self._s, self._id
        word, bit = s.bit_location(block_id, page_index)
        mask = 1 << bit
        if not (s.mv_programmed[word] & mask and s.mv_has_content[word] & mask):
            raise FlashStateError(f"read of unprogrammed page {page_index}")
        ppn = self._ppn_base + page_index
        return (s.mv_page_lpn[ppn], s.mv_page_version[ppn])

    def erase(self, now_ns: int) -> None:
        if self.sanitize:
            self._sanitize_check("erase", full=True)
        s, block_id = self._s, self._id
        live = s.mv_live_count[block_id]
        if live:
            raise FlashStateError(f"erase would destroy {live} live pages")
        inflight = s.mv_inflight_reads[block_id]
        if inflight:
            raise FlashStateError(f"erase with {inflight} in-flight reads")
        base = block_id * s.words_per_block
        for word_index in range(base, base + s.words_per_block):
            s.mv_programmed[word_index] = 0
            s.mv_valid[word_index] = 0
            s.mv_torn[word_index] = 0
            s.mv_has_content[word_index] = 0
        s.mv_write_pointer[block_id] = 0
        s.mv_live_count[block_id] = 0
        s.mv_dead_count[block_id] = 0
        s.mv_erase_count[block_id] += 1
        s.mv_last_erase_ns[block_id] = now_ns

    def live_page_indexes(self) -> list[int]:
        """Indexes of pages the FTL still maps (GC must relocate these)."""
        return self._s.live_page_indexes(self._id)


class _BlockSeq:
    """Lazy ``lun.blocks`` sequence: caches :class:`Block` views."""

    __slots__ = ("_lun", "_cache")

    def __init__(self, lun: "Lun") -> None:
        self._lun = lun
        self._cache: list[Optional[Block]] = [None] * lun.blocks_per_lun

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, index: int) -> Block:
        if index < 0:
            index += len(self._cache)
        view = self._cache[index]
        if view is None:
            view = self._lun._make_block(index)
            self._cache[index] = view
        return view

    def __iter__(self):
        for index in range(len(self._cache)):
            yield self[index]


class Lun:
    """One logical unit: the minimum granularity of parallelism.

    Executes one array operation at a time (``current_command`` /
    ``busy_until``) and owns its blocks.  Free-block membership is kept
    incrementally so allocation and GC-trigger checks are O(1).
    """

    __slots__ = (
        "channel_id",
        "lun_id",
        "lun_index",
        "blocks_per_lun",
        "state",
        "blocks",
        "current_command",
        "busy_until",
        "free_block_ids",
        "busy_ns",
        "bad_block_ids",
        "_block_base",
        "_sanitize",
    )

    def __init__(
        self,
        channel_id: int,
        lun_id: int,
        blocks_per_lun: int,
        pages_per_block: int,
        bad_block_ids: Optional[set[int]] = None,
        sanitize: bool = False,
        state: Optional[FlashState] = None,
        lun_index: int = 0,
    ):
        if state is None:
            #: Standalone construction: a private one-LUN state.
            state = FlashState(1, blocks_per_lun, pages_per_block, sanitize=sanitize)
            lun_index = 0
        self.channel_id = channel_id
        self.lun_id = lun_id
        self.lun_index = lun_index
        self.blocks_per_lun = blocks_per_lun
        self.state = state
        self._block_base = lun_index * blocks_per_lun
        self._sanitize = sanitize
        self.blocks = _BlockSeq(self)
        self.current_command = None  # type: Optional[object]
        self.busy_until = 0
        #: Blocks that are fully erased and not handed out as open blocks.
        self.free_block_ids = FreeBlockSet(state, lun_index)
        #: Cumulative array-phase time, for utilisation statistics.
        self.busy_ns = 0
        #: Blocks masked as bad (factory defects + wear-outs).
        self.bad_block_ids: set[int] = set()
        for block_id in bad_block_ids or ():
            state.mv_bad[self._block_base + block_id] = 1
            self.free_block_ids.discard(block_id)
            self.bad_block_ids.add(block_id)

    def _make_block(self, block_id: int) -> Block:
        label = (
            f"(c{self.channel_id},l{self.lun_id},b{block_id})"
            if self._sanitize
            else "?"
        )
        return Block(
            self.state.pages_per_block,
            sanitize=self._sanitize,
            label=label,
            state=self.state,
            block_id=self._block_base + block_id,
        )

    @property
    def is_busy(self) -> bool:
        return self.current_command is not None

    @property
    def key(self) -> tuple[int, int]:
        return (self.channel_id, self.lun_id)

    def block(self, block_id: int) -> Block:
        return self.blocks[block_id]

    def take_free_block(self, block_id: int) -> Block:
        """Remove a block from the free set (it becomes an open block)."""
        if block_id not in self.free_block_ids:
            raise FlashStateError(f"block {block_id} is not free")
        self.free_block_ids.remove(block_id)
        return self.blocks[block_id]

    def on_block_erased(self, block_id: int) -> None:
        """Array hook: an erase completed, the block is free again."""
        self.free_block_ids.add(block_id)

    def retire_block(self, block_id: int) -> None:
        """Mask a worn-out block: it never returns to the free pool."""
        self.state.mv_bad[self._block_base + block_id] = 1
        self.free_block_ids.discard(block_id)
        self.bad_block_ids.add(block_id)

    @property
    def usable_blocks(self) -> int:
        return self.blocks_per_lun - len(self.bad_block_ids)

    def total_live_pages(self) -> int:
        return self.state.lun_live_pages(self.lun_index)

    def total_dead_pages(self) -> int:
        return self.state.lun_dead_pages(self.lun_index)

    def total_free_pages(self) -> int:
        return self.state.lun_free_pages(self.lun_index)

    def erase_counts(self) -> list[int]:
        start, stop = self.state.block_range(self.lun_index)
        return self.state.erase_count[start:stop].tolist()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Lun(c{self.channel_id},l{self.lun_id}, free_blocks="
            f"{len(self.free_block_ids)}, busy={self.is_busy})"
        )
