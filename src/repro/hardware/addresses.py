"""Physical flash addressing.

A physical address names a page as ``(channel, lun, block, page)``.
Following the paper (footnote 1), the LUN is the minimum granularity of
parallelism and abstracts away packages, chips and dies, so no further
levels appear in the address.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from repro.core.config import SsdGeometry


class PhysicalAddress(NamedTuple):
    """Location of one flash page."""

    channel: int
    lun: int
    block: int
    page: int

    def block_address(self) -> "PhysicalAddress":
        """The same address with the page component zeroed (block id)."""
        return PhysicalAddress(self.channel, self.lun, self.block, 0)

    def same_lun(self, other: "PhysicalAddress") -> bool:
        return self.channel == other.channel and self.lun == other.lun

    def __str__(self) -> str:
        return f"(c{self.channel},l{self.lun},b{self.block},p{self.page})"


def validate_address(address: PhysicalAddress, geometry: SsdGeometry) -> None:
    """Raise ``ValueError`` unless ``address`` is inside ``geometry``."""
    if not 0 <= address.channel < geometry.channels:
        raise ValueError(f"channel out of range: {address}")
    if not 0 <= address.lun < geometry.luns_per_channel:
        raise ValueError(f"lun out of range: {address}")
    if not 0 <= address.block < geometry.blocks_per_lun:
        raise ValueError(f"block out of range: {address}")
    if not 0 <= address.page < geometry.pages_per_block:
        raise ValueError(f"page out of range: {address}")


def iter_luns(geometry: SsdGeometry) -> Iterator[tuple[int, int]]:
    """All ``(channel, lun)`` pairs in channel-major order."""
    for channel in range(geometry.channels):
        for lun in range(geometry.luns_per_channel):
            yield channel, lun


def lun_index(geometry: SsdGeometry, channel: int, lun: int) -> int:
    """Flat index of a LUN in channel-major order."""
    return channel * geometry.luns_per_channel + lun


def lun_from_index(geometry: SsdGeometry, index: int) -> tuple[int, int]:
    """Inverse of :func:`lun_index`."""
    return divmod(index, geometry.luns_per_channel)
