"""Physical flash addressing.

A physical address names a page as ``(channel, lun, block, page)``.
Following the paper (footnote 1), the LUN is the minimum granularity of
parallelism and abstracts away packages, chips and dies, so no further
levels appear in the address.

Since the array flattening (PR 7) every *other* address is a bare
``int`` in one of four distinct spaces.  The NewType-style aliases
below name those spaces; simlint's SIM010 rule taint-tracks values
through annotated signatures so an LPN handed to a PPN parameter (or a
per-block array indexed with a page id) is a lint error, without the
run-time cost of wrapper objects.  The aliases are plain ``int`` at
runtime and to mypy -- the *names* carry the contract:

``Lpn``
    logical page number, the host's address space.
``Ppn``
    global physical page number, ``AddressCodec.encode()``'s output.
``Pbn``
    global block id, ``lun_index * blocks_per_lun + block``.  Note that
    :attr:`PhysicalAddress.block` is a LUN-*local* block id, not a Pbn.
``LunIndex``
    flat LUN index in channel-major order (:func:`lun_index`).
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, TypeAlias

from repro.core.config import SsdGeometry

Lpn: TypeAlias = int
Ppn: TypeAlias = int
Pbn: TypeAlias = int
LunIndex: TypeAlias = int


class PhysicalAddress(NamedTuple):
    """Location of one flash page."""

    channel: int
    lun: int
    block: int
    page: int

    def block_address(self) -> "PhysicalAddress":
        """The same address with the page component zeroed (block id)."""
        return PhysicalAddress(self.channel, self.lun, self.block, 0)

    def same_lun(self, other: "PhysicalAddress") -> bool:
        return self.channel == other.channel and self.lun == other.lun

    def __str__(self) -> str:
        return f"(c{self.channel},l{self.lun},b{self.block},p{self.page})"


def validate_address(address: PhysicalAddress, geometry: SsdGeometry) -> None:
    """Raise ``ValueError`` unless ``address`` is inside ``geometry``."""
    if not 0 <= address.channel < geometry.channels:
        raise ValueError(f"channel out of range: {address}")
    if not 0 <= address.lun < geometry.luns_per_channel:
        raise ValueError(f"lun out of range: {address}")
    if not 0 <= address.block < geometry.blocks_per_lun:
        raise ValueError(f"block out of range: {address}")
    if not 0 <= address.page < geometry.pages_per_block:
        raise ValueError(f"page out of range: {address}")


def iter_luns(geometry: SsdGeometry) -> Iterator[tuple[int, int]]:
    """All ``(channel, lun)`` pairs in channel-major order."""
    for channel in range(geometry.channels):
        for lun in range(geometry.luns_per_channel):
            yield channel, lun


def lun_index(geometry: SsdGeometry, channel: int, lun: int) -> LunIndex:
    """Flat index of a LUN in channel-major order."""
    return channel * geometry.luns_per_channel + lun


def lun_from_index(geometry: SsdGeometry, index: int) -> tuple[int, int]:
    """Inverse of :func:`lun_index`."""
    return divmod(index, geometry.luns_per_channel)
