"""The hardware layer: the simulated flash memory array.

This package models everything below the SSD controller (paper Figure 1,
bottom box):

* :mod:`repro.hardware.addresses` -- physical addressing and geometry
  iteration (channel / LUN / block / page, per the ONFI LUN abstraction).
* :mod:`repro.hardware.flash` -- page, block and LUN state machines,
  enforcing NAND constraints (sequential programming, erase-before-reuse).
* :mod:`repro.hardware.commands` -- the flash command vocabulary
  exchanged between controller and array (read / program / erase /
  copyback, tagged with their originating source).
* :mod:`repro.hardware.channel` -- the shared channel (bus) resource,
  with operation interleaving within a channel.
* :mod:`repro.hardware.array` -- the flash array executor: runs commands
  through their bus and array phases in virtual time.
* :mod:`repro.hardware.memory` -- accounting of controller RAM and
  battery-backed RAM.
"""

from repro.hardware.addresses import PhysicalAddress
from repro.hardware.array import SsdArray
from repro.hardware.commands import CommandKind, CommandSource, FlashCommand
from repro.hardware.flash import Block, Lun, Page, PageState
from repro.hardware.memory import MemoryManager

__all__ = [
    "Block",
    "CommandKind",
    "CommandSource",
    "FlashCommand",
    "Lun",
    "MemoryManager",
    "Page",
    "PageState",
    "PhysicalAddress",
    "SsdArray",
]
