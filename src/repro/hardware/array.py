"""The flash array executor.

:class:`SsdArray` owns the channels and LUNs and runs
:class:`~repro.hardware.commands.FlashCommand` objects through their bus
and array phases in virtual time:

* ``READ``      bus(cmd) -> array(t_read) -> bus(cmd + data-out)
* ``PROGRAM``   bus(cmd + data-in) -> array(t_prog)
* ``ERASE``     bus(cmd) -> array(t_erase)
* ``COPYBACK``  bus(cmd) -> array(t_read) -> bus(cmd) -> array(t_prog)
  (the page moves inside the LUN; no data crosses the bus)

With interleaving enabled (paper Section 2.2) the channel is released
during array phases; otherwise the channel is held for the whole command.
With pipelining enabled (cache register) a read releases its LUN before
the data-out transfer, letting the next array operation start underneath.

Late binding of program targets: the array calls the controller-provided
``bind_program`` callback when a PROGRAM or COPYBACK *starts*, so pages
within each block are programmed strictly sequentially no matter how the
scheduler reordered the queue.
"""

from __future__ import annotations

import enum
from typing import Callable, Optional

from repro.core.config import ChipTimings, SsdGeometry
from repro.core.engine import Simulator
from repro.core.tracing import TraceRecorder
from repro.hardware.addresses import PhysicalAddress, iter_luns, validate_address
from repro.hardware.channel import Channel
from repro.hardware.commands import CommandKind, CommandOutcome, FlashCommand
from repro.hardware.flash import FlashStateError, Lun
from repro.hardware.state import AddressCodec, FlashState


class _Phase(enum.Enum):
    BUS = "bus"
    ARRAY = "array"


class SsdArray:
    """The simulated flash memory array (channels x LUNs)."""

    def __init__(
        self,
        sim: Simulator,
        geometry: SsdGeometry,
        timings: ChipTimings,
        interleaving: bool = True,
        pipelining: bool = False,
        tracer: Optional[TraceRecorder] = None,
        bad_blocks: Optional[dict[tuple[int, int], set[int]]] = None,
        sanitize: bool = False,
    ):
        self.sim = sim
        self.geometry = geometry
        self.timings = timings
        self.interleaving = interleaving
        self.pipelining = pipelining and timings.supports_pipelining
        self.tracer = tracer if tracer is not None else TraceRecorder(enabled=False)
        self.channels = [Channel(i) for i in range(geometry.channels)]
        bad_blocks = bad_blocks or {}
        #: The device-wide structure-of-arrays state every LUN views into.
        self.state = FlashState(
            geometry.total_luns,
            geometry.blocks_per_lun,
            geometry.pages_per_block,
            sanitize=sanitize,
        )
        self.codec = AddressCodec(
            geometry.luns_per_channel,
            geometry.blocks_per_lun,
            geometry.pages_per_block,
        )
        self.luns: dict[tuple[int, int], Lun] = {
            (c, l): Lun(
                c,
                l,
                geometry.blocks_per_lun,
                geometry.pages_per_block,
                bad_block_ids=bad_blocks.get((c, l)),
                sanitize=sanitize,
                state=self.state,
                lun_index=c * geometry.luns_per_channel + l,
            )
            for c, l in iter_luns(geometry)
        }
        #: Blocks retired at runtime after reaching endurance_cycles.
        self.retired_blocks = 0
        #: Set by the controller: invoked whenever a channel or LUN frees,
        #: so the scheduler can dispatch more work.
        self.on_resource_free: Callable[[], None] = lambda: None
        #: Set by the controller's allocator: binds the physical page of a
        #: PROGRAM (or a COPYBACK target) at command start.
        self.bind_program: Optional[Callable[[FlashCommand], PhysicalAddress]] = None
        #: Set by the controller when the reliability subsystem is enabled
        #: (:class:`repro.reliability.recovery.ReliabilityManager`); None
        #: keeps every error path and RNG stream untouched.
        self.reliability = None
        self.completed_commands = 0

    # ------------------------------------------------------------------
    # Topology accessors
    # ------------------------------------------------------------------
    def channel(self, channel_id: int) -> Channel:
        return self.channels[channel_id]

    def lun(self, channel_id: int, lun_id: int) -> Lun:
        return self.luns[(channel_id, lun_id)]

    def lun_of(self, cmd: FlashCommand) -> Lun:
        return self.luns[cmd.lun_key]

    # ------------------------------------------------------------------
    # Dispatch interface (called by the SSD scheduler)
    # ------------------------------------------------------------------
    def can_start(self, cmd: FlashCommand) -> bool:
        """True when the command's LUN and channel are both available and
        an erase target is actually erasable."""
        lun = self.lun_of(cmd)
        if lun.is_busy:
            return False
        channel = self.channels[cmd.address.channel]
        if not channel.is_free(self.sim.now):
            return False
        if cmd.kind is CommandKind.ERASE:
            return lun.block(cmd.address.block).erasable
        return True

    def start(self, cmd: FlashCommand) -> None:
        """Begin executing ``cmd``.  The caller must have verified
        :meth:`can_start`."""
        now = self.sim.now
        lun = self.lun_of(cmd)
        if lun.is_busy:
            raise FlashStateError(f"LUN {lun.key} busy, cannot start {cmd!r}")
        cmd.start_time = now
        lun.current_command = cmd
        self._apply_start_effects(cmd, lun)
        phases = self._phases(cmd)
        if not self.interleaving:
            total = sum(duration for _, duration in phases)
            self.channels[cmd.address.channel].occupy(now, total)
        self.tracer.record(now, "hardware", "start", self._describe(cmd))
        self._run_phase(cmd, phases, 0)

    # ------------------------------------------------------------------
    # Phase machinery
    # ------------------------------------------------------------------
    def _phases(self, cmd: FlashCommand) -> list[tuple[_Phase, int]]:
        t = self.timings
        page_bytes = self.geometry.page_size_bytes
        if cmd.kind is CommandKind.READ:
            return [
                (_Phase.BUS, t.t_cmd_ns),
                (_Phase.ARRAY, t.t_read_ns),
                (_Phase.BUS, t.t_cmd_ns + t.transfer_ns(page_bytes)),
            ]
        if cmd.kind is CommandKind.PROGRAM:
            return [
                (_Phase.BUS, t.t_cmd_ns + t.transfer_ns(page_bytes)),
                (_Phase.ARRAY, t.t_prog_ns),
            ]
        if cmd.kind is CommandKind.ERASE:
            return [(_Phase.BUS, t.t_cmd_ns), (_Phase.ARRAY, t.t_erase_ns)]
        if cmd.kind is CommandKind.COPYBACK:
            return [
                (_Phase.BUS, t.t_cmd_ns),
                (_Phase.ARRAY, t.t_read_ns),
                (_Phase.BUS, t.t_cmd_ns),
                (_Phase.ARRAY, t.t_prog_ns),
            ]
        raise ValueError(f"unknown command kind {cmd.kind!r}")

    def _run_phase(self, cmd: FlashCommand, phases: list, index: int) -> None:
        if index == len(phases):
            self._complete(cmd)
            return
        kind, duration = phases[index]
        if kind is _Phase.ARRAY:
            lun = self.lun_of(cmd)
            lun.busy_until = self.sim.now + duration
            lun.busy_ns += duration
            self.sim.post(duration, self._run_phase, cmd, phases, index + 1)
            return
        # Bus phase.
        if not self.interleaving:
            # Channel was reserved for the whole command at start.
            self.sim.post(duration, self._run_phase, cmd, phases, index + 1)
            return
        if self.pipelining and cmd.kind is CommandKind.READ and index == 2:
            # Cache register: the LUN can accept the next operation while
            # this read's data waits to drain over the bus.  Let the
            # scheduler dispatch *before* the data-out claims the channel
            # -- the next command's short command cycle slips ahead, so
            # its array time overlaps this transfer (cache-read mode).
            self._release_lun(cmd)
            self.on_resource_free()
        channel = self.channels[cmd.address.channel]
        if channel.is_free(self.sim.now):
            self._occupy_bus(cmd, phases, index, duration)
        else:
            channel.park_continuation(
                lambda: self._occupy_bus(cmd, phases, index, duration)
            )

    def _occupy_bus(self, cmd: FlashCommand, phases: list, index: int, duration: int) -> None:
        channel = self.channels[cmd.address.channel]
        channel.occupy(self.sim.now, duration)
        self.sim.post(duration, self._after_bus, cmd, phases, index)

    def _after_bus(self, cmd: FlashCommand, phases: list, index: int) -> None:
        self._run_phase(cmd, phases, index + 1)
        if self.interleaving:
            self._drain_channel(self.channels[cmd.address.channel])
        self.on_resource_free()

    def _drain_channel(self, channel: Channel) -> None:
        while channel.is_free(self.sim.now) and channel.has_continuations:
            resume = channel.pop_continuation()
            assert resume is not None
            resume()

    def _release_lun(self, cmd: FlashCommand) -> None:
        lun = self.lun_of(cmd)
        if lun.current_command is cmd:
            lun.current_command = None

    # ------------------------------------------------------------------
    # State effects
    # ------------------------------------------------------------------
    def _apply_start_effects(self, cmd: FlashCommand, lun: Lun) -> None:
        """Bind program targets and mutate flash state at command start.

        Programs take effect at start (the LUN is held for the duration,
        so no other operation can observe the intermediate state); reads
        and erases take effect at completion.
        """
        now = self.sim.now
        if cmd.kind is CommandKind.PROGRAM:
            if self.bind_program is None:
                raise FlashStateError("no program binder installed")
            if cmd.content is None:
                raise FlashStateError(f"{cmd!r} has no content to program")
            address = self.bind_program(cmd)
            validate_address(address, self.geometry)
            if (address.channel, address.lun) != cmd.lun_key:
                raise FlashStateError(
                    f"binder moved {cmd!r} across LUNs: {address}"
                )
            cmd.address = address
        elif cmd.kind is CommandKind.COPYBACK:
            if self.bind_program is None:
                raise FlashStateError("no program binder installed")
            source_block = lun.block(cmd.address.block)
            cmd.content = source_block.read(cmd.address.page)
            target = self.bind_program(cmd)
            validate_address(target, self.geometry)
            if not target.same_lun(cmd.address):
                raise FlashStateError(
                    f"copyback target {target} outside source LUN of {cmd!r}"
                )
            cmd.target_address = target
        if cmd.kind in (CommandKind.PROGRAM, CommandKind.COPYBACK):
            target_address = cmd.target_address or cmd.address
            block = lun.block(target_address.block)
            page_index = block.program_next(cmd.content, now)
            if page_index != target_address.page:
                raise FlashStateError(
                    f"binder returned page {target_address.page}, block wrote {page_index}"
                )
            if self.reliability is not None:
                self.reliability.on_page_programmed(target_address, cmd.content)

    def _complete(self, cmd: FlashCommand) -> None:
        now = self.sim.now
        lun = self.lun_of(cmd)
        decode_ns = 0
        if self.reliability is not None and cmd.kind is CommandKind.READ:
            decode_ns = self.reliability.read_decode_ns
        if cmd.kind is CommandKind.READ:
            block = lun.block(cmd.address.block)
            cmd.content = block.read(cmd.address.page)
            if decode_ns == 0:
                # With deferred delivery the read keeps its in-flight
                # hold until the decode finishes, so an erase of the
                # block cannot slip in between completion and a retry
                # the delivery might enqueue.
                block.inflight_reads -= 1
                if block.inflight_reads < 0:
                    raise FlashStateError(f"inflight_reads underflow on {cmd!r}")
            if self.reliability is not None:
                self.reliability.read_outcome(cmd, block, now)
        elif cmd.kind is CommandKind.PROGRAM:
            if self.reliability is not None:
                block = lun.block(cmd.address.block)
                if self.reliability.program_fails(cmd, block):
                    cmd.outcome = CommandOutcome.PROGRAM_FAIL
        elif cmd.kind is CommandKind.COPYBACK:
            source_block = lun.block(cmd.address.block)
            source_block.inflight_reads -= 1
            if source_block.inflight_reads < 0:
                raise FlashStateError(f"inflight_reads underflow on {cmd!r}")
        elif cmd.kind is CommandKind.ERASE:
            block = lun.block(cmd.address.block)
            if self.reliability is not None and self.reliability.erase_fails(cmd, block):
                # Failed erase: the block keeps its (dead) contents --
                # parity stays consistent and stale reads still work --
                # and leaves service on the spot.
                cmd.outcome = CommandOutcome.ERASE_FAIL
                lun.retire_block(cmd.address.block)
                self.retired_blocks += 1
                self.tracer.record(
                    now, "hardware", "retire",
                    f"block (c{cmd.address.channel},l{cmd.address.lun},"
                    f"b{cmd.address.block}) erase failure",
                )
                self.reliability.on_runtime_retirement(
                    cmd.lun_key, cmd.address.block, "erase failure"
                )
            else:
                if self.reliability is not None:
                    self.reliability.on_block_erase(cmd.lun_key, cmd.address.block, block)
                block.erase(now)
                endurance = self.timings.endurance_cycles
                if endurance is not None and block.erase_count >= endurance:
                    # Worn out: mask the block instead of freeing it.
                    lun.retire_block(cmd.address.block)
                    self.retired_blocks += 1
                    self.tracer.record(
                        now, "hardware", "retire",
                        f"block (c{cmd.address.channel},l{cmd.address.lun},"
                        f"b{cmd.address.block}) reached endurance",
                    )
                    if self.reliability is not None:
                        self.reliability.on_runtime_retirement(
                            cmd.lun_key, cmd.address.block, "endurance"
                        )
                else:
                    lun.on_block_erased(cmd.address.block)
        cmd.complete_time = now
        self._release_lun(cmd)
        self.completed_commands += 1
        self.tracer.record(now, "hardware", "complete", self._describe(cmd))
        if decode_ns > 0:
            # ECC decode: delay only the delivery -- the LUN and channel
            # are already free for the next operation.
            self.sim.post(decode_ns, self._deliver_decoded, cmd)
        elif cmd.on_complete is not None:
            cmd.on_complete(cmd)
        self.on_resource_free()

    def _deliver_decoded(self, cmd: FlashCommand) -> None:
        """Deliver a read after its ECC decode delay, releasing the
        in-flight hold that kept the block safe from erases meanwhile."""
        block = self.lun_of(cmd).block(cmd.address.block)
        if cmd.on_complete is not None:
            cmd.on_complete(cmd)
        block.inflight_reads -= 1
        if block.inflight_reads < 0:
            raise FlashStateError(f"inflight_reads underflow on {cmd!r}")
        self.on_resource_free()

    # ------------------------------------------------------------------
    # Power loss
    # ------------------------------------------------------------------
    def power_loss(self) -> list[PhysicalAddress]:
        """Destroy all volatile array state at a power cut.

        Programs and copybacks mutate flash at command *start* (see
        :meth:`_apply_start_effects`), so an in-flight one leaves a
        partially-programmed page behind: it is marked torn (dead,
        unreadable).  An in-flight erase applies at *completion*, so the
        block simply keeps its old contents.  Command/phase bookkeeping
        (LUN holds, channel occupancy, parked bus continuations,
        in-flight read holds) evaporates -- the events driving it are
        purged from the engine by the crash coordinator.

        Returns the torn page addresses, channel-major order.
        """
        torn: list[PhysicalAddress] = []
        for key in sorted(self.luns):
            lun = self.luns[key]
            cmd = lun.current_command
            if cmd is not None and cmd.kind in (
                CommandKind.PROGRAM,
                CommandKind.COPYBACK,
            ):
                address = cmd.target_address or cmd.address
                lun.block(address.block).mark_torn(address.page)
                torn.append(address)
            lun.current_command = None
            lun.busy_until = 0
        self.state.inflight_reads[:] = 0
        for channel in self.channels:
            channel.busy_until = 0
            channel.continuations.clear()
        return torn

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def total_live_pages(self) -> int:
        return int(self.state.live_count.sum())

    def erase_counts(self) -> list[int]:
        """Erase count of every block (wear histogram input)."""
        return self.state.erase_count.tolist()

    def channel_utilisation(self) -> list[float]:
        return [channel.utilisation(self.sim.now) for channel in self.channels]

    def lun_utilisation(self) -> dict[tuple[int, int], float]:
        now = self.sim.now
        if now <= 0:
            return {key: 0.0 for key in self.luns}
        return {key: min(1.0, lun.busy_ns / now) for key, lun in self.luns.items()}

    @staticmethod
    def _describe(cmd: FlashCommand) -> str:
        lpn = f" lpn={cmd.lpn}" if cmd.lpn is not None else ""
        target = f" -> {cmd.target_address}" if cmd.target_address else ""
        return f"{cmd.kind} {cmd.source} {cmd.address}{target}{lpn}"
