"""Controller memory accounting.

Paper Section 2.2: "EagleTree includes a memory manager used to track the
amount of RAM and battery-backed RAM used for the controller's metadata
and IO buffers."

The manager does not simulate access latency (controller RAM is orders
of magnitude faster than flash); it enforces *capacity*: mapping tables,
caches and write buffers must fit their configured budgets, and sizing
decisions (e.g. the DFTL CMT capacity) are derived from what remains.
"""

from __future__ import annotations

from repro.core import units


class OutOfMemoryError(RuntimeError):
    """An allocation exceeded the configured RAM budget."""


class _Pool:
    """One capacity-tracked memory pool."""

    def __init__(self, name: str, capacity_bytes: int):
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.allocations: dict[str, int] = {}

    @property
    def used_bytes(self) -> int:
        return sum(self.allocations.values())

    @property
    def available_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, label: str, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("allocation size must be non-negative")
        current = self.allocations.get(label, 0)
        if self.used_bytes - current + num_bytes > self.capacity_bytes:
            raise OutOfMemoryError(
                f"{self.name}: cannot hold {units.format_bytes(num_bytes)} for "
                f"{label!r} ({units.format_bytes(self.available_bytes + current)} free "
                f"of {units.format_bytes(self.capacity_bytes)})"
            )
        self.allocations[label] = num_bytes

    def free(self, label: str) -> None:
        self.allocations.pop(label, None)


class MemoryManager:
    """Tracks the controller's RAM and battery-backed RAM budgets.

    Allocations are labelled so re-allocating under the same label
    *resizes* rather than leaks -- convenient for caches that grow.
    """

    def __init__(self, ram_bytes: int, battery_ram_bytes: int):
        self.ram = _Pool("RAM", ram_bytes)
        self.battery_ram = _Pool("battery-backed RAM", battery_ram_bytes)

    def allocate_ram(self, label: str, num_bytes: int) -> None:
        """Claim ``num_bytes`` of plain controller RAM for ``label``."""
        self.ram.allocate(label, num_bytes)

    def allocate_battery_ram(self, label: str, num_bytes: int) -> None:
        """Claim ``num_bytes`` of battery-backed (persistent) RAM."""
        self.battery_ram.allocate(label, num_bytes)

    def free_ram(self, label: str) -> None:
        self.ram.free(label)

    def free_battery_ram(self, label: str) -> None:
        self.battery_ram.free(label)

    @property
    def ram_available(self) -> int:
        return self.ram.available_bytes

    @property
    def battery_ram_available(self) -> int:
        return self.battery_ram.available_bytes

    def report(self) -> str:
        lines = ["== controller memory =="]
        for pool in (self.ram, self.battery_ram):
            lines.append(
                f"{pool.name}: {units.format_bytes(pool.used_bytes)} used / "
                f"{units.format_bytes(pool.capacity_bytes)}"
            )
            for label, size in sorted(pool.allocations.items()):
                lines.append(f"  {label:<24} {units.format_bytes(size)}")
        return "\n".join(lines)
