"""Flat array-backed device state: the scale substrate of the simulator.

Everything the device-state hot path used to keep in per-page Python
objects and per-LPN dicts lives here as flat numpy arrays (DESIGN.md
"Array-backed device state"):

* :class:`FlashState` -- structure-of-arrays for every block and page of
  the device: packed-bit ``programmed`` / ``valid`` / ``torn`` /
  ``has_content`` bitmaps (one block-aligned run of 64-bit words per
  block) plus per-block metadata vectors (write pointer, erase count,
  live/dead counters, timestamps, bad flags).
* :class:`MappingTable` -- a single ``int64`` LPN -> PPN table storing
  ``ppn + 1`` so that 0 means *unmapped* (``np.zeros`` is calloc-backed:
  untouched table regions cost no resident memory, which is what lets a
  terabyte-class device fit in laptop RAM).
* :class:`VersionTable` -- per-LPN monotonic write versions, with the
  DFTL translation-page pseudo-LPNs (``-(tp+1)``) folded into the tail
  of the same array.
* :class:`FreeBlockSet` -- a per-LUN free-block membership view with
  O(1) ``len``/``in`` and set-compatible equality.

Scalar hot-path access goes through cached :class:`memoryview` objects
(~2x faster than numpy scalar indexing and returning plain Python ints);
bulk queries (GC victim selection, validity audits, recovery scans) use
vectorized numpy reductions over the same buffers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.hardware.addresses import Lpn, LunIndex, Pbn, Ppn

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.hardware.addresses import PhysicalAddress

#: Number of 64-bit words needed for ``bits`` packed bits.
def words_for(bits: int) -> int:
    return (bits + 63) >> 6


def popcounts(words: np.ndarray) -> np.ndarray:
    """Per-element set-bit counts of a uint64 array."""
    return np.bitwise_count(words)


def iter_set_bits(word: int) -> Iterator[int]:
    """Bit indexes of ``word``, ascending."""
    while word:
        low = word & -word
        yield low.bit_length() - 1
        word ^= low


class FlashState:
    """Structure-of-arrays state for every page and block of a device.

    Blocks are identified by a *global block id*
    ``lun_index * blocks_per_lun + block`` and pages by a *global page
    number* (PPN) ``block_id * pages_per_block + page``.  Bitmaps are
    block-aligned: each block owns ``words_per_block`` 64-bit words, so
    per-block operations (erase, popcount, validity audits) are whole
    word-row operations regardless of ``pages_per_block``.
    """

    def __init__(
        self,
        num_luns: int,
        blocks_per_lun: int,
        pages_per_block: int,
        sanitize: bool = False,
    ) -> None:
        self.num_luns = num_luns
        self.blocks_per_lun = blocks_per_lun
        self.pages_per_block = pages_per_block
        self.sanitize = sanitize
        self.num_blocks = num_luns * blocks_per_lun
        self.num_pages = self.num_blocks * pages_per_block
        self.words_per_block = words_for(pages_per_block)
        num_words = self.num_blocks * self.words_per_block

        # Per-page payload: the (lpn, version) token of a programmed
        # page.  Meaningful only where ``has_content`` is set.
        self.page_lpn = np.zeros(self.num_pages, dtype=np.int64)
        self.page_version = np.zeros(self.num_pages, dtype=np.int64)

        # Packed page bitmaps.  Page states are derived:
        #   FREE = !programmed;  LIVE = programmed & valid;
        #   DEAD = programmed & !valid.
        # ``programmed`` is explicit (not derived from the write pointer)
        # so the sanitizer's erase scan can catch ghost pages programmed
        # behind the pointer's back.
        self.programmed = np.zeros(num_words, dtype=np.uint64)
        self.valid = np.zeros(num_words, dtype=np.uint64)
        self.torn = np.zeros(num_words, dtype=np.uint64)
        self.has_content = np.zeros(num_words, dtype=np.uint64)

        # Per-block metadata vectors.
        self.write_pointer = np.zeros(self.num_blocks, dtype=np.int64)
        self.erase_count = np.zeros(self.num_blocks, dtype=np.int64)
        self.last_erase_ns = np.zeros(self.num_blocks, dtype=np.int64)
        self.last_write_ns = np.zeros(self.num_blocks, dtype=np.int64)
        self.inflight_reads = np.zeros(self.num_blocks, dtype=np.int64)
        self.live_count = np.zeros(self.num_blocks, dtype=np.int64)
        self.dead_count = np.zeros(self.num_blocks, dtype=np.int64)
        self.bad = np.zeros(self.num_blocks, dtype=np.uint8)
        self.block_free = np.ones(self.num_blocks, dtype=np.uint8)

        # Cached memoryviews: scalar reads/writes through these return
        # plain Python ints and skip numpy's scalar boxing.
        self.mv_page_lpn = memoryview(self.page_lpn)
        self.mv_page_version = memoryview(self.page_version)
        self.mv_programmed = memoryview(self.programmed)
        self.mv_valid = memoryview(self.valid)
        self.mv_torn = memoryview(self.torn)
        self.mv_has_content = memoryview(self.has_content)
        self.mv_write_pointer = memoryview(self.write_pointer)
        self.mv_erase_count = memoryview(self.erase_count)
        self.mv_last_erase_ns = memoryview(self.last_erase_ns)
        self.mv_last_write_ns = memoryview(self.last_write_ns)
        self.mv_inflight_reads = memoryview(self.inflight_reads)
        self.mv_live_count = memoryview(self.live_count)
        self.mv_dead_count = memoryview(self.dead_count)
        self.mv_bad = memoryview(self.bad)
        self.mv_block_free = memoryview(self.block_free)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    def block_range(self, lun_index: LunIndex) -> tuple[Pbn, Pbn]:
        """Global block-id span ``[start, stop)`` owned by a LUN."""
        start = lun_index * self.blocks_per_lun
        return start, start + self.blocks_per_lun

    def memory_bytes(self) -> int:
        """Bytes allocated (virtually) for the device-state arrays."""
        return sum(
            arr.nbytes
            for arr in (
                self.page_lpn, self.page_version,
                self.programmed, self.valid, self.torn, self.has_content,
                self.write_pointer, self.erase_count, self.last_erase_ns,
                self.last_write_ns, self.inflight_reads,
                self.live_count, self.dead_count, self.bad, self.block_free,
            )
        )

    # ------------------------------------------------------------------
    # Packed-bit helpers (page bits within block-aligned word rows)
    # ------------------------------------------------------------------
    def bit_location(self, block_id: Pbn, page: int) -> tuple[int, int]:
        return block_id * self.words_per_block + (page >> 6), page & 63

    def page_bit(self, bitmap: memoryview, block_id: Pbn, page: int) -> int:
        word, bit = self.bit_location(block_id, page)
        return (bitmap[word] >> bit) & 1

    def set_page_bit(self, bitmap: memoryview, block_id: Pbn, page: int) -> None:
        word, bit = self.bit_location(block_id, page)
        bitmap[word] |= 1 << bit

    def clear_page_bit(self, bitmap: memoryview, block_id: Pbn, page: int) -> None:
        word, bit = self.bit_location(block_id, page)
        bitmap[word] &= ~(1 << bit) & 0xFFFFFFFFFFFFFFFF

    def block_words(self, bitmap: np.ndarray) -> np.ndarray:
        """The bitmap reshaped to ``(num_blocks, words_per_block)``."""
        return bitmap.reshape(self.num_blocks, self.words_per_block)

    def live_page_indexes(self, block_id: Pbn) -> list[int]:
        """Pages of a block that are LIVE (programmed & valid), ascending."""
        valid = self.mv_valid
        base = block_id * self.words_per_block
        indexes: list[int] = []
        for word_index in range(self.words_per_block):
            offset = word_index << 6
            for bit in iter_set_bits(valid[base + word_index]):
                indexes.append(offset + bit)
        return indexes

    def page_state_name(self, block_id: Pbn, page: int) -> str:
        if not self.page_bit(self.mv_programmed, block_id, page):
            return "free"
        if self.page_bit(self.mv_valid, block_id, page):
            return "live"
        return "dead"

    def page_content(self, block_id: Pbn, page: int) -> Optional[tuple[Lpn, int]]:
        if not self.page_bit(self.mv_has_content, block_id, page):
            return None
        ppn = block_id * self.pages_per_block + page
        return (self.mv_page_lpn[ppn], self.mv_page_version[ppn])

    def set_page_content(
        self, block_id: Pbn, page: int, content: Optional[tuple[Lpn, int]]
    ) -> None:
        if content is None:
            self.clear_page_bit(self.mv_has_content, block_id, page)
            return
        ppn = block_id * self.pages_per_block + page
        self.mv_page_lpn[ppn] = content[0]
        self.mv_page_version[ppn] = content[1]
        self.set_page_bit(self.mv_has_content, block_id, page)

    # ------------------------------------------------------------------
    # Whole-device aggregates
    # ------------------------------------------------------------------
    def lun_live_pages(self, lun_index: LunIndex) -> int:
        start, stop = self.block_range(lun_index)
        return int(self.live_count[start:stop].sum())

    def lun_dead_pages(self, lun_index: LunIndex) -> int:
        start, stop = self.block_range(lun_index)
        return int(self.dead_count[start:stop].sum())

    def lun_free_pages(self, lun_index: LunIndex) -> int:
        start, stop = self.block_range(lun_index)
        span = stop - start
        return span * self.pages_per_block - int(
            self.write_pointer[start:stop].sum()
        )


class AddressCodec:
    """PPN <-> :class:`PhysicalAddress` conversion for one geometry."""

    __slots__ = (
        "luns_per_channel",
        "blocks_per_lun",
        "pages_per_block",
        "pages_per_lun",
    )

    def __init__(
        self, luns_per_channel: int, blocks_per_lun: int, pages_per_block: int
    ) -> None:
        self.luns_per_channel = luns_per_channel
        self.blocks_per_lun = blocks_per_lun
        self.pages_per_block = pages_per_block
        self.pages_per_lun = blocks_per_lun * pages_per_block

    def encode(self, channel: int, lun: int, block: int, page: int) -> Ppn:
        lun_index = channel * self.luns_per_channel + lun
        return (lun_index * self.blocks_per_lun + block) * self.pages_per_block + page

    def decode(self, ppn: Ppn) -> "PhysicalAddress":
        from repro.hardware.addresses import PhysicalAddress

        page = ppn % self.pages_per_block
        block_id = ppn // self.pages_per_block
        block = block_id % self.blocks_per_lun
        lun_index = block_id // self.blocks_per_lun
        return PhysicalAddress(
            lun_index // self.luns_per_channel,
            lun_index % self.luns_per_channel,
            block,
            page,
        )


class MappingTable:
    """A flat LPN -> PPN table: ``int64`` holding ``ppn + 1`` (0 = unmapped).

    The +1 shift keeps the *unmapped* sentinel at 0 so the table can be
    calloc-allocated (``np.zeros``): a terabyte-class mapping table only
    occupies resident memory where LPNs have actually been written.  The
    mapped count is maintained incrementally so ``len()`` is O(1).
    """

    __slots__ = ("codec", "table", "_mv", "_mapped")

    def __init__(self, logical_pages: int, codec: AddressCodec) -> None:
        self.codec = codec
        self.table = np.zeros(logical_pages, dtype=np.int64)
        self._mv = memoryview(self.table)
        self._mapped = 0

    def __len__(self) -> int:
        return self._mapped

    def __contains__(self, lpn: Lpn) -> bool:
        return self._mv[lpn] != 0

    def __getitem__(self, lpn: Lpn) -> "PhysicalAddress":
        encoded = self._mv[lpn]
        if encoded == 0:
            raise KeyError(lpn)
        return self.codec.decode(encoded - 1)

    def get(self, lpn: Lpn) -> Optional["PhysicalAddress"]:
        encoded = self._mv[lpn]
        if encoded == 0:
            return None
        return self.codec.decode(encoded - 1)

    def get_ppn(self, lpn: Lpn) -> Ppn:
        """Encoded ``ppn + 1`` (0 when unmapped) -- no address boxing."""
        return self._mv[lpn]

    def set(self, lpn: Lpn, address: "PhysicalAddress") -> None:
        encoded = self.codec.encode(
            address.channel, address.lun, address.block, address.page
        ) + 1
        if self._mv[lpn] == 0:
            self._mapped += 1
        self._mv[lpn] = encoded

    def pop(self, lpn: Lpn) -> Optional["PhysicalAddress"]:
        encoded = self._mv[lpn]
        if encoded == 0:
            return None
        self._mv[lpn] = 0
        self._mapped -= 1
        return self.codec.decode(encoded - 1)

    def discard(self, lpn: Lpn) -> None:
        if self._mv[lpn] != 0:
            self._mv[lpn] = 0
            self._mapped -= 1

    def mapped_lpns(self) -> np.ndarray:
        """All mapped LPNs, ascending (vectorized scan)."""
        return np.nonzero(self.table)[0]

    def items_sorted(self) -> Iterator[tuple[int, "PhysicalAddress"]]:
        """(lpn, address) pairs in ascending LPN order."""
        decode = self.codec.decode
        table = self.table
        for lpn in np.nonzero(table)[0].tolist():
            yield lpn, decode(int(table[lpn]) - 1)

    def clear(self) -> None:
        self.table[:] = 0
        self._mapped = 0

    def memory_bytes(self) -> int:
        return int(self.table.nbytes)


class VersionTable:
    """Per-LPN monotonic version counters with pseudo-LPN folding.

    DFTL journals translation pages under negative pseudo-LPNs
    ``-(tp + 1)``; those are folded into the tail of the same array at
    index ``logical_pages + tp``.  Versions start at 1 (0 = never
    issued), matching the former ``dict.get(lpn, 0)`` semantics.
    """

    __slots__ = ("logical_pages", "table", "_mv")

    def __init__(self, logical_pages: int, pseudo_lpns: int = 0) -> None:
        self.logical_pages = logical_pages
        self.table = np.zeros(logical_pages + pseudo_lpns, dtype=np.int64)
        self._mv = memoryview(self.table)

    def _index(self, lpn: Lpn) -> int:
        if lpn >= 0:
            return lpn
        return self.logical_pages + (-lpn - 1)

    def get(self, lpn: Lpn, default: int = 0) -> int:
        value = self._mv[self._index(lpn)]
        return value if value else default

    def set(self, lpn: Lpn, version: int) -> None:
        self._mv[self._index(lpn)] = version

    def bump(self, lpn: Lpn) -> int:
        """Increment and return the version (the ``next_version`` hot path)."""
        index = self._index(lpn)
        version = self._mv[index] + 1
        self._mv[index] = version
        return version

    def to_dict(self) -> dict[int, int]:
        """Nonzero entries as a plain ``{lpn: version}`` dict (diagnostics
        and crash-divergence checks; zero entries were never issued)."""
        logical = self.logical_pages
        out: dict[int, int] = {}
        for index in np.nonzero(self.table)[0].tolist():
            lpn = index if index < logical else -(index - logical) - 1
            out[lpn] = int(self.table[index])
        return out

    def load_dict(self, versions: dict[int, int]) -> None:
        self.table[:] = 0
        for lpn, version in versions.items():
            self._mv[self._index(lpn)] = version

    def array_equal(self, other: "VersionTable") -> bool:
        return bool(np.array_equal(self.table, other.table))

    def memory_bytes(self) -> int:
        return int(self.table.nbytes)


class FreeBlockSet:
    """Free-block membership of one LUN, backed by ``FlashState.block_free``.

    Behaves like the ``set[int]`` of *local* block ids it replaced:
    O(1) ``len``/``in``/add/remove, ascending iteration, and equality
    against plain sets (the order-free operations are the only ones the
    simulator ever used).
    """

    __slots__ = ("_state", "_base", "_span", "_mv", "_count")

    def __init__(self, state: FlashState, lun_index: LunIndex) -> None:
        self._state = state
        self._base, stop = state.block_range(lun_index)
        self._span = stop - self._base
        self._mv = state.mv_block_free
        self._count = int(
            state.block_free[self._base : self._base + self._span].sum()
        )

    def __len__(self) -> int:
        return self._count

    def __bool__(self) -> bool:
        return self._count > 0

    def __contains__(self, block_id: int) -> bool:
        return 0 <= block_id < self._span and bool(self._mv[self._base + block_id])

    def __iter__(self) -> Iterator[int]:
        free = self._state.block_free[self._base : self._base + self._span]
        return iter(np.nonzero(free)[0].tolist())

    def __eq__(self, other: object) -> bool:
        if isinstance(other, (set, frozenset)):
            return set(self) == other
        if isinstance(other, FreeBlockSet):
            return set(self) == set(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FreeBlockSet({sorted(self)!r})"

    def add(self, block_id: int) -> None:
        index = self._base + block_id
        if not self._mv[index]:
            self._mv[index] = 1
            self._count += 1

    def remove(self, block_id: int) -> None:
        index = self._base + block_id
        if not self._mv[index]:
            raise KeyError(block_id)
        self._mv[index] = 0
        self._count -= 1

    def discard(self, block_id: int) -> None:
        index = self._base + block_id
        if self._mv[index]:
            self._mv[index] = 0
            self._count -= 1

    def mask(self) -> np.ndarray:
        """Boolean membership mask over the LUN's local block ids."""
        return self._state.block_free[self._base : self._base + self._span] != 0
