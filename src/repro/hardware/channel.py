"""The shared channel (bus) resource.

Tens of LUNs share each channel; the channel carries command/address
cycles and page data transfers.  EagleTree "supports parallelism among
channels and operation interleaving within a channel" (Section 2.2): with
interleaving enabled the bus is released while a LUN performs its array
operation, so other LUNs on the same channel can be served meanwhile.

A command whose *later* bus phase (a read's data-out, a copyback's second
command cycle) finds the bus busy parks itself in the channel's
continuation queue; continuations are served FIFO and take precedence
over starting new commands, which mirrors controllers draining chip
registers promptly.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Optional


class Channel:
    """One bus shared by the LUNs of a channel."""

    __slots__ = ("channel_id", "busy_until", "continuations", "busy_ns", "_last_occupy")

    def __init__(self, channel_id: int):
        self.channel_id = channel_id
        self.busy_until = 0
        #: Parked mid-command bus phases: (resume_callback,) entries.
        self.continuations: deque[Callable[[], None]] = deque()
        #: Total occupied time, for utilisation statistics.
        self.busy_ns = 0
        self._last_occupy: Optional[tuple[int, int]] = None

    def is_free(self, now_ns: int) -> bool:
        return now_ns >= self.busy_until

    def occupy(self, now_ns: int, duration_ns: int) -> int:
        """Occupy the bus for ``duration_ns`` starting now; returns the
        end time.  The caller must have checked :meth:`is_free`."""
        if not self.is_free(now_ns):
            raise RuntimeError(
                f"channel {self.channel_id} occupied until {self.busy_until}, now {now_ns}"
            )
        self.busy_until = now_ns + duration_ns
        self.busy_ns += duration_ns
        self._last_occupy = (now_ns, self.busy_until)
        return self.busy_until

    def park_continuation(self, resume: Callable[[], None]) -> None:
        """Queue a mid-command bus phase to run when the bus frees."""
        self.continuations.append(resume)

    def pop_continuation(self) -> Optional[Callable[[], None]]:
        if self.continuations:
            return self.continuations.popleft()
        return None

    @property
    def has_continuations(self) -> bool:
        return bool(self.continuations)

    def utilisation(self, now_ns: int) -> float:
        """Fraction of virtual time the bus has been occupied."""
        if now_ns <= 0:
            return 0.0
        return min(1.0, self.busy_ns / now_ns)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Channel({self.channel_id}, busy_until={self.busy_until}, "
            f"continuations={len(self.continuations)})"
        )
