"""repro: a Python reproduction of EagleTree (Dayan et al., VLDB 2013).

EagleTree is a simulation framework for SSD-based algorithms covering
the complete IO stack -- application threads, operating system, SSD
controller and flash array -- running entirely in virtual time.  This
package reimplements it with the same four-layer architecture:

* :mod:`repro.hardware`   -- channels, LUNs, blocks, pages, timings.
* :mod:`repro.controller` -- FTLs, GC, wear leveling, SSD scheduling.
* :mod:`repro.host`       -- the OS layer and the open OS<->SSD interface.
* :mod:`repro.workloads`  -- the thread framework and canned workloads.
* :mod:`repro.core`       -- event engine, configuration, statistics,
  tracing, and the experiment-template suite.
* :mod:`repro.analysis`   -- metrics and terminal reporting.
* :mod:`repro.service`    -- the experiment service: content-addressed
  result cache, async job runner, live dashboard.

Quickstart::

    from repro import Simulation, small_config
    from repro.workloads import RandomWriterThread

    sim = Simulation(small_config())
    sim.add_thread(RandomWriterThread("writer", count=2000))
    result = sim.run()
    print(result.report())
"""

from repro.core.config import (
    AllocationPolicy,
    ChipTimings,
    ControllerConfig,
    CrashConfig,
    FtlKind,
    GcVictimPolicy,
    HostConfig,
    OsSchedulerPolicy,
    OverloadConfig,
    RecoveryStrategy,
    ReliabilityConfig,
    SimulationConfig,
    SsdGeometry,
    SsdSchedulerPolicy,
    TemperatureDetector,
    demo_config,
    small_config,
)
from repro.core.events import IoRequest, IoStatus, IoType
from repro.core.power import (
    CrashStats,
    MountReport,
    PowerLossEvent,
    PowerRestoreEvent,
)
from repro.core.experiments import (
    ExperimentResult,
    ExperimentTemplate,
    GridExperiment,
    GridResult,
    Parameter,
)
from repro.core.parallel import (
    RunSpec,
    SweepExecutor,
    SweepRunError,
    WorkerStalledError,
)
from repro.core.sanitize import SanitizerError
from repro.core.simulation import Simulation, SimulationResult
from repro.host.interface import QueueFullError
from repro.reliability import FaultPlan
from repro.service import (
    CachedResult,
    ExperimentService,
    JobState,
    JobStatus,
    ResultCache,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationPolicy",
    "CachedResult",
    "ChipTimings",
    "ControllerConfig",
    "CrashConfig",
    "CrashStats",
    "ExperimentResult",
    "ExperimentService",
    "GridExperiment",
    "GridResult",
    "ExperimentTemplate",
    "FaultPlan",
    "FtlKind",
    "GcVictimPolicy",
    "HostConfig",
    "IoRequest",
    "IoStatus",
    "IoType",
    "JobState",
    "JobStatus",
    "MountReport",
    "OsSchedulerPolicy",
    "OverloadConfig",
    "Parameter",
    "PowerLossEvent",
    "PowerRestoreEvent",
    "QueueFullError",
    "RecoveryStrategy",
    "ReliabilityConfig",
    "ResultCache",
    "RunSpec",
    "SanitizerError",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "SsdGeometry",
    "SsdSchedulerPolicy",
    "SweepExecutor",
    "SweepRunError",
    "TemperatureDetector",
    "WorkerStalledError",
    "demo_config",
    "small_config",
]
