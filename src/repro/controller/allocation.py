"""Write allocation: binding writes to LUNs, open blocks and pages.

Two decisions are split in time, mirroring the paper's observation that
"for writes, the mapping scheme imposes constraints on which physical
address a given IO might be bound to" while the scheduler decides
"where [...] and precisely when":

* **LUN choice** happens when a write command is created
  (:meth:`WriteAllocator.place_write`), according to the configured
  :class:`~repro.core.config.AllocationPolicy`.
* **Page binding** happens when the command starts executing on the
  array (:meth:`WriteAllocator.bind_program`), so pages inside a block
  are always programmed sequentially regardless of queue reordering.

The allocator maintains one *open block* per (LUN, stream).  Streams
separate data that should not share blocks: application hot/cold data
(temperature-aware placement), update-locality groups (open-interface
hint), GC relocations, wear-leveling migrations and DFTL translation
pages.  Dynamic wear leveling happens at free-block selection: hot
streams receive young (low erase count) blocks and cold streams old
blocks, as in the paper ("associate hot data with young blocks and cold
data with old blocks").

One free block per LUN is reserved for the garbage collector so that GC
can always make forward progress (deadlock freedom).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

import numpy as np

from repro.core.config import AllocationPolicy, SimulationConfig
from repro.core.events import WriteHints
from repro.hardware.addresses import PhysicalAddress, iter_luns
from repro.hardware.array import SsdArray
from repro.hardware.commands import CommandKind, FlashCommand
from repro.hardware.flash import Lun

#: Streams allowed to dip into the per-LUN GC reserve block: every GC
#: relocation stream ("gc", and "gc_hot"/"gc_cold" under temperature-
#: aware placement).
def _is_gc_stream(stream: str) -> bool:
    return stream.startswith("gc")


#: Streams carrying *known-cold* data, parked on old (high erase count)
#: blocks to retire them.  Plain GC survivors are NOT here: under a hot
#: workload they are hot, and sending them to the single oldest block
#: would concentrate wear instead of leveling it.  ``gc_cold`` IS here:
#: it only exists when a temperature source vouches for the data.
_COLD_STREAMS = frozenset({"app_cold", "wl_cold", "gc_cold"})

#: Number of distinct locality open blocks kept per LUN.
_LOCALITY_SLOTS = 4


class AllocationError(RuntimeError):
    """No physical page could be bound for a write (simulator bug or a
    configuration with no GC headroom)."""


class WriteAllocator:
    """Chooses LUNs, open blocks and pages for program operations."""

    def __init__(
        self,
        array: SsdArray,
        config: SimulationConfig,
        classify: Callable[[int, WriteHints], str],
        queue_depth: Callable[[tuple[int, int]], int],
    ):
        self.array = array
        self.config = config
        self.policy = config.controller.allocation
        #: Maps (lpn, hints) to an application stream name; provided by
        #: the controller from the temperature module.
        self.classify = classify
        #: Scheduler probe for the LEAST_QUEUED policy.
        self.queue_depth = queue_depth
        self.lun_keys = list(iter_luns(config.geometry))
        self._round_robin = itertools.cycle(self.lun_keys)
        #: (lun_key, stream) -> open block id.
        self.open_blocks: dict[tuple[tuple[int, int], str], int] = {}
        #: Free blocks per LUN held back for the garbage collector.
        self.gc_reserve = 1
        #: Called when a free block is consumed (GC trigger check).
        self.on_free_block_taken: Callable[[tuple[int, int]], None] = lambda key: None
        self._dynamic_wl = config.controller.wear_leveling.dynamic

    # ------------------------------------------------------------------
    # LUN choice (at command creation)
    # ------------------------------------------------------------------
    def place_write(self, lpn: int, hints: WriteHints) -> tuple[tuple[int, int], str]:
        """Choose the (channel, lun) and allocation stream for a new
        application write."""
        stream = "app"
        if self.policy is AllocationPolicy.TEMPERATURE:
            stream = self.classify(lpn, hints)
        if self.policy is AllocationPolicy.LOCALITY and "locality" in hints:
            group = int(hints["locality"])
            lun_key = self.lun_keys[group % len(self.lun_keys)]
            # Spread groups over (LUN, slot) combinations injectively up
            # to total_luns * slots groups, so co-updated groups do not
            # share open blocks unnecessarily.
            slot = (group // len(self.lun_keys)) % _LOCALITY_SLOTS
            return lun_key, f"loc{slot}"
        if self.policy is AllocationPolicy.STRIPE:
            return self.lun_keys[lpn % len(self.lun_keys)], stream
        if self.policy is AllocationPolicy.LEAST_QUEUED:
            return self._least_queued(stream), stream
        # ROUND_ROBIN, TEMPERATURE and LOCALITY-without-hint rotate.
        return self._next_with_capacity(stream), stream

    def place_internal(
        self, stream: str, exclude: Optional[tuple[int, int]] = None
    ) -> tuple[int, int]:
        """Choose a LUN for an internal write (translation pages,
        write-buffer flushes, rebalancing GC): round-robin over LUNs with
        capacity, optionally excluding one LUN (the rebalancing source)."""
        return self._next_with_capacity(stream, exclude=exclude)

    def _least_queued(self, stream: str) -> tuple[int, int]:
        best_key: Optional[tuple[int, int]] = None
        best_depth = 0
        for lun_key in self.lun_keys:
            if not self.has_capacity(lun_key, stream):
                continue
            depth = self.queue_depth(lun_key)
            if best_key is None or depth < best_depth:
                best_key, best_depth = lun_key, depth
        if best_key is not None:
            return best_key
        return self._next_with_capacity(stream)

    def _next_with_capacity(
        self, stream: str, exclude: Optional[tuple[int, int]] = None
    ) -> tuple[int, int]:
        first_choice = next(self._round_robin)
        lun_key = first_choice
        fallback = None
        for _ in range(len(self.lun_keys)):
            if lun_key != exclude:
                if fallback is None:
                    fallback = lun_key
                if self.has_capacity(lun_key, stream):
                    return lun_key
            lun_key = next(self._round_robin)
        # Every eligible LUN is at its watermark: keep the first eligible
        # rotation pick; the command waits until GC frees space there.
        return fallback if fallback is not None else first_choice

    # ------------------------------------------------------------------
    # Page binding (at command start) and its eligibility predicate
    # ------------------------------------------------------------------
    def can_bind(self, cmd: FlashCommand) -> bool:
        """True when a physical page can be bound for ``cmd`` right now."""
        if cmd.kind is CommandKind.PROGRAM and cmd.address.block >= 0:
            # Explicitly block-bound program (hybrid FTL): bindable while
            # the designated block has room.
            lun = self.array.luns[cmd.lun_key]
            return not lun.block(cmd.address.block).is_full
        if cmd.kind is CommandKind.COPYBACK:
            # The exact gc stream is only known once the source page is
            # read at start; the conservative check is "any gc capacity".
            return self._gc_capacity(cmd.lun_key)
        stream = self._stream_of(cmd)
        if _is_gc_stream(stream):
            return self._gc_capacity(cmd.lun_key)
        return self.has_capacity(cmd.lun_key, stream)

    def has_capacity(self, lun_key: tuple[int, int], stream: str) -> bool:
        lun = self.array.luns[lun_key]
        block_id = self.open_blocks.get((lun_key, stream))
        if block_id is not None and not lun.block(block_id).is_full:
            return True
        return self._free_blocks_available(lun, stream) > 0

    def _gc_capacity(self, lun_key: tuple[int, int]) -> bool:
        """GC can bind when any gc-stream open block has space or a free
        block exists (gc streams may use the reserve)."""
        lun = self.array.luns[lun_key]
        if lun.free_block_ids:
            return True
        return self._gc_fallback_block(lun, lun_key) is not None

    def _gc_fallback_block(self, lun: Lun, lun_key: tuple[int, int]):
        """Any gc-stream open block on this LUN with a free page.

        With temperature-aware GC there can be several gc streams; when
        one cannot open a fresh block (reserve exhausted mid-job) it
        spills into a sibling's open block rather than deadlocking.
        """
        # simlint: disable=SIM003 -- open_blocks is a plain dict: insertion
        # order is deterministic and favours the longest-open gc stream.
        for (key, stream), block_id in self.open_blocks.items():
            if key == lun_key and _is_gc_stream(stream):
                if not lun.block(block_id).is_full:
                    return block_id
        return None

    def bind_program(self, cmd: FlashCommand) -> PhysicalAddress:
        """Array callback: pick the physical page for a starting PROGRAM
        or COPYBACK command."""
        lun_key = cmd.lun_key
        if cmd.kind is CommandKind.PROGRAM and cmd.address.block >= 0:
            # Explicitly block-bound program: next sequential page of the
            # designated block.
            block = self.array.luns[lun_key].block(cmd.address.block)
            return PhysicalAddress(
                lun_key[0], lun_key[1], cmd.address.block, block.write_pointer
            )
        stream = self._stream_of(cmd)
        lun = self.array.luns[lun_key]
        block_id = self.open_blocks.get((lun_key, stream))
        if block_id is None or lun.block(block_id).is_full:
            try:
                block_id = self._open_new_block(lun, lun_key, stream)
            except AllocationError:
                if not _is_gc_stream(stream):
                    raise
                block_id = self._gc_fallback_block(lun, lun_key)
                if block_id is None:
                    raise
        block = lun.block(block_id)
        return PhysicalAddress(lun_key[0], lun_key[1], block_id, block.write_pointer)

    def _open_new_block(self, lun: Lun, lun_key: tuple[int, int], stream: str) -> int:
        if self._free_blocks_available(lun, stream) <= 0:
            raise AllocationError(
                f"no bindable block on LUN {lun_key} for stream {stream!r} "
                f"(free={len(lun.free_block_ids)}, reserve={self.gc_reserve})"
            )
        block_id = self._pick_free_block(lun, stream)
        lun.take_free_block(block_id)
        self.open_blocks[(lun_key, stream)] = block_id
        self.on_free_block_taken(lun_key)
        return block_id

    def _free_blocks_available(self, lun: Lun, stream: str) -> int:
        free = len(lun.free_block_ids)
        if _is_gc_stream(stream):
            return free
        return free - self.gc_reserve

    def _pick_free_block(self, lun: Lun, stream: str) -> int:
        """Dynamic wear leveling: known-cold streams retire old blocks;
        everything else takes the youngest block (classic wear-aware
        allocation).  Vectorized over the LUN's free-block mask."""
        state = lun.state
        start, _ = state.block_range(lun.lun_index)
        candidates = np.nonzero(lun.free_block_ids.mask())[0]
        if self._dynamic_wl and stream in _COLD_STREAMS:
            # max over (erase_count, -block_id): lowest id among maxima.
            erases = state.erase_count[start + candidates]
            return int(candidates[int(np.argmax(erases == erases.max()))])
        if self._dynamic_wl:
            erases = state.erase_count[start + candidates]
            return int(candidates[int(np.argmax(erases == erases.min()))])
        return int(candidates[0])

    def gc_stream_for(self, lpn: int) -> str:
        """The relocation stream for a GC'd page: temperature-aware when
        the allocation policy separates temperatures, so hot and cold
        survivors do not re-mix at every GC cycle."""
        if self.policy is AllocationPolicy.TEMPERATURE:
            app_stream = self.classify(lpn, {})
            if app_stream == "app_hot":
                return "gc_hot"
            if app_stream == "app_cold":
                return "gc_cold"
        return "gc"

    def _stream_of(self, cmd: FlashCommand) -> str:
        if cmd.kind is CommandKind.COPYBACK:
            if cmd.content is not None and cmd.content[0] >= 0:
                return self.gc_stream_for(cmd.content[0])
            return "gc"
        return cmd.stream

    # ------------------------------------------------------------------
    # Introspection for GC / WL
    # ------------------------------------------------------------------
    def open_block_ids(self, lun_key: tuple[int, int]) -> set[int]:
        """Blocks currently open for writing on a LUN.

        GC and WL must not touch these.  Full blocks are excluded even if
        still registered: they will be replaced at the next bind and are
        legitimate reclamation victims already.
        """
        lun = self.array.luns[lun_key]
        return {
            block_id
            for (key, _), block_id in self.open_blocks.items()
            if key == lun_key and not lun.block(block_id).is_full
        }

    def note_erased(self, lun_key: tuple[int, int], block_id: int) -> None:
        """Controller hook: a block was erased.  Any stale open-block
        registration pointing at it must be dropped, otherwise a stream
        would keep writing a block that re-entered the free list."""
        self.release_open_block(lun_key, block_id)

    def release_open_block(self, lun_key: tuple[int, int], block_id: int) -> None:
        """Forget an open block registration."""
        stale = [
            key
            for key, registered in sorted(self.open_blocks.items())
            if key[0] == lun_key and registered == block_id
        ]
        for key in stale:
            del self.open_blocks[key]
