"""Wear leveling (paper Section 2.2).

"The default wear leveling module keeps track of (1) the ages of all
blocks, (2) a timestamp for each block marking the time in which it was
last erased, (3) the average length of time it takes a block to be
erased, and (4) the current time.  Using this information, the WL module
can identify particularly young blocks that have not been erased for a
very long time, and can target them for static wear leveling."

Static WL is implemented here: every ``check_interval_erases`` block
erases the module scans for blocks whose erase count lies well below the
average and which have not been erased for several average erase
intervals.  The live (hence cold) data of such a block is migrated to an
*old* block -- the pages are reported to the temperature module as cold
-- and the young block is erased, making it available to hot writes.

Dynamic WL -- handing young free blocks to hot streams and old free
blocks to cold streams -- lives in the allocator's free-block selection
(:meth:`repro.controller.allocation.WriteAllocator._pick_free_block`).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from repro.hardware.addresses import PhysicalAddress, iter_luns
from repro.hardware.commands import CommandKind, CommandSource, FlashCommand

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import SsdController


class _Migration:
    """One in-progress static-WL migration of one young block."""

    __slots__ = ("lun_key", "block_id", "pending")

    def __init__(self, lun_key: tuple[int, int], block_id: int):
        self.lun_key = lun_key
        self.block_id = block_id
        self.pending = 0


class WearLeveler:
    """Static wear leveling: migrate cold data off under-erased blocks."""

    def __init__(self, controller: "SsdController"):
        self.controller = controller
        self.config = controller.config.controller.wear_leveling
        self._erases_since_check = 0
        #: Rotates the scan's starting LUN so the concurrency cap does
        #: not starve later LUNs of migrations.
        self._scan_rotation = 0
        self.total_erases = 0
        self.active: dict[tuple[tuple[int, int], int], _Migration] = {}
        self.migrations_started = 0
        self.migrated_pages = 0

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    def on_erase(self) -> None:
        """Controller hook, called on every completed block erase."""
        self.total_erases += 1
        if not self.config.enabled:
            return
        if self.controller.ftl.manages_physical_space:
            # The hybrid FTL's block map cannot express arbitrary page
            # relocations; static WL stands down (as in real hybrid FTLs,
            # which level wear through their own merge choices).
            return
        self._erases_since_check += 1
        if self._erases_since_check >= self.config.check_interval_erases:
            self._erases_since_check = 0
            self._scan()

    # ------------------------------------------------------------------
    # Static-WL scan
    # ------------------------------------------------------------------
    def _scan(self) -> None:
        array = self.controller.array
        geometry = self.controller.config.geometry
        now = self.controller.sim.now
        num_blocks = geometry.total_blocks
        if self.total_erases == 0 or now == 0:
            return
        average_erases = self.total_erases / num_blocks
        # Average time between erases of one block, estimated globally.
        average_interval = now / max(1.0, average_erases)
        erase_floor = average_erases - self.config.erase_count_threshold
        idle_floor = self.config.idle_factor * average_interval
        lun_keys = list(iter_luns(geometry))
        start = self._scan_rotation % len(lun_keys)
        self._scan_rotation += 1
        for offset in range(len(lun_keys)):
            if len(self.active) >= self.config.max_concurrent_migrations:
                return
            lun_key = lun_keys[(start + offset) % len(lun_keys)]
            lun = array.luns[lun_key]
            state = lun.state
            lo, hi = state.block_range(lun.lun_index)
            # Under-erased occupied blocks whose data has sat cold for at
            # least one idle interval.  A recently-written block holds
            # fresh (likely hot) data; migrating it would pump hot pages
            # onto old blocks and concentrate wear instead of leveling it.
            mask = (
                (state.block_free[lo:hi] == 0)
                & (state.write_pointer[lo:hi] > 0)
                & (state.live_count[lo:hi] > 0)
                & (state.erase_count[lo:hi] < erase_floor)
                & (now - state.last_erase_ns[lo:hi] > idle_floor)
                & (now - state.last_write_ns[lo:hi] > idle_floor)
            )
            for block_id in self.controller.allocator.open_block_ids(lun_key):
                mask[block_id] = False
            for block_id in np.nonzero(mask)[0].tolist():
                if (lun_key, block_id) in self.active:
                    continue
                if self.controller.gc_is_collecting(lun_key, block_id):
                    continue
                self._migrate(lun_key, block_id)
                if len(self.active) >= self.config.max_concurrent_migrations:
                    return

    def _migrate(self, lun_key: tuple[int, int], block_id: int) -> None:
        migration = _Migration(lun_key, block_id)
        self.active[(lun_key, block_id)] = migration
        self.migrations_started += 1
        lun = self.controller.array.luns[lun_key]
        block = lun.block(block_id)
        live_pages = block.live_page_indexes()
        self.controller.tracer.record(
            self.controller.sim.now,
            "controller",
            "wl-start",
            f"young block (c{lun_key[0]},l{lun_key[1]},b{block_id}) "
            f"erases={block.erase_count} live={len(live_pages)}",
        )
        migration.pending = len(live_pages)
        if not live_pages:
            self._issue_erase(migration)
            return
        for page_index in live_pages:
            source = PhysicalAddress(lun_key[0], lun_key[1], block_id, page_index)
            cmd = FlashCommand(
                CommandKind.READ,
                CommandSource.WEAR_LEVELING,
                source,
                context=migration,
                on_complete=self._read_done,
            )
            self.controller.enqueue_command(cmd)

    def _read_done(self, cmd: FlashCommand) -> None:
        assert cmd.content is not None
        lun_key = self.controller.allocator.place_internal("wl_cold")
        program = FlashCommand(
            CommandKind.PROGRAM,
            CommandSource.WEAR_LEVELING,
            PhysicalAddress(lun_key[0], lun_key[1], -1, -1),
            lpn=cmd.content[0],
            content=cmd.content,
            stream="wl_cold",
            context=(cmd.context, cmd.address),
            on_complete=self._program_done,
        )
        self.controller.enqueue_command(program)

    def _program_done(self, cmd: FlashCommand) -> None:
        migration, source = cmd.context
        assert cmd.content is not None
        live = self.controller.ftl.on_relocation(cmd.content, source, cmd.address)
        if live and cmd.content[0] >= 0:
            # Migrated data is cold by assumption (paper, option 1).
            self.controller.temperature.mark_cold(cmd.content[0])
        self.migrated_pages += 1
        migration.pending -= 1
        if migration.pending == 0:
            self._issue_erase(migration)

    def _issue_erase(self, migration: _Migration) -> None:
        cmd = FlashCommand(
            CommandKind.ERASE,
            CommandSource.WEAR_LEVELING,
            PhysicalAddress(
                migration.lun_key[0], migration.lun_key[1], migration.block_id, 0
            ),
            context=migration,
            on_complete=self._erase_done,
        )
        self.controller.enqueue_command(cmd)

    def _erase_done(self, cmd: FlashCommand) -> None:
        migration = cmd.context
        self.active.pop((migration.lun_key, migration.block_id), None)
        self.controller.tracer.record(
            self.controller.sim.now,
            "controller",
            "wl-done",
            f"freed (c{migration.lun_key[0]},l{migration.lun_key[1]},"
            f"b{migration.block_id})",
        )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def wear_statistics(self) -> dict[str, float]:
        """Spread of erase counts across all blocks."""
        counts = self.controller.array.erase_counts()
        mean = sum(counts) / len(counts)
        variance = sum((c - mean) ** 2 for c in counts) / len(counts)
        return {
            "min": float(min(counts)),
            "max": float(max(counts)),
            "mean": mean,
            "stddev": math.sqrt(variance),
            "spread": float(max(counts) - min(counts)),
        }
