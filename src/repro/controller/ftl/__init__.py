"""Flash translation layers (paper Section 2.2, Mapping).

"For now, we have considered the most flexible schemes i.e., page-based
mappings: the well-known DFTL and a page-based mapping scheme where the
entire mapping is kept in RAM."  Both are implemented, plus the classic
hybrid scheme as an extension of the mapping design space:

* :class:`repro.controller.ftl.page_ftl.PageMapFtl` -- full page map in
  controller RAM.
* :class:`repro.controller.ftl.dftl.DftlFtl` -- demand-paged mapping
  with a cached mapping table and translation pages on flash.
* :class:`repro.controller.ftl.hybrid.HybridFtl` -- block mapping with
  page-mapped log blocks and full/switch merges (FAST-style).
"""

from repro.controller.ftl.base import BaseFtl
from repro.controller.ftl.dftl import DftlFtl
from repro.controller.ftl.hybrid import HybridFtl
from repro.controller.ftl.page_ftl import PageMapFtl
from repro.core.config import FtlKind


def build_ftl(kind: FtlKind, controller) -> BaseFtl:
    """Factory used by :class:`repro.controller.controller.SsdController`."""
    if kind is FtlKind.PAGE:
        return PageMapFtl(controller)
    if kind is FtlKind.DFTL:
        return DftlFtl(controller)
    if kind is FtlKind.HYBRID:
        return HybridFtl(controller)
    raise ValueError(f"unknown FTL kind {kind!r}")


__all__ = ["BaseFtl", "DftlFtl", "HybridFtl", "PageMapFtl", "build_ftl"]
