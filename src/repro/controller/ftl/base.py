"""Common machinery shared by the mapping schemes.

The FTL owns the logical-to-physical map, assigns write *versions* (the
``(lpn, version)`` tokens stored in flash pages), invalidates superseded
pages, and arbitrates races:

* Two in-flight writes to the same LPN may complete out of order across
  LUNs; only the highest version may win the mapping, the other page is
  invalidated as an orphan (:meth:`BaseFtl._commit_write`).
* A GC/WL relocation may land after the application has already
  rewritten the page; the relocated copy is then an orphan too
  (:meth:`BaseFtl.on_relocation` in the subclasses).

Subclasses implement the mapping-lookup side: in RAM for
:class:`~repro.controller.ftl.page_ftl.PageMapFtl`, demand-paged for
:class:`~repro.controller.ftl.dftl.DftlFtl`.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.events import IoRequest, WriteHints
from repro.hardware.addresses import Lpn, PhysicalAddress
from repro.hardware.flash import PageContent
from repro.hardware.state import VersionTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import SsdController


class BaseFtl(abc.ABC):
    """Interface and shared state of the flash translation layers."""

    #: True when the FTL owns physical space reclamation itself (the
    #: hybrid FTL's merges); the controller's generic GC and wear
    #: leveling modules stand down in that case.
    manages_physical_space = False

    def __init__(self, controller: "SsdController"):
        self.controller = controller
        logical_pages = controller.config.logical_pages
        pseudo = self._metadata_pseudo_lpns(controller)
        #: Highest version number issued per LPN (flat array table; DFTL's
        #: negative translation-page pseudo-LPNs fold into the tail).
        self._issued_versions = VersionTable(logical_pages, pseudo)
        #: Highest version number that has won the mapping per LPN.
        self._committed_versions = VersionTable(logical_pages, pseudo)

    def _metadata_pseudo_lpns(self, controller: "SsdController") -> int:
        """Negative pseudo-LPN slots the scheme versions (DFTL overrides)."""
        return 0

    # ------------------------------------------------------------------
    # Logical IO entry points (called by the controller)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def read(self, io: IoRequest) -> None:
        """Serve a logical read; ends with ``controller.complete_io``."""

    @abc.abstractmethod
    def write(
        self,
        io: Optional[IoRequest],
        lpn: Lpn,
        hints: WriteHints,
        on_done: Optional[Callable[[], None]] = None,
        version: Optional[int] = None,
    ) -> None:
        """Serve a logical write.

        ``io`` may be ``None`` for internal writes (write-buffer
        flushes).  ``on_done``, when given, is called once the program
        completed and the mapping decision was made.  ``version`` lets a
        caller that already reserved a version (the write buffer, at
        admission time) pass it through; by default a fresh version is
        drawn here.
        """

    @abc.abstractmethod
    def trim(self, io: IoRequest) -> None:
        """Drop the mapping for a page (the paper's trim IO type)."""

    # ------------------------------------------------------------------
    # GC / WL cooperation
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def on_relocation(
        self,
        content: PageContent,
        old_address: PhysicalAddress,
        new_address: PhysicalAddress,
    ) -> bool:
        """A GC or WL relocation finished: the data at ``old_address``
        now also exists at ``new_address``.

        Updates the authoritative mapping if it still referenced
        ``old_address`` and invalidates whichever copy is stale.
        Returns True when the new copy became live.
        """

    # ------------------------------------------------------------------
    # Introspection (tests, invariants, reporting)
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def mapped_address(self, lpn: Lpn) -> Optional[PhysicalAddress]:
        """Current physical location of a logical page, if mapped."""

    @abc.abstractmethod
    def mapped_page_count(self) -> int:
        """Number of logical pages currently mapped."""

    def metadata_page_count(self) -> int:
        """Flash pages holding FTL metadata (translation pages)."""
        return 0

    # ------------------------------------------------------------------
    # Crash consistency (armed only when a power loss is scheduled)
    # ------------------------------------------------------------------
    def snapshot_map(self) -> dict[int, tuple[PhysicalAddress, int]]:
        """The committed logical mapping: ``lpn -> (address, version)``.

        Used by the checkpoint manager (persist the mapping) and by the
        crash coordinator (the ground truth a recovery must reproduce).
        Only positive LPNs -- FTL metadata pages are not logical state.
        """
        raise NotImplementedError

    def rebuild_from_recovery(
        self,
        mapping: dict[int, tuple[PhysicalAddress, int]],
        issued_versions: dict[int, int],
        committed_versions: dict[int, int],
    ) -> None:
        """Install a recovered mapping into a freshly-built FTL at mount.

        ``issued_versions``/``committed_versions`` are carried over from
        the pre-crash device as simulator bookkeeping: version numbers
        stay monotonic across the crash so the in-flight-race arbitration
        in :meth:`_commit_write` keeps working.
        """
        raise NotImplementedError

    def _journal_commit(self, lpn: Lpn, version: int, address: PhysicalAddress) -> None:
        """Record a mapping change in the crash journal, if one is armed.
        Negative (metadata pseudo-)LPNs are not logical state."""
        journal = self.controller.journal
        if journal is not None and lpn >= 0:
            journal.record_write(lpn, version, address)

    def _journal_trim(self, lpn: Lpn) -> None:
        journal = self.controller.journal
        if journal is not None and lpn >= 0:
            journal.record_trim(lpn)

    def _load_version_tables(
        self, issued_versions: dict[int, int], committed_versions: dict[int, int]
    ) -> None:
        """Install carried-over version counters at mount (shared by every
        subclass's :meth:`rebuild_from_recovery`)."""
        self._issued_versions.load_dict(issued_versions)
        self._committed_versions.load_dict(committed_versions)

    def table_memory_bytes(self) -> int:
        """Bytes of the FTL's array-backed tables (device-memory report)."""
        return (
            self._issued_versions.memory_bytes()
            + self._committed_versions.memory_bytes()
            + self._mapping_memory_bytes()
        )

    def _mapping_memory_bytes(self) -> int:
        """Bytes of the scheme-specific mapping structures."""
        return 0

    def expected_live_pages(self) -> int:
        """Live flash pages implied by the mapping state; equals the
        array's live-page count at quiescence (DESIGN.md invariant 3)."""
        return self.mapped_page_count() + self.metadata_page_count()

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def next_version(self, lpn: Lpn) -> int:
        return self._issued_versions.bump(lpn)

    def _invalidate(self, address: PhysicalAddress) -> None:
        lun = self.controller.array.luns[(address.channel, address.lun)]
        lun.block(address.block).invalidate(address.page)
        # A LUN stalled at its free-block watermark may have been waiting
        # for its first reclaimable page: re-check the GC trigger.
        self.controller.gc.maybe_trigger((address.channel, address.lun))

    def _commit_write(
        self,
        lpn: Lpn,
        version: int,
        new_address: PhysicalAddress,
        old_address: Optional[PhysicalAddress],
    ) -> bool:
        """Decide whether a completed program wins the mapping.

        Returns True (caller updates its map to ``new_address`` after the
        previous location was invalidated here) or False (the program was
        superseded while in flight; its page was invalidated as orphan).
        """
        if version > self._committed_versions.get(lpn, 0):
            self._committed_versions.set(lpn, version)
            if old_address is not None:
                self._invalidate(old_address)
            self._journal_commit(lpn, version, new_address)
            return True
        self._invalidate(new_address)
        return False

    def _supersede(self, lpn: Lpn) -> None:
        """Trim support: mark every in-flight write of ``lpn`` stale."""
        self._committed_versions.set(lpn, self._issued_versions.get(lpn, 0))
        self._journal_trim(lpn)
