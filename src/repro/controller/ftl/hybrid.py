"""FAST-style hybrid FTL: block mapping plus page-mapped log blocks.

The paper confines itself to "the most flexible schemes i.e., page-based
mappings"; this module extends the framework's mapping design space with
the classic hybrid scheme those papers compare against:

* most of the device is **block-mapped**: logical block ``lbn`` maps to
  one physical block, page offsets fixed (RAM cost: 4 bytes per block
  instead of 8 per page);
* updates land in a small pool of **page-mapped log blocks**;
* when the log pool is exhausted, a **merge** reclaims space: the oldest
  full log block's logical blocks are rewritten into fresh data blocks
  (a *full merge*: one read+program per page, in offset order), or, when
  a log block holds exactly one logical block written in order, it is
  simply promoted (*switch merge* -- no copying at all).

The hybrid FTL manages physical space itself (merges ARE its garbage
collection), so the controller's generic GC and wear-leveling modules
stand down (``manages_physical_space``).

Correctness under concurrency follows the same discipline as the other
FTLs: reads consult the log map before the block map; merge commits
compare each snapshot source against the current authoritative location,
so pages overwritten or trimmed mid-merge leave the freshly merged copy
as an invalidated orphan.

Design note: like the classic BAST/FAST descriptions, the log has a
single append point (one active log block at a time), so hybrid write
throughput is bounded by one LUN's program bandwidth even when write
amplification is near 1 -- visible in experiment E5b.  Page-level FTLs
stripe writes across every LUN; that freedom is precisely what the
block-level map gives up in exchange for its tiny RAM footprint.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.controller.ftl.base import BaseFtl
from repro.core.events import IoRequest, WriteHints
from repro.hardware.addresses import Lpn, PhysicalAddress
from repro.hardware.commands import CommandKind, CommandSource, FlashCommand
from repro.hardware.state import iter_set_bits, popcounts, words_for

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import SsdController

_WORD_MASK = 0xFFFFFFFFFFFFFFFF


class HybridFtl(BaseFtl):
    """Block-mapped FTL with a page-mapped log-block update area."""

    manages_physical_space = True

    def __init__(self, controller: "SsdController"):
        super().__init__(controller)
        config = controller.config
        hybrid = config.controller.hybrid
        geometry = config.geometry
        self.ppb = geometry.pages_per_block
        self.num_lbns = -(-config.logical_pages // self.ppb)
        self.max_log_blocks = hybrid.log_blocks
        self.switch_merge_enabled = hybrid.switch_merge
        if self.max_log_blocks < 1:
            raise ValueError("hybrid FTL needs at least one log block")
        # Feasibility: data blocks + log pool + one merge scratch block
        # plus one spare must fit the device.
        required = self.num_lbns + self.max_log_blocks + 2
        if required > geometry.total_blocks:
            raise ValueError(
                f"hybrid FTL needs {required} blocks "
                f"({self.num_lbns} data + {self.max_log_blocks} log + 2), "
                f"device has {geometry.total_blocks}; raise overprovisioning"
            )
        controller.memory.allocate_ram("hybrid block map", self.num_lbns * 4)
        controller.memory.allocate_ram(
            "hybrid validity bitmaps", self.num_lbns * (-(-self.ppb // 8))
        )
        controller.memory.allocate_ram(
            "hybrid log map", self.max_log_blocks * self.ppb * 8
        )

        # Block map as flat arrays (DESIGN.md "Array-backed device
        # state"): per-lbn data block as ``global block id + 1`` (0 =
        # none) plus a packed per-lbn bitmap of offsets whose current
        # version lives in the data block.
        self._luns_per_channel = geometry.luns_per_channel
        self._blocks_per_lun = geometry.blocks_per_lun
        self._lbn_words = words_for(self.ppb)
        self._data_block = np.zeros(self.num_lbns, dtype=np.int64)
        self._data_bits = np.zeros(self.num_lbns * self._lbn_words, dtype=np.uint64)
        self._mv_data_block = memoryview(self._data_block)
        self._mv_data_bits = memoryview(self._data_bits)
        #: lpn -> physical address of its current copy in a log block.
        self.log_map: dict[int, PhysicalAddress] = {}
        #: Log blocks in allocation (FIFO) order: (lun_key, block_id).
        self._log_blocks: list[tuple[tuple[int, int], int]] = []
        #: Log pages handed out per log block (programs may be in flight).
        self._log_assigned: dict[tuple[tuple[int, int], int], int] = {}
        #: Log writes fully committed (mapping updated) per log block; a
        #: block is only merge-eligible once every write committed.
        self._log_committed: dict[tuple[tuple[int, int], int], int] = {}
        #: Writes waiting for a merge to free log space.
        self._pending_writes: deque[
            tuple[
                Optional[IoRequest],
                int,
                WriteHints,
                Optional[Callable[[], None]],
                Optional[int],
            ]
        ] = deque()
        self._merging = False
        self._lun_rotation = 0

        self.full_merges = 0
        self.switch_merges = 0
        self.merged_pages = 0
        self.filler_pages = 0
        #: Flash work done by mount-time log consolidation after a crash
        #: (read by the crash coordinator to charge mount time).
        self.mount_consolidation = {"reads": 0, "programs": 0, "erases": 0}

    # ------------------------------------------------------------------
    # Address helpers
    # ------------------------------------------------------------------
    def _split(self, lpn: Lpn) -> tuple[int, int]:
        return lpn // self.ppb, lpn % self.ppb

    def _data_block_of(self, lbn: int) -> Optional[tuple[int, int, int]]:
        """(channel, lun, block) of the lbn's data block, if one exists."""
        encoded = self._mv_data_block[lbn]
        if encoded == 0:
            return None
        lun_index, block = divmod(encoded - 1, self._blocks_per_lun)
        channel, lun = divmod(lun_index, self._luns_per_channel)
        return (channel, lun, block)

    def _set_data_block(self, lbn: int, channel: int, lun: int, block: int) -> None:
        lun_index = channel * self._luns_per_channel + lun
        self._mv_data_block[lbn] = lun_index * self._blocks_per_lun + block + 1

    def _data_bit(self, lbn: int, offset: int) -> int:
        word = lbn * self._lbn_words + (offset >> 6)
        return self._mv_data_bits[word] >> (offset & 63) & 1

    def _set_data_bit(self, lbn: int, offset: int) -> None:
        word = lbn * self._lbn_words + (offset >> 6)
        self._mv_data_bits[word] |= 1 << (offset & 63)

    def _clear_data_bit(self, lbn: int, offset: int) -> None:
        word = lbn * self._lbn_words + (offset >> 6)
        self._mv_data_bits[word] &= ~(1 << (offset & 63)) & _WORD_MASK

    def _fill_data_bits(self, lbn: int) -> None:
        """Mark every offset block-mapped (a switch merge's bitmap)."""
        base = lbn * self._lbn_words
        full_words, remainder = divmod(self.ppb, 64)
        for i in range(full_words):
            self._mv_data_bits[base + i] = _WORD_MASK
        if remainder:
            self._mv_data_bits[base + full_words] = (1 << remainder) - 1

    def _current_address(self, lpn: Lpn) -> Optional[PhysicalAddress]:
        address = self.log_map.get(lpn)
        if address is not None:
            return address
        lbn, offset = self._split(lpn)
        encoded = self._mv_data_block[lbn]
        if encoded == 0:
            return None
        if not self._data_bit(lbn, offset):
            return None
        lun_index, block = divmod(encoded - 1, self._blocks_per_lun)
        channel, lun = divmod(lun_index, self._luns_per_channel)
        return PhysicalAddress(channel, lun, block, offset)

    # ------------------------------------------------------------------
    # Physical block pool
    # ------------------------------------------------------------------
    def _take_free_block(self, for_merge: bool) -> Optional[tuple[tuple[int, int], int]]:
        """Claim a fully erased block, rotating over LUNs.

        Log allocations must leave one spare block for merges
        (``for_merge`` allocations may take the last one).
        """
        # The luns dict is built once, in channel-major geometry order, so
        # its insertion order is the deterministic LUN enumeration order.
        # simlint: disable=SIM003 -- insertion order == geometry order
        luns = list(self.controller.array.luns.items())
        total_free = sum(len(lun.free_block_ids) for _, lun in luns)
        if not for_merge and total_free <= 1:
            return None
        if total_free == 0:
            return None
        for offset in range(len(luns)):
            key, lun = luns[(self._lun_rotation + offset) % len(luns)]
            if lun.free_block_ids:
                self._lun_rotation = (self._lun_rotation + offset + 1) % len(luns)
                block_id = min(lun.free_block_ids)
                lun.take_free_block(block_id)
                return (key, block_id)
        return None

    def _block(self, key: tuple[tuple[int, int], int]):
        (lun_key, block_id) = key
        return self.controller.array.luns[lun_key].block(block_id)

    @staticmethod
    def _explicit_address(key: tuple[tuple[int, int], int]) -> PhysicalAddress:
        (channel, lun), block_id = key
        return PhysicalAddress(channel, lun, block_id, -1)

    # ------------------------------------------------------------------
    # Logical IO
    # ------------------------------------------------------------------
    def read(self, io: IoRequest) -> None:
        address = self._current_address(io.lpn)
        if address is None:
            self.controller.complete_unmapped_read(io)
            return
        cmd = FlashCommand(
            CommandKind.READ,
            CommandSource.APPLICATION,
            address,
            lpn=io.lpn,
            io=io,
            on_complete=self._read_done,
        )
        self.controller.enqueue_command(cmd)

    def _read_done(self, cmd: FlashCommand) -> None:
        cmd.io.data = cmd.content
        self.controller.complete_io(cmd.io)

    def write(
        self,
        io: Optional[IoRequest],
        lpn: Lpn,
        hints: WriteHints,
        on_done: Optional[Callable[[], None]] = None,
        version: Optional[int] = None,
    ) -> None:
        if version is None:
            version = self.next_version(lpn)
        if io is not None:
            io.version = version
        slot = self._reserve_log_slot()
        if slot is None:
            self._pending_writes.append((io, lpn, hints, on_done, version))
            self._start_merge()
            return
        cmd = FlashCommand(
            CommandKind.PROGRAM,
            CommandSource.APPLICATION,
            self._explicit_address(slot),
            lpn=lpn,
            content=(lpn, version),
            context=on_done,
            io=io,
            on_complete=self._log_write_done,
        )
        self.controller.enqueue_command(cmd)

    def _reserve_log_slot(self) -> Optional[tuple[tuple[int, int], int]]:
        if self._log_blocks:
            tail = self._log_blocks[-1]
            if self._log_assigned[tail] < self.ppb:
                self._log_assigned[tail] += 1
                return tail
        if len(self._log_blocks) < self.max_log_blocks:
            key = self._take_free_block(for_merge=False)
            if key is not None:
                self._log_blocks.append(key)
                self._log_assigned[key] = 1
                self._log_committed[key] = 0
                return key
        return None

    def _log_write_done(self, cmd: FlashCommand) -> None:
        lpn, version = cmd.content
        log_key = ((cmd.address.channel, cmd.address.lun), cmd.address.block)
        if log_key in self._log_committed:
            self._log_committed[log_key] += 1
        old_address = self._current_address(lpn)
        if self._commit_write(lpn, version, cmd.address, old_address):
            lbn, offset = self._split(lpn)
            self._clear_data_bit(lbn, offset)
            self.log_map[lpn] = cmd.address
        if cmd.io is not None:
            self.controller.complete_io(cmd.io)
        if cmd.context is not None:
            cmd.context()
        if self._pending_writes and not self._merging:
            self._start_merge()

    def trim(self, io: IoRequest) -> None:
        address = self._current_address(io.lpn)
        if address is not None:
            self._invalidate(address)
            if io.lpn in self.log_map:
                del self.log_map[io.lpn]
            else:
                lbn, offset = self._split(io.lpn)
                self._clear_data_bit(lbn, offset)
        self._supersede(io.lpn)
        self.controller.complete_quick(io)

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def _start_merge(self) -> None:
        if self._merging:
            return
        victim = self._choose_victim()
        if victim is None:
            return  # in-flight log programs must land first; retried later
        self._merging = True
        block = self._block(victim)
        if self.switch_merge_enabled and self._switchable_lbn(victim) is not None:
            self._do_switch_merge(victim)
            return
        lbns = sorted(
            {
                page.content[0] // self.ppb
                for page in block.pages
                if page.state.name == "LIVE" and page.content is not None
            }
        )
        self.full_merges += 1
        self._merge_lbn_chain(victim, lbns, 0)

    def _choose_victim(self) -> Optional[tuple[tuple[int, int], int]]:
        for key in self._log_blocks:
            if (
                self._log_assigned[key] >= self.ppb
                and self._log_committed[key] >= self.ppb
                and self._block(key).is_full
            ):
                return key
        return None

    def _switchable_lbn(self, victim) -> Optional[int]:
        """The single lbn this log block holds in perfect order, if any."""
        block = self._block(victim)
        first = block.pages[0]
        if first.state.name != "LIVE" or first.content is None:
            return None
        lbn, offset = self._split(first.content[0])
        if offset != 0 or lbn >= self.num_lbns:
            return None
        for index, page in enumerate(block.pages):
            if page.state.name != "LIVE" or page.content is None:
                return None
            if page.content[0] != lbn * self.ppb + index:
                return None
        return lbn

    def _do_switch_merge(self, victim) -> None:
        """Promote a perfectly sequential log block to data block."""
        lbn = self._switchable_lbn(victim)
        assert lbn is not None
        self.switch_merges += 1
        old_data = self._data_block_of(lbn)
        (lun_key, block_id) = victim
        self._set_data_block(lbn, lun_key[0], lun_key[1], block_id)
        self._fill_data_bits(lbn)
        for offset in range(self.ppb):
            self.log_map.pop(lbn * self.ppb + offset, None)
        self._log_blocks.remove(victim)
        del self._log_assigned[victim]
        del self._log_committed[victim]
        if old_data is not None:
            # Every offset's current version moved: the old data block is
            # fully dead (its remaining live pages were invalidated when
            # the log copies superseded them, before the block filled).
            self._erase_detached(old_data)
        self._merge_finished()

    def _merge_lbn_chain(self, victim, lbns: list[int], index: int) -> None:
        if index == len(lbns):
            self._erase_victim(victim)
            return
        self._merge_one_lbn(
            lbns[index],
            lambda: self._merge_lbn_chain(victim, lbns, index + 1),
        )

    def _merge_one_lbn(self, lbn: int, done: Callable[[], None]) -> None:
        new_key = self._take_free_block(for_merge=True)
        if new_key is None:
            raise RuntimeError("hybrid FTL out of merge blocks (feasibility bug)")
        snapshot: list[Optional[PhysicalAddress]] = [
            self._current_address(lbn * self.ppb + offset) for offset in range(self.ppb)
        ]
        self._merge_step(lbn, new_key, snapshot, 0, done)

    def _merge_step(self, lbn, new_key, snapshot, offset, done) -> None:
        """Copy one offset into the new data block, strictly in order."""
        if offset == self.ppb:
            self._commit_merge(lbn, new_key, snapshot, done)
            return
        lpn = lbn * self.ppb + offset
        source = snapshot[offset]
        next_step = lambda: self._merge_step(lbn, new_key, snapshot, offset + 1, done)
        if source is None:
            # Filler page: keeps offsets aligned; dead on arrival.
            self.filler_pages += 1
            cmd = FlashCommand(
                CommandKind.PROGRAM,
                CommandSource.GC,
                self._explicit_address(new_key),
                lpn=lpn,
                content=(lpn, 0),
                on_complete=lambda c: (self._invalidate(c.address), next_step()),
            )
            self.controller.enqueue_command(cmd)
            return
        read = FlashCommand(
            CommandKind.READ,
            CommandSource.GC,
            source,
            lpn=lpn,
            on_complete=lambda c: self._merge_program(new_key, c.content, next_step),
        )
        self.controller.enqueue_command(read)

    def _merge_program(self, new_key, content, next_step) -> None:
        self.merged_pages += 1
        cmd = FlashCommand(
            CommandKind.PROGRAM,
            CommandSource.GC,
            self._explicit_address(new_key),
            lpn=content[0],
            content=content,
            on_complete=lambda c: next_step(),
        )
        self.controller.enqueue_command(cmd)

    def _commit_merge(self, lbn, new_key, snapshot, done) -> None:
        old_data = self._data_block_of(lbn)
        (lun_key, block_id) = new_key
        for offset in range(self.ppb):
            source = snapshot[offset]
            if source is None:
                continue  # filler, already invalidated
            lpn = lbn * self.ppb + offset
            new_address = PhysicalAddress(lun_key[0], lun_key[1], block_id, offset)
            if self._current_address(lpn) == source:
                self._invalidate(source)
                self.log_map.pop(lpn, None)
                self._set_data_bit(lbn, offset)
                self._journal_commit(
                    lpn, self._committed_versions.get(lpn, 0), new_address
                )
            else:
                # Overwritten or trimmed mid-merge: the merged copy is
                # stale on arrival.
                self._invalidate(new_address)
        self._set_data_block(lbn, lun_key[0], lun_key[1], block_id)
        if old_data is not None:
            self._erase_detached(old_data)
        done()

    def _erase_victim(self, victim) -> None:
        (lun_key, block_id) = victim
        self._log_blocks.remove(victim)
        del self._log_assigned[victim]
        del self._log_committed[victim]
        cmd = FlashCommand(
            CommandKind.ERASE,
            CommandSource.GC,
            PhysicalAddress(lun_key[0], lun_key[1], block_id, 0),
            on_complete=lambda c: self._merge_finished(),
        )
        self.controller.enqueue_command(cmd)

    def _erase_detached(self, data_block: tuple[int, int, int]) -> None:
        channel, lun, block = data_block
        cmd = FlashCommand(
            CommandKind.ERASE,
            CommandSource.GC,
            PhysicalAddress(channel, lun, block, 0),
        )
        self.controller.enqueue_command(cmd)

    def _merge_finished(self) -> None:
        self._merging = False
        self._drain_pending()
        if self._pending_writes:
            self._start_merge()

    def _drain_pending(self) -> None:
        while self._pending_writes:
            slot = self._reserve_log_slot()
            if slot is None:
                return
            io, lpn, hints, on_done, version = self._pending_writes.popleft()
            cmd = FlashCommand(
                CommandKind.PROGRAM,
                CommandSource.APPLICATION,
                self._explicit_address(slot),
                lpn=lpn,
                content=(lpn, version),
                context=on_done,
                io=io,
                on_complete=self._log_write_done,
            )
            self.controller.enqueue_command(cmd)

    # ------------------------------------------------------------------
    # Crash consistency
    # ------------------------------------------------------------------
    def snapshot_map(self) -> dict[int, tuple[PhysicalAddress, int]]:
        snapshot: dict[int, tuple[PhysicalAddress, int]] = {}
        for lbn in np.nonzero(self._data_block)[0].tolist():
            channel, lun, block = self._data_block_of(lbn)
            base = lbn * self._lbn_words
            for word_index in range(self._lbn_words):
                word_base = word_index << 6
                for bit in iter_set_bits(self._mv_data_bits[base + word_index]):
                    offset = word_base + bit
                    lpn = lbn * self.ppb + offset
                    snapshot[lpn] = (
                        PhysicalAddress(channel, lun, block, offset),
                        self._committed_versions.get(lpn, 0),
                    )
        for lpn in sorted(self.log_map):
            snapshot[lpn] = (self.log_map[lpn], self._committed_versions.get(lpn, 0))
        return snapshot

    def rebuild_from_recovery(
        self,
        mapping: dict[int, tuple[PhysicalAddress, int]],
        issued_versions: dict[int, int],
        committed_versions: dict[int, int],
    ) -> None:
        """Re-derive the block/log split from a flat recovered mapping.

        The recovered map does not say which physical block was a data
        block and which was a log block -- and it does not have to: a
        block *is* a data block for lbn L exactly when every live entry
        in it sits at its block-mapped position for L.  Everything else
        is page-mapped state and goes back into the log pool.  Because
        runtime merges can only victimise *full* log blocks, blocks that
        cannot serve as the append tail are consolidated away here
        (synchronous mount-time merges) so the device cannot restart
        wedged.
        """
        self._load_version_tables(issued_versions, committed_versions)
        self._data_block[:] = 0
        self._data_bits[:] = 0
        self.log_map = {}
        self._log_blocks = []
        self._log_assigned = {}
        self._log_committed = {}
        self._pending_writes.clear()
        self._merging = False

        # Group recovered entries by the physical block holding them.
        by_block: dict[tuple[tuple[int, int], int], list[tuple[int, PhysicalAddress]]] = {}
        for lpn in sorted(mapping):
            address, _version = mapping[lpn]
            key = ((address.channel, address.lun), address.block)
            by_block.setdefault(key, []).append((lpn, address))

        # A block qualifies as data-block candidate for one lbn when all
        # of its entries sit at their block-mapped offset for that lbn.
        candidates: dict[int, list[tuple[tuple[tuple[int, int], int], int]]] = {}
        log_keys: list[tuple[tuple[int, int], int]] = []
        for key in sorted(by_block):
            entries = by_block[key]
            lbns = {lpn // self.ppb for lpn, _ in entries}
            aligned = len(lbns) == 1 and all(
                address.page == lpn % self.ppb for lpn, address in entries
            )
            if aligned:
                candidates.setdefault(lbns.pop(), []).append((key, len(entries)))
            else:
                log_keys.append(key)

        # One data block per lbn: most entries, fullest, lowest id wins.
        # In-order log blocks routinely qualify too; the losers rejoin
        # the log pool as ordinary page-mapped blocks.
        for lbn in sorted(candidates):
            ranked = sorted(
                candidates[lbn],
                key=lambda item: (-item[1], -self._block(item[0]).write_pointer, item[0]),
            )
            winner_key, _count = ranked[0]
            (channel, lun), block_id = winner_key
            self._set_data_block(lbn, channel, lun, block_id)
            for lpn, _address in by_block[winner_key]:
                self._set_data_bit(lbn, lpn % self.ppb)
            for loser_key, _count in ranked[1:]:
                log_keys.append(loser_key)
        log_keys.sort()
        for key in log_keys:
            for lpn, address in by_block[key]:
                self.log_map[lpn] = address
            self._log_blocks.append(key)
            pointer = self._block(key).write_pointer
            self._log_assigned[key] = pointer
            self._log_committed[key] = pointer

        # Full blocks first (merge-eligible), then at most one partial
        # block as the append tail; every other partial block plus any
        # pool overflow is consolidated away now.
        self._log_blocks.sort(
            key=lambda key: (not self._block(key).is_full, key)
        )
        self._consolidate_log_pool()

    def _consolidate_log_pool(self) -> None:
        def needs_consolidation() -> bool:
            if len(self._log_blocks) > self.max_log_blocks:
                return True
            partial = [k for k in self._log_blocks if not self._block(k).is_full]
            return len(partial) > 1 or (
                bool(partial) and partial[0] != self._log_blocks[-1]
            )

        while needs_consolidation() and self.log_map:
            per_lbn: dict[int, int] = {}
            for lpn in sorted(self.log_map):
                per_lbn[lpn // self.ppb] = per_lbn.get(lpn // self.ppb, 0) + 1
            lbn = max(sorted(per_lbn), key=lambda candidate: per_lbn[candidate])
            if not self._mount_merge_lbn(lbn):
                return  # no free block: degrade gracefully, keep zombies

    def _mount_merge_lbn(self, lbn: int) -> bool:
        """Synchronously merge one lbn into a fresh data block at mount.

        Equivalent to a runtime full merge, but performed directly on the
        flash state machines (the event engine is frozen during a mount);
        the coordinator charges the read/program/erase work to mount time
        via ``mount_consolidation``.
        """
        array = self.controller.array
        new_key = None
        for lun_key in sorted(array.luns):
            lun = array.luns[lun_key]
            if lun.free_block_ids:
                block_id = min(lun.free_block_ids)
                lun.take_free_block(block_id)
                new_key = (lun_key, block_id)
                break
        if new_key is None:
            return False
        now = self.controller.sim.now
        old_data = self._data_block_of(lbn)
        sources = [
            self._current_address(lbn * self.ppb + offset) for offset in range(self.ppb)
        ]
        new_block = self._block(new_key)
        (lun_key, block_id) = new_key
        touched: set[tuple[tuple[int, int], int]] = set()
        for offset, source in enumerate(sources):
            lpn = lbn * self.ppb + offset
            if source is None:
                index = new_block.program_next((lpn, 0), now)
                new_block.invalidate(index)
                self.filler_pages += 1
            else:
                content = self._block(
                    ((source.channel, source.lun), source.block)
                ).read(source.page)
                new_block.program_next(content, now)
                self._invalidate(source)
                self.log_map.pop(lpn, None)
                self._set_data_bit(lbn, offset)
                touched.add(((source.channel, source.lun), source.block))
                self.mount_consolidation["reads"] += 1
                self._journal_commit(
                    lpn,
                    self._committed_versions.get(lpn, 0),
                    PhysicalAddress(lun_key[0], lun_key[1], block_id, offset),
                )
            self.mount_consolidation["programs"] += 1
        self._set_data_block(lbn, lun_key[0], lun_key[1], block_id)
        self.merged_pages += sum(1 for source in sources if source is not None)
        self.full_merges += 1
        if old_data is not None:
            touched.add(((old_data[0], old_data[1]), old_data[2]))
        for key in sorted(touched):
            block = self._block(key)
            if block.erasable and not block.is_bad:
                block.erase(now)
                array.luns[key[0]].on_block_erased(key[1])
                self.mount_consolidation["erases"] += 1
                if key in self._log_assigned:
                    self._log_blocks.remove(key)
                    del self._log_assigned[key]
                    del self._log_committed[key]
        return True

    # ------------------------------------------------------------------
    # GC / WL cooperation (not applicable: merges ARE the reclamation)
    # ------------------------------------------------------------------
    def on_relocation(self, content, old_address, new_address) -> bool:
        raise AssertionError(
            "generic GC/WL must not run against the hybrid FTL "
            "(manages_physical_space is set)"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def mapped_address(self, lpn: Lpn) -> Optional[PhysicalAddress]:
        return self._current_address(lpn)

    def mapped_page_count(self) -> int:
        bits = int(popcounts(self._data_bits).sum())
        return len(self.log_map) + bits

    def _mapping_memory_bytes(self) -> int:
        # The log map is a bounded dict (at most log_blocks * ppb
        # entries); its accounted footprint is the same 8-byte-per-slot
        # bound charged to controller RAM at construction.
        return (
            int(self._data_block.nbytes)
            + int(self._data_bits.nbytes)
            + self.max_log_blocks * self.ppb * 8
        )

    def log_utilisation(self) -> float:
        """Fraction of the log pool currently allocated."""
        return len(self._log_blocks) / self.max_log_blocks
