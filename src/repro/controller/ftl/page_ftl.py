"""Page-level mapping kept entirely in controller RAM.

The simplest and most flexible scheme the paper considers: every logical
page maps directly to a physical page, lookup is free (RAM), and writes
can be bound to any LUN.  The cost is RAM: 8 bytes per logical page,
accounted against the controller RAM budget through the memory manager.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.controller.ftl.base import BaseFtl
from repro.core.events import IoRequest, WriteHints
from repro.hardware.addresses import Lpn, PhysicalAddress
from repro.hardware.commands import CommandKind, CommandSource, FlashCommand
from repro.hardware.flash import PageContent
from repro.hardware.state import MappingTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import SsdController


class PageMapFtl(BaseFtl):
    """Full page-level map in RAM."""

    ENTRY_BYTES = 8

    def __init__(self, controller: "SsdController"):
        super().__init__(controller)
        self._map = MappingTable(controller.config.logical_pages, controller.array.codec)
        controller.memory.allocate_ram(
            "page map", controller.config.logical_pages * self.ENTRY_BYTES
        )

    # ------------------------------------------------------------------
    # Logical IO
    # ------------------------------------------------------------------
    def read(self, io: IoRequest) -> None:
        address = self._map.get(io.lpn)
        if address is None:
            self.controller.complete_unmapped_read(io)
            return
        cmd = FlashCommand(
            CommandKind.READ,
            CommandSource.APPLICATION,
            address,
            lpn=io.lpn,
            io=io,
            on_complete=self._read_done,
        )
        self.controller.enqueue_command(cmd)

    def _read_done(self, cmd: FlashCommand) -> None:
        cmd.io.data = cmd.content
        self.controller.complete_io(cmd.io)

    def write(
        self,
        io: Optional[IoRequest],
        lpn: Lpn,
        hints: WriteHints,
        on_done: Optional[Callable[[], None]] = None,
        version: Optional[int] = None,
    ) -> None:
        if version is None:
            version = self.next_version(lpn)
        if io is not None:
            io.version = version
        lun_key, stream = self.controller.allocator.place_write(lpn, hints)
        cmd = FlashCommand(
            CommandKind.PROGRAM,
            CommandSource.APPLICATION,
            PhysicalAddress(lun_key[0], lun_key[1], -1, -1),
            lpn=lpn,
            content=(lpn, version),
            stream=stream,
            io=io,
            context=on_done,
            on_complete=self._write_done,
        )
        self.controller.enqueue_command(cmd)

    def _write_done(self, cmd: FlashCommand) -> None:
        lpn, version = cmd.content
        old_address = self._map.get(lpn)
        if self._commit_write(lpn, version, cmd.address, old_address):
            self._map.set(lpn, cmd.address)
        if cmd.io is not None:
            self.controller.complete_io(cmd.io)
        if cmd.context is not None:
            cmd.context()

    def trim(self, io: IoRequest) -> None:
        old_address = self._map.pop(io.lpn)
        if old_address is not None:
            self._invalidate(old_address)
        self._supersede(io.lpn)
        self.controller.complete_quick(io)

    # ------------------------------------------------------------------
    # GC / WL cooperation
    # ------------------------------------------------------------------
    def on_relocation(
        self,
        content: PageContent,
        old_address: PhysicalAddress,
        new_address: PhysicalAddress,
    ) -> bool:
        lpn, version = content
        if self._map.get(lpn) == old_address:
            self._invalidate(old_address)
            self._map.set(lpn, new_address)
            self._journal_commit(lpn, version, new_address)
            return True
        self._invalidate(new_address)
        return False

    # ------------------------------------------------------------------
    # Crash consistency
    # ------------------------------------------------------------------
    def snapshot_map(self) -> dict[int, tuple[PhysicalAddress, int]]:
        return {
            lpn: (address, self._committed_versions.get(lpn, 0))
            for lpn, address in self._map.items_sorted()
        }

    def rebuild_from_recovery(
        self,
        mapping: dict[int, tuple[PhysicalAddress, int]],
        issued_versions: dict[int, int],
        committed_versions: dict[int, int],
    ) -> None:
        self._map.clear()
        for lpn in sorted(mapping):
            self._map.set(lpn, mapping[lpn][0])
        self._load_version_tables(issued_versions, committed_versions)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def mapped_address(self, lpn: Lpn) -> Optional[PhysicalAddress]:
        return self._map.get(lpn)

    def mapped_page_count(self) -> int:
        return len(self._map)

    def _mapping_memory_bytes(self) -> int:
        return self._map.memory_bytes()
