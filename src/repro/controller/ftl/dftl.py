"""DFTL: demand-based page mapping (Gupta et al., ASPLOS 2009).

Only a *cached mapping table* (CMT) of recently used logical-to-physical
entries is kept in RAM; the full map lives in *translation pages* on
flash, indexed by an in-RAM global translation directory (GTD).

Behaviour reproduced here:

* CMT miss -> a MAPPING read of the translation page, coalesced across
  concurrent misses for the same translation page.
* Dirty CMT eviction -> read-modify-write of the translation page
  (a MAPPING read + MAPPING program); with *batch eviction* all dirty
  entries of the same translation page are persisted together.
* Translation pages are ordinary flash pages: they are written through
  the allocator (stream ``map``), are garbage-collected like data, and
  relocations update the GTD.

Bookkeeping note: the authoritative mapping content is tracked in shadow
dictionaries updated synchronously, while the MAPPING flash commands
model the *timing and traffic* of the scheme.  No crash recovery is
simulated, so this loses no fidelity for the performance questions the
paper studies.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Callable, Optional

from repro.controller.ftl.base import BaseFtl
from repro.core.events import IoRequest, WriteHints
from repro.hardware.addresses import Lpn, PhysicalAddress
from repro.hardware.commands import CommandKind, CommandSource, FlashCommand
from repro.hardware.flash import PageContent
from repro.hardware.state import MappingTable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import SsdController


class _CmtEntry:
    __slots__ = ("ppn", "dirty")

    def __init__(self, ppn: Optional[PhysicalAddress], dirty: bool):
        self.ppn = ppn
        self.dirty = dirty


class DftlFtl(BaseFtl):
    """Demand-paged page mapping with translation pages on flash."""

    def __init__(self, controller: "SsdController"):
        super().__init__(controller)
        config = controller.config
        dftl = config.controller.dftl
        self.entry_bytes = dftl.entry_bytes
        self.entries_per_tp = max(1, config.geometry.page_size_bytes // self.entry_bytes)
        self.num_tps = -(-config.logical_pages // self.entries_per_tp)
        self.batch_eviction = dftl.batch_eviction

        gtd_bytes = self.num_tps * self.entry_bytes
        controller.memory.allocate_ram("dftl gtd", gtd_bytes)
        if dftl.cmt_entries is not None:
            self.cmt_capacity = dftl.cmt_entries
        else:
            self.cmt_capacity = max(
                1, controller.memory.ram_available // self.entry_bytes
            )
        self.cmt_capacity = min(self.cmt_capacity, config.logical_pages)
        if self.cmt_capacity < 1:
            raise ValueError("DFTL CMT capacity must be at least 1 entry")
        controller.memory.allocate_ram("dftl cmt", self.cmt_capacity * self.entry_bytes)

        #: LRU-ordered cached mapping table (MRU at the end).
        self.cmt: OrderedDict[int, _CmtEntry] = OrderedDict()
        #: Mapping content persisted in on-flash translation pages.
        self.persisted = MappingTable(config.logical_pages, controller.array.codec)
        #: GTD: current flash location of each translation page.
        self.tp_locations = MappingTable(self.num_tps, controller.array.codec)
        #: Coalesced outstanding fetches: tp -> [(lpn, continuation)].
        self._pending_fetches: dict[int, list[tuple[int, Callable[[], None]]]] = {}

        self.cmt_hits = 0
        self.cmt_misses = 0
        assert self.num_tps == self._metadata_pseudo_lpns(controller)
        self.evictions = 0
        self.batched_flush_entries = 0
        #: Translation-page reads issued for CMT misses (excludes the
        #: read half of eviction read-modify-writes).
        self.tp_fetch_reads = 0

    def _metadata_pseudo_lpns(self, controller: "SsdController") -> int:
        """Version-table slots for the translation pages' pseudo-LPNs
        (called by ``BaseFtl.__init__`` before this class's attributes
        exist, hence the recomputation from the raw configuration)."""
        config = controller.config
        entries = max(
            1,
            config.geometry.page_size_bytes // config.controller.dftl.entry_bytes,
        )
        return -(-config.logical_pages // entries)

    # ------------------------------------------------------------------
    # Logical IO
    # ------------------------------------------------------------------
    def read(self, io: IoRequest) -> None:
        self._with_entry(io.lpn, lambda: self._do_read(io))

    def _do_read(self, io: IoRequest) -> None:
        entry = self.cmt.get(io.lpn)
        address = entry.ppn if entry is not None else self.persisted.get(io.lpn)
        if address is None:
            self.controller.complete_unmapped_read(io)
            return
        cmd = FlashCommand(
            CommandKind.READ,
            CommandSource.APPLICATION,
            address,
            lpn=io.lpn,
            io=io,
            on_complete=self._read_done,
        )
        self.controller.enqueue_command(cmd)

    def _read_done(self, cmd: FlashCommand) -> None:
        cmd.io.data = cmd.content
        self.controller.complete_io(cmd.io)

    def write(
        self,
        io: Optional[IoRequest],
        lpn: Lpn,
        hints: WriteHints,
        on_done: Optional[Callable[[], None]] = None,
        version: Optional[int] = None,
    ) -> None:
        self._with_entry(lpn, lambda: self._do_write(io, lpn, hints, on_done, version))

    def _do_write(
        self,
        io: Optional[IoRequest],
        lpn: Lpn,
        hints: WriteHints,
        on_done: Optional[Callable[[], None]],
        version: Optional[int] = None,
    ) -> None:
        if version is None:
            version = self.next_version(lpn)
        if io is not None:
            io.version = version
        lun_key, stream = self.controller.allocator.place_write(lpn, hints)
        cmd = FlashCommand(
            CommandKind.PROGRAM,
            CommandSource.APPLICATION,
            PhysicalAddress(lun_key[0], lun_key[1], -1, -1),
            lpn=lpn,
            content=(lpn, version),
            stream=stream,
            io=io,
            context=on_done,
            on_complete=self._write_done,
        )
        self.controller.enqueue_command(cmd)

    def _write_done(self, cmd: FlashCommand) -> None:
        lpn, version = cmd.content
        old_address = self._authoritative(lpn)
        if self._commit_write(lpn, version, cmd.address, old_address):
            self._update_mapping(lpn, cmd.address)
        if cmd.io is not None:
            self.controller.complete_io(cmd.io)
        if cmd.context is not None:
            cmd.context()

    def trim(self, io: IoRequest) -> None:
        self._with_entry(io.lpn, lambda: self._do_trim(io))

    def _do_trim(self, io: IoRequest) -> None:
        old_address = self._authoritative(io.lpn)
        if old_address is not None:
            self._invalidate(old_address)
            self._update_mapping(io.lpn, None)
        self._supersede(io.lpn)
        self.controller.complete_quick(io)

    # ------------------------------------------------------------------
    # CMT management
    # ------------------------------------------------------------------
    def _with_entry(self, lpn: Lpn, continuation: Callable[[], None]) -> None:
        """Run ``continuation`` once the mapping entry for ``lpn`` is in
        the CMT, fetching its translation page first if needed."""
        if lpn in self.cmt:
            self.cmt.move_to_end(lpn)
            self.cmt_hits += 1
            continuation()
            return
        self.cmt_misses += 1
        tp = lpn // self.entries_per_tp
        waiters = self._pending_fetches.get(tp)
        if waiters is not None:
            waiters.append((lpn, continuation))
            return
        self._pending_fetches[tp] = [(lpn, continuation)]
        tp_address = self.tp_locations.get(tp)
        if tp_address is None:
            # Translation page never written: resolve without flash IO,
            # but still asynchronously so callers see uniform ordering.
            self.controller.sim.post(0, self._fetch_done, tp)
            return
        self.tp_fetch_reads += 1
        cmd = FlashCommand(
            CommandKind.READ,
            CommandSource.MAPPING,
            tp_address,
            lpn=self._tp_pseudo_lpn(tp),
            on_complete=lambda c, tp=tp: self._fetch_done(tp),
        )
        self.controller.enqueue_command(cmd)

    def _fetch_done(self, tp: int) -> None:
        waiters = self._pending_fetches.pop(tp, [])
        for lpn, continuation in waiters:
            if lpn not in self.cmt:
                self._ensure_capacity()
                self.cmt[lpn] = _CmtEntry(self.persisted.get(lpn), dirty=False)
            else:
                self.cmt.move_to_end(lpn)
            continuation()

    def _update_mapping(self, lpn: Lpn, ppn: Optional[PhysicalAddress]) -> None:
        """Point ``lpn`` at ``ppn`` in the authoritative map, dirtying
        (and if needed re-inserting) its CMT entry."""
        entry = self.cmt.get(lpn)
        if entry is not None:
            entry.ppn = ppn
            entry.dirty = True
            self.cmt.move_to_end(lpn)
            return
        self._ensure_capacity()
        self.cmt[lpn] = _CmtEntry(ppn, dirty=True)

    def _ensure_capacity(self) -> None:
        while len(self.cmt) >= self.cmt_capacity:
            victim_lpn, entry = self.cmt.popitem(last=False)
            self.evictions += 1
            if entry.dirty:
                self._flush(victim_lpn, entry)

    def _flush(self, lpn: Lpn, entry: _CmtEntry) -> None:
        """Persist a dirty entry (plus, with batch eviction, every dirty
        sibling of the same translation page) and charge the RMW cost."""
        tp = lpn // self.entries_per_tp
        self._persist(lpn, entry.ppn)
        if self.batch_eviction:
            low = tp * self.entries_per_tp
            high = low + self.entries_per_tp
            # simlint: disable=SIM003 -- the CMT is a plain dict; batched
            # flush order follows deterministic insertion order, and
            # sorting this hot path would change completion interleaving.
            for sibling, sibling_entry in self.cmt.items():
                if low <= sibling < high and sibling_entry.dirty:
                    self._persist(sibling, sibling_entry.ppn)
                    sibling_entry.dirty = False
                    self.batched_flush_entries += 1
        old_tp_address = self.tp_locations.get(tp)
        if old_tp_address is not None:
            read_cmd = FlashCommand(
                CommandKind.READ,
                CommandSource.MAPPING,
                old_tp_address,
                lpn=self._tp_pseudo_lpn(tp),
                on_complete=lambda c, tp=tp: self._write_tp(tp),
            )
            self.controller.enqueue_command(read_cmd)
        else:
            self._write_tp(tp)

    def _persist(self, lpn: Lpn, ppn: Optional[PhysicalAddress]) -> None:
        if ppn is None:
            self.persisted.discard(lpn)
        else:
            self.persisted.set(lpn, ppn)

    def _write_tp(self, tp: int) -> None:
        pseudo = self._tp_pseudo_lpn(tp)
        version = self.next_version(pseudo)
        lun_key = self.controller.allocator.place_internal("map")
        cmd = FlashCommand(
            CommandKind.PROGRAM,
            CommandSource.MAPPING,
            PhysicalAddress(lun_key[0], lun_key[1], -1, -1),
            lpn=pseudo,
            content=(pseudo, version),
            stream="map",
            on_complete=self._tp_write_done,
        )
        self.controller.enqueue_command(cmd)

    def _tp_write_done(self, cmd: FlashCommand) -> None:
        pseudo, version = cmd.content
        tp = self._tp_from_pseudo(pseudo)
        old_address = self.tp_locations.get(tp)
        if self._commit_write(pseudo, version, cmd.address, old_address):
            self.tp_locations.set(tp, cmd.address)

    # ------------------------------------------------------------------
    # GC / WL cooperation
    # ------------------------------------------------------------------
    def on_relocation(
        self,
        content: PageContent,
        old_address: PhysicalAddress,
        new_address: PhysicalAddress,
    ) -> bool:
        lpn, _version = content
        if lpn < 0:
            tp = self._tp_from_pseudo(lpn)
            if self.tp_locations.get(tp) == old_address:
                self._invalidate(old_address)
                self.tp_locations.set(tp, new_address)
                return True
            self._invalidate(new_address)
            return False
        if self._authoritative(lpn) == old_address:
            self._invalidate(old_address)
            self._update_mapping(lpn, new_address)
            self._journal_commit(lpn, _version, new_address)
            return True
        self._invalidate(new_address)
        return False

    # ------------------------------------------------------------------
    # Crash consistency
    # ------------------------------------------------------------------
    def snapshot_map(self) -> dict[int, tuple[PhysicalAddress, int]]:
        # The committed logical view: CMT entries overlay the persisted
        # table (a dirty CMT entry is newer than its flash copy -- the
        # data page itself is durable even when the mapping entry is not,
        # which is exactly what recovery reconstructs).
        snapshot: dict[int, tuple[PhysicalAddress, int]] = {}
        for lpn in sorted(set(self.cmt) | set(self.persisted.mapped_lpns().tolist())):
            address = self._authoritative(lpn)
            if address is not None:
                snapshot[lpn] = (address, self._committed_versions.get(lpn, 0))
        return snapshot

    def rebuild_from_recovery(
        self,
        mapping: dict[int, tuple[PhysicalAddress, int]],
        issued_versions: dict[int, int],
        committed_versions: dict[int, int],
    ) -> None:
        # Post-mount state: the whole recovered map counts as persisted
        # (the mount wrote it back conceptually), the CMT starts cold --
        # the post-crash miss storm is an observable of E19.  The old
        # translation pages are never referenced again; the mount cleanup
        # erased their blocks, and ``tp_locations`` stays empty until
        # evictions write fresh ones.
        self.persisted.clear()
        for lpn in sorted(mapping):
            self.persisted.set(lpn, mapping[lpn][0])
        self.tp_locations.clear()
        self.cmt = OrderedDict()
        self._load_version_tables(issued_versions, committed_versions)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _authoritative(self, lpn: Lpn) -> Optional[PhysicalAddress]:
        entry = self.cmt.get(lpn)
        if entry is not None:
            return entry.ppn
        return self.persisted.get(lpn)

    def mapped_address(self, lpn: Lpn) -> Optional[PhysicalAddress]:
        return self._authoritative(lpn)

    def mapped_page_count(self) -> int:
        count = sum(
            1 for lpn, entry in self.cmt.items() if entry.ppn is not None
        )
        count += len(self.persisted) - sum(
            1 for lpn in self.cmt if lpn in self.persisted
        )
        return count

    def metadata_page_count(self) -> int:
        return len(self.tp_locations)

    def _mapping_memory_bytes(self) -> int:
        return self.persisted.memory_bytes() + self.tp_locations.memory_bytes()

    def hit_ratio(self) -> float:
        total = self.cmt_hits + self.cmt_misses
        if total == 0:
            return 0.0
        return self.cmt_hits / total

    @staticmethod
    def _tp_pseudo_lpn(tp: int) -> int:
        return -(tp + 1)

    @staticmethod
    def _tp_from_pseudo(pseudo: int) -> int:
        return -pseudo - 1
