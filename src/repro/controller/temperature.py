"""Hot/cold data identification (paper Section 2.2, wear leveling).

The paper lists three temperature sources, all implemented here:

1. "assuming the pages migrated in static wear-leveling are cold, and
   everything else is hot" -- :class:`StaticWlDetector`;
2. "a temperature detection mechanism for each page such as the one
   described in [Park & Du, MSST 2011]", i.e. multiple bloom filters
   with decaying weights -- :class:`BloomFilterDetector`;
3. "information about the temperature of data coming through an open
   interface from the application" -- :class:`HintDetector`.

All detectors share one small interface so the allocator and wear
leveler do not care where temperature knowledge comes from.
"""

from __future__ import annotations

import abc

from repro.core.config import TemperatureConfig, TemperatureDetector
from repro.core.events import WriteHints


class TemperatureModule(abc.ABC):
    """Common interface of all temperature sources."""

    @abc.abstractmethod
    def record_write(self, lpn: int) -> None:
        """Observe a logical write (called on every application write)."""

    @abc.abstractmethod
    def is_hot(self, lpn: int) -> bool:
        """Current hot/cold classification of a page."""

    def mark_cold(self, lpn: int) -> None:
        """Wear-leveling hook: the page was migrated by static WL."""

    def hint(self, lpn: int, hot: bool) -> None:
        """Open-interface hook: the OS communicated a temperature."""

    def classify(self, lpn: int, hints: WriteHints) -> str:
        """Allocation stream for a write: ``app_hot`` or ``app_cold``."""
        return "app_hot" if self.is_hot(lpn) else "app_cold"


class NullDetector(TemperatureModule):
    """No temperature knowledge; every page is treated alike."""

    def record_write(self, lpn: int) -> None:
        pass

    def is_hot(self, lpn: int) -> bool:
        return False

    def classify(self, lpn: int, hints: WriteHints) -> str:
        return "app"


class _BloomFilter:
    """A tiny bloom filter over integers, backed by one Python int."""

    __slots__ = ("bits", "num_bits", "num_hashes", "inserted")

    def __init__(self, num_bits: int, num_hashes: int):
        self.bits = 0
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self.inserted = 0

    def _positions(self, value: int):
        # Double hashing with two cheap mixes of the value.
        h1 = (value * 2654435761) & 0xFFFFFFFF
        h2 = (value * 40503 + 0x9E3779B9) & 0xFFFFFFFF
        for i in range(self.num_hashes):
            yield (h1 + i * h2) % self.num_bits

    def add(self, value: int) -> None:
        for position in self._positions(value):
            self.bits |= 1 << position
        self.inserted += 1

    def __contains__(self, value: int) -> bool:
        return all(self.bits >> position & 1 for position in self._positions(value))

    def clear(self) -> None:
        self.bits = 0
        self.inserted = 0


class BloomFilterDetector(TemperatureModule):
    """Multiple bloom filters with exponentially decaying weights.

    Writes are recorded into the *current* filter; every
    ``decay_writes`` recorded writes the oldest filter is cleared and
    becomes current (rotation).  A page's hotness is the weighted count
    of filters containing it, newest filter weighing most; it is *hot*
    when the weighted count reaches ``hot_threshold``.
    """

    #: Per-generation weight decay (newest = 1.0, then x this per step).
    DECAY = 0.5

    def __init__(self, config: TemperatureConfig):
        if config.num_filters < 2:
            raise ValueError("BloomFilterDetector needs at least 2 filters")
        self.config = config
        self._filters = [
            _BloomFilter(config.filter_bits, config.num_hashes)
            for _ in range(config.num_filters)
        ]
        #: Index of the filter currently recording writes.
        self._current = 0
        self._writes_in_period = 0

    def record_write(self, lpn: int) -> None:
        # Lazy rotation: the filter holding the most recent writes stays
        # "current" (full weight) until the next period actually begins.
        if self._writes_in_period >= self.config.decay_writes:
            self._rotate()
        self._filters[self._current].add(lpn)
        self._writes_in_period += 1

    def _rotate(self) -> None:
        self._current = (self._current + 1) % len(self._filters)
        self._filters[self._current].clear()
        self._writes_in_period = 0

    def weighted_count(self, lpn: int) -> float:
        """Decayed number of recent periods in which ``lpn`` was written."""
        total = 0.0
        weight = 1.0
        for age in range(len(self._filters)):
            index = (self._current - age) % len(self._filters)
            if lpn in self._filters[index]:
                total += weight
            weight *= self.DECAY
        return total

    def is_hot(self, lpn: int) -> bool:
        return self.weighted_count(lpn) >= self.config.hot_threshold


class StaticWlDetector(TemperatureModule):
    """Pages migrated by static wear leveling are cold; the rest hot."""

    def __init__(self) -> None:
        self._cold: set[int] = set()

    def record_write(self, lpn: int) -> None:
        # A rewritten page is evidently not cold any more.
        self._cold.discard(lpn)

    def mark_cold(self, lpn: int) -> None:
        self._cold.add(lpn)

    def is_hot(self, lpn: int) -> bool:
        return lpn not in self._cold


class HintDetector(TemperatureModule):
    """Temperatures communicated by the OS through the open interface.

    Falls back to "cold" for pages without hints; per-IO hints (the
    ``temperature`` key) take precedence in :meth:`classify`.
    """

    def __init__(self) -> None:
        self._hot: set[int] = set()

    def record_write(self, lpn: int) -> None:
        pass

    def hint(self, lpn: int, hot: bool) -> None:
        if hot:
            self._hot.add(lpn)
        else:
            self._hot.discard(lpn)

    def is_hot(self, lpn: int) -> bool:
        return lpn in self._hot

    def classify(self, lpn: int, hints: WriteHints) -> str:
        if "temperature" in hints:
            return "app_hot" if hints["temperature"] == "hot" else "app_cold"
        return super().classify(lpn, hints)


def build_detector(config: TemperatureConfig) -> TemperatureModule:
    """Factory used by the controller."""
    if config.detector is TemperatureDetector.NONE:
        return NullDetector()
    if config.detector is TemperatureDetector.BLOOM:
        return BloomFilterDetector(config)
    if config.detector is TemperatureDetector.STATIC_WL:
        return StaticWlDetector()
    if config.detector is TemperatureDetector.HINT:
        return HintDetector()
    raise ValueError(f"unknown temperature detector {config.detector!r}")
