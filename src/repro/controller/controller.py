"""The SSD controller: orchestration of mapping, GC, WL and scheduling.

:class:`SsdController` is the device-side endpoint of the host link.  It
receives logical IOs from the operating system layer, routes them through
the optional write buffer and the FTL, turns them into flash commands,
and owns the modules that generate internal traffic (garbage collection,
wear leveling, DFTL mapping IO).  Every flash command funnels through
:meth:`enqueue_command`, which attaches deadlines, read accounting and
the statistics/trace/GC bookkeeping that runs at completion.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.controller.allocation import WriteAllocator
from repro.controller.ftl import build_ftl
from repro.controller.gc import GarbageCollector
from repro.controller.overload import OverloadGovernor
from repro.controller.scheduler import SsdScheduler
from repro.controller.temperature import build_detector
from repro.controller.wear_leveling import WearLeveler
from repro.controller.write_buffer import WriteBuffer
from repro.core.config import RecoveryStrategy, SimulationConfig, TemperatureDetector
from repro.core.engine import Simulator
from repro.core.events import IoRequest, IoType, WriteHints
from repro.core.rng import RandomSource
from repro.core.statistics import StatisticsGatherer
from repro.core.tracing import TraceRecorder
from repro.hardware.array import SsdArray
from repro.hardware.commands import CommandKind, CommandSource, FlashCommand
from repro.hardware.memory import MemoryManager
from repro.reliability.recovery import (
    CheckpointManager,
    MappingJournal,
    ReliabilityManager,
)


class SsdController:
    """The device: flash array + controller modules behind one interface.

    The OS talks to the controller through :meth:`submit_io` and receives
    completion interrupts through ``on_io_complete`` (a callable the OS
    installs).
    """

    def __init__(
        self,
        sim: Simulator,
        config: SimulationConfig,
        rng: Optional[RandomSource] = None,
        tracer: Optional[TraceRecorder] = None,
        stats: Optional[StatisticsGatherer] = None,
        existing_array: Optional[SsdArray] = None,
        crash_armed: bool = False,
    ):
        self.sim = sim
        self.config = config
        self.rng = rng or RandomSource(config.seed)
        self.tracer = tracer if tracer is not None else TraceRecorder(enabled=config.trace_enabled)
        self.stats = stats or StatisticsGatherer("controller")
        self.memory = MemoryManager(
            config.controller.ram_bytes, config.controller.battery_ram_bytes
        )
        if existing_array is not None:
            # Remount after a power loss: flash contents are durable, so
            # the array object survives the crash; only the controller's
            # volatile modules are rebuilt around it.  The bad-block map
            # is physical state -- never redrawn.
            self.array = existing_array
            self.array.reliability = None
        else:
            self.array = SsdArray(
                sim,
                config.geometry,
                config.timings,
                interleaving=config.controller.enable_interleaving,
                pipelining=config.controller.enable_pipelining,
                tracer=self.tracer,
                bad_blocks=self._draw_bad_blocks(config),
                sanitize=config.sanitize,
            )
        self.temperature = build_detector(config.controller.temperature)
        self.allocator = WriteAllocator(
            self.array,
            config,
            classify=self.temperature.classify,
            queue_depth=self._queue_depth,
        )
        self.scheduler = SsdScheduler(
            sim, self.array, config.controller.scheduler, can_bind=self.allocator.can_bind
        )
        self.array.bind_program = self.allocator.bind_program
        self.array.on_resource_free = self.scheduler.pump
        self.ftl = build_ftl(config.controller.ftl, self)
        #: Reliability manager; None (the default) keeps every error
        #: path, RNG stream and completion timing untouched.
        self.reliability: Optional[ReliabilityManager] = None
        if config.reliability.enabled:
            self.reliability = ReliabilityManager(self)
            self.array.reliability = self.reliability
        self.gc = GarbageCollector(self)
        self.wear_leveler = WearLeveler(self)
        #: Overload governor (admission control, degraded mode, command
        #: timeouts); None (the default) keeps the IO path untouched.
        self.overload: Optional[OverloadGovernor] = None
        if config.overload.enabled:
            self.overload = OverloadGovernor(self)
        self.allocator.on_free_block_taken = self.gc.maybe_trigger
        self.write_buffer: Optional[WriteBuffer] = None
        if config.controller.write_buffer_pages > 0:
            self.write_buffer = WriteBuffer(self, config.controller.write_buffer_pages)
        #: Crash-consistency plumbing, armed only when the fault plan
        #: schedules a power loss.  The journal lives in battery RAM; the
        #: checkpoint manager restarts its periodic timer on every mount
        #: (its pending tick dies with the device-event purge).
        self.crash_armed = crash_armed
        self.journal: Optional[MappingJournal] = None
        self.checkpointer: Optional[CheckpointManager] = None
        if crash_armed and config.crash.strategy is RecoveryStrategy.CHECKPOINT_JOURNAL:
            self.journal = MappingJournal(self)
            self.checkpointer = CheckpointManager(self)
            self.checkpointer.start()
        #: Completion interrupt handler, installed by the OS layer.
        self.on_io_complete: Callable[[IoRequest], None] = lambda io: None
        self._open_interface = config.host.open_interface
        self.submitted_ios = 0

    def _draw_bad_blocks(self, config: SimulationConfig):
        """Factory bad-block map: each block bad with the configured
        probability, drawn from the experiment seed."""
        rate = config.geometry.bad_block_rate
        if rate <= 0.0:
            return None
        from repro.hardware.addresses import iter_luns

        stream = self.rng.stream("bad-blocks")
        bad: dict[tuple[int, int], set[int]] = {}
        for lun_key in iter_luns(config.geometry):
            bad[lun_key] = {
                block_id
                for block_id in range(config.geometry.blocks_per_lun)
                if stream.random() < rate
            }
        return bad

    # ------------------------------------------------------------------
    # Host link (device side)
    # ------------------------------------------------------------------
    def submit_io(self, io: IoRequest) -> None:
        """Accept a logical IO dispatched by the OS."""
        self.submitted_ios += 1
        hints = self.hints_of(io)
        self.tracer.record(
            self.sim.now, "controller", "accept", f"{io.io_type} lpn={io.lpn} #{io.id}"
        )
        if self.reliability is not None and self.reliability.reject_if_read_only(io):
            return
        if self.overload is not None and not self.overload.admit(io):
            return
        if io.io_type is IoType.WRITE:
            self._observe_write(io.lpn, hints)
            if self.write_buffer is not None:
                self.write_buffer.write(io, hints)
            else:
                self.ftl.write(io, io.lpn, hints)
            return
        if io.io_type is IoType.READ:
            if self.write_buffer is not None and self.write_buffer.serve_read(io):
                return
            self.ftl.read(io)
            return
        if io.io_type is IoType.TRIM:
            if self.write_buffer is not None and self.write_buffer.trim(io):
                return
            self.ftl.trim(io)
            return
        raise ValueError(f"unknown IO type {io.io_type!r}")

    def hints_of(self, io: IoRequest) -> WriteHints:
        """The hints the device may act on: everything with the open
        interface, nothing through the plain block interface."""
        return io.hints if self._open_interface else {}

    def _observe_write(self, lpn: int, hints: WriteHints) -> None:
        self.temperature.record_write(lpn)
        if "temperature" in hints and (
            self.config.controller.temperature.detector is TemperatureDetector.HINT
        ):
            self.temperature.hint(lpn, hints["temperature"] == "hot")

    # ------------------------------------------------------------------
    # Flash command funnel
    # ------------------------------------------------------------------
    def enqueue_command(self, cmd: FlashCommand) -> None:
        """Queue a flash command (used by FTL, GC, WL and tests)."""
        if cmd.deadline is None:
            cmd.deadline = self.scheduler.deadline_for(cmd.kind, self.sim.now)
        if cmd.kind in (CommandKind.READ, CommandKind.COPYBACK):
            lun = self.array.luns[cmd.lun_key]
            lun.block(cmd.address.block).inflight_reads += 1
        original = cmd.on_complete
        cmd.on_complete = lambda c: self._command_complete(original, c)
        self.scheduler.enqueue(cmd)
        if self.overload is not None:
            self.overload.arm_timeout(cmd)
        if cmd.source is CommandSource.APPLICATION:
            self.gc.note_app_activity(cmd.lun_key)
        if cmd.kind is CommandKind.PROGRAM and cmd.source is not CommandSource.GC:
            # The program may be unbindable on an all-live LUN; give the
            # collector a chance to start a rebalancing eviction.
            self.gc.maybe_trigger(cmd.lun_key)

    def _command_complete(self, original, cmd: FlashCommand) -> None:
        if cmd.kind is CommandKind.ERASE:
            # Purge stale open-block registrations BEFORE the module
            # handler runs: the handler may pump the scheduler, and a new
            # write could legitimately re-open this very block.
            self.allocator.note_erased(cmd.lun_key, cmd.address.block)
        # The reliability manager may consume the completion entirely: a
        # read that must retry or rebuild, a failed program that will be
        # retransmitted.  The original callback then fires only when the
        # recovery path delivers a good copy.  Each physical attempt is
        # still recorded in the flash-command statistics below.
        intercepted = self.reliability is not None and self.reliability.intercept_completion(
            original, cmd
        )
        if not intercepted and original is not None:
            original(cmd)
        self.stats.record_flash_command(cmd.source.name, cmd.kind.name, self.sim.now)
        if cmd.kind is CommandKind.ERASE:
            self.wear_leveler.on_erase()
            self.gc.maybe_trigger(cmd.lun_key)
        if self.overload is not None:
            self.overload.note_progress()

    # ------------------------------------------------------------------
    # IO completion paths (called by FTL / write buffer)
    # ------------------------------------------------------------------
    def complete_io(self, io: IoRequest) -> None:
        io.complete_time = self.sim.now
        self.tracer.record(
            self.sim.now, "controller", "complete", f"{io.io_type} lpn={io.lpn} #{io.id}"
        )
        self.on_io_complete(io)

    def complete_quick(self, io: IoRequest) -> None:
        """Complete after only the controller/command overhead (buffer
        hits, trims, metadata-only operations)."""
        self.sim.post(self.config.timings.t_cmd_ns, self.complete_io, io)

    def complete_unmapped_read(self, io: IoRequest) -> None:
        """A read of a never-written page: no flash access, returns
        zeroes (data None)."""
        io.data = None
        self.complete_quick(io)

    # ------------------------------------------------------------------
    # Cross-module probes
    # ------------------------------------------------------------------
    def _queue_depth(self, lun_key: tuple[int, int]) -> int:
        return self.scheduler.queue_depth(lun_key)

    def gc_is_collecting(self, lun_key: tuple[int, int], block_id: int) -> bool:
        return self.gc._being_collected(lun_key, block_id)

    def wl_is_migrating(self, lun_key: tuple[int, int], block_id: int) -> bool:
        return (lun_key, block_id) in self.wear_leveler.active

    @property
    def busy(self) -> bool:
        """True while internal work (queued commands, GC, WL, buffered
        flushes) is still pending."""
        if self.scheduler.total_pending() > 0:
            return True
        if self.gc.active_jobs or self.wear_leveler.active:
            return True
        if any(lun.is_busy for lun in self.array.luns.values()):
            return True
        return False

    # ------------------------------------------------------------------
    # Invariant checking (used heavily by the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify DESIGN.md invariants 3 and 6 at a quiescent point.

        Only meaningful when no command is in flight (e.g. after the
        simulation drained); raises ``AssertionError`` with a diagnostic
        message otherwise.
        """
        live = self.array.total_live_pages()
        expected = self.ftl.expected_live_pages()
        if live != expected:
            raise AssertionError(
                f"live-page mismatch: array has {live}, FTL implies {expected}"
            )
        # Vectorized whole-device audits; on failure, locate the first
        # offending block (lowest global block id) for the diagnostic.
        state = self.array.state
        geometry = self.config.geometry

        def _locate(mask) -> tuple[tuple[int, int], int, int]:
            global_id = int(np.argmax(mask))
            lun_index, block_id = divmod(global_id, geometry.blocks_per_lun)
            lun_key = (
                lun_index // geometry.luns_per_channel,
                lun_index % geometry.luns_per_channel,
            )
            return lun_key, block_id, global_id

        inflight = state.inflight_reads != 0
        if inflight.any():
            lun_key, block_id, _ = _locate(inflight)
            raise AssertionError(
                f"in-flight reads remain on (c{lun_key[0]},l{lun_key[1]},"
                f"b{block_id}) at quiescence"
            )
        free_not_empty = (state.block_free != 0) & (state.write_pointer != 0)
        if free_not_empty.any():
            lun_key, block_id, _ = _locate(free_not_empty)
            raise AssertionError(
                f"free set contains non-empty block b{block_id} on {lun_key}"
            )
        bad_with_live = (state.bad != 0) & (state.live_count != 0)
        if bad_with_live.any():
            lun_key, block_id, global_id = _locate(bad_with_live)
            raise AssertionError(
                f"retired block b{block_id} on {lun_key} still holds "
                f"{int(state.live_count[global_id])} live pages"
            )
        if self.gc._condemned:
            raise AssertionError(
                f"{len(self.gc._condemned)} condemned blocks not yet retired "
                "at quiescence"
            )
        if self.reliability is not None:
            self.reliability.check_invariants()
