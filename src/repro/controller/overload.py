"""Device-side overload governance: admission, timeouts, degradation.

Real devices are not infinitely elastic: NVMe submission queues have
fixed depths, commands carry timeouts, and firmware under GC pressure
pushes back on the host instead of absorbing arbitrary backlogs (Amber
and SimpleSSD both treat finite queueing as first-class; see PAPERS.md).
:class:`OverloadGovernor` brings that discipline to the controller.  It
is built only when ``config.overload.enabled`` is set -- the default
simulator has no governor object and keeps every code path untouched.

Three responsibilities:

* **Admission control** (:meth:`admit`): an IO arriving while the
  device's pending flash-command queues are at ``device_queue_bound``
  completes immediately with ``BUSY`` after only the command handshake
  cost, exactly like a full NVMe submission queue.
* **Degraded mode**: crossing the queue-depth watermark
  (``degraded_enter_pending``) or the GC-debt watermark
  (``gc_debt_watermark`` concurrent GC jobs) enters a degraded state
  that sheds low-priority IOs and rate-limits admission until the
  backlog drains to the exit watermark.  Time spent degraded and every
  entry are counted.
* **Command timeouts** (:meth:`arm_timeout`): an application command
  still queued ``command_timeout_ns`` after enqueue is aborted -- it is
  tombstoned out of its LUN queue, its in-flight-read accounting is
  reversed, and its IO completes with ``TIMEOUT``.  Only commands that
  reserved no device state at enqueue are abortable (reads and
  late-binding programs); commands that already started executing are
  never touched.

Determinism: the governor consumes no randomness and uses only
fire-and-forget engine events (lazy timeout checks), so enabling it
never perturbs RNG streams or leaks event handles -- properties the
sanitizer and the hypothesis suite in ``tests/overload/`` pin down.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.events import IoRequest, IoStatus
from repro.hardware.commands import CommandKind, CommandSource, FlashCommand

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import SsdController


def can_abort(cmd: FlashCommand) -> bool:
    """Whether a queued command may be timeout-aborted safely.

    Abortable means *no device state was reserved at enqueue time*:

    * application READs (the in-flight-read count is reversible);
    * application PROGRAMs whose page is still allocator-bound
      (``address.block < 0``): page/DFTL writes bind late, so nothing
      exists to roll back.

    Everything else is exempt: internal traffic (GC, wear leveling,
    mapping) must drain for the device to recover, and the hybrid FTL's
    programs pre-reserve log-block slots at enqueue.
    """
    if cmd.source is not CommandSource.APPLICATION or cmd.io is None:
        return False
    if cmd.kind is CommandKind.READ:
        return True
    return cmd.kind is CommandKind.PROGRAM and cmd.address.block < 0


class OverloadGovernor:
    """Admission control, degraded mode and command timeouts."""

    def __init__(self, controller: "SsdController") -> None:
        self.controller = controller
        self.sim = controller.sim
        self.config = controller.config.overload
        #: IOs rejected because the device queue bound was reached.
        self.busy_rejections = 0
        #: IOs shed in degraded mode (priority above the threshold).
        self.shed_ios = 0
        #: IOs rejected by the degraded-mode admission rate limit.
        self.throttled_ios = 0
        #: Commands aborted past their queued-age budget.
        self.command_timeouts = 0
        #: Times the controller entered degraded mode.
        self.degraded_entries = 0
        #: Virtual nanoseconds spent degraded (closed intervals only;
        #: use :meth:`time_degraded_total` for the running total).
        self.time_degraded_ns = 0
        self.degraded = False
        self._degraded_since = 0
        self._last_admitted_ns: Optional[int] = None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def admit(self, io: IoRequest) -> bool:
        """Admission decision for one host IO.

        Returns True to admit.  On rejection the IO is completed with
        ``BUSY`` after the command-handshake cost and False is returned
        (the caller must not process it further).
        """
        cfg = self.config
        pending = self.controller.scheduler.total_pending()
        self._update_degraded(pending)
        if cfg.device_queue_bound is not None and pending >= cfg.device_queue_bound:
            self.busy_rejections += 1
            return self._reject(io, "queue-full")
        if self.degraded:
            if cfg.shed_priority_threshold is not None:
                priority = int(self.controller.hints_of(io).get("priority", 0))
                if priority > cfg.shed_priority_threshold:
                    self.shed_ios += 1
                    return self._reject(io, "shed")
            gap = cfg.degraded_admission_gap_ns
            if (
                gap > 0
                and self._last_admitted_ns is not None
                and self.sim.now - self._last_admitted_ns < gap
            ):
                self.throttled_ios += 1
                return self._reject(io, "throttled")
        self._last_admitted_ns = self.sim.now
        return True

    def _reject(self, io: IoRequest, reason: str) -> bool:
        io.status = IoStatus.BUSY
        self.controller.tracer.record(
            self.sim.now, "overload", "reject", f"{reason} lpn={io.lpn} #{io.id}"
        )
        self.controller.complete_quick(io)
        return False

    # ------------------------------------------------------------------
    # Degraded mode
    # ------------------------------------------------------------------
    def _gc_debt(self) -> int:
        gc = self.controller.gc
        return len(gc.active_jobs) + len(gc._condemned)

    def _update_degraded(self, pending: int) -> None:
        cfg = self.config
        over = (
            cfg.degraded_enter_pending is not None
            and pending >= cfg.degraded_enter_pending
        ) or (
            cfg.gc_debt_watermark is not None
            and self._gc_debt() >= cfg.gc_debt_watermark
        )
        if not self.degraded:
            if over:
                self.degraded = True
                self.degraded_entries += 1
                self._degraded_since = self.sim.now
                self.controller.tracer.record(
                    self.sim.now, "overload", "degraded-enter", f"pending={pending}"
                )
            return
        recovered = (
            not over
            and pending <= cfg.exit_pending()
            and (
                cfg.gc_debt_watermark is None
                or self._gc_debt() < cfg.gc_debt_watermark
            )
        )
        if recovered:
            self.degraded = False
            self.time_degraded_ns += self.sim.now - self._degraded_since
            self.controller.tracer.record(
                self.sim.now, "overload", "degraded-exit", f"pending={pending}"
            )

    def note_progress(self) -> None:
        """Completion hook: re-evaluate degraded mode as backlog drains,
        so the device recovers without waiting for a new admission."""
        if self.degraded:
            self._update_degraded(self.controller.scheduler.total_pending())

    def time_degraded_total(self, now: int) -> int:
        """Total degraded time including a still-open interval."""
        total = self.time_degraded_ns
        if self.degraded:
            total += now - self._degraded_since
        return total

    # ------------------------------------------------------------------
    # Command timeouts
    # ------------------------------------------------------------------
    def arm_timeout(self, cmd: FlashCommand) -> None:
        """Schedule a lazy timeout check for a just-enqueued command.

        Fire-and-forget: the check no-ops if the command started (or was
        already aborted) by the time it fires, so no handle bookkeeping
        is needed and the sanitizer's drain check stays clean.
        """
        if self.config.command_timeout_ns is None or not can_abort(cmd):
            return
        if cmd.start_time is not None:
            return  # the enqueue pump already dispatched it
        self.sim.post(self.config.command_timeout_ns, self._check_timeout, cmd)

    def _check_timeout(self, cmd: FlashCommand) -> None:
        if cmd.start_time is not None or cmd.aborted:
            return
        self._abort(cmd)

    def _abort(self, cmd: FlashCommand) -> None:
        """Abort a still-queued command and fail its IO with TIMEOUT.

        Cleanup mirrors ``enqueue_command`` exactly: the command is
        tombstoned out of its LUN queue and, for reads, the block's
        in-flight-read count (which gates erases) is released -- a read
        stuck behind an erase storm no longer blocks that very erase.
        The wrapped ``on_complete`` never fires: the command never
        executed, so neither flash-command statistics nor the
        reliability interceptor see it.
        """
        cmd.aborted = True
        self.controller.scheduler.abort(cmd)
        if cmd.kind is CommandKind.READ:
            lun = self.controller.array.luns[cmd.lun_key]
            lun.block(cmd.address.block).inflight_reads -= 1
        self.command_timeouts += 1
        self.controller.tracer.record(
            self.sim.now, "overload", "timeout", f"{cmd.kind} lpn={cmd.lpn} #{cmd.id}"
        )
        io = cmd.io
        io.status = IoStatus.TIMEOUT
        self.controller.complete_io(io)
        # The abort freed queue space; the device may have recovered.
        self.note_progress()
