"""The SSD controller layer (paper Section 2.2).

"The SSD controller is responsible for orchestrating mapping,
garbage-collection, wear leveling modules and scheduling."

* :mod:`repro.controller.scheduler` -- the modular IO-scheduling
  framework: which pending flash command runs next, and where.
* :mod:`repro.controller.allocation` -- write allocation: which LUN and
  which open block an incoming write is bound to.
* :mod:`repro.controller.ftl` -- mapping schemes (page-level map in RAM,
  and DFTL).
* :mod:`repro.controller.gc` -- garbage collection with the paper's
  *GC greediness* free-block watermark.
* :mod:`repro.controller.wear_leveling` -- static and dynamic wear
  leveling.
* :mod:`repro.controller.temperature` -- hot/cold data identification.
* :mod:`repro.controller.write_buffer` -- the battery-backed-RAM write
  buffering module mentioned as a controller extension.
* :mod:`repro.controller.controller` -- :class:`SsdController`, which
  wires all of the above to the flash array.
"""

from repro.controller.controller import SsdController

__all__ = ["SsdController"]
