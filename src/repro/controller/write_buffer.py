"""Write buffering in battery-backed RAM.

Paper Section 2.2: "other modules can be added to the SSD controller,
e.g., a write-buffering module that uses battery-backed RAM to
temporarily store data before it is written on flash pages."

Semantics:

* An admitted write completes as soon as its page sits in the buffer
  (battery-backed RAM is durable), after a small controller overhead.
* A write to an already-buffered page is absorbed in place -- this is
  where the module wins: rewrite-heavy workloads never touch flash.
* Reads are served from the buffer when the page is buffered.
* Above the high watermark the buffer flushes least-recently-written
  pages through the FTL; a page stays readable in the buffer until its
  flash program completes.
* When the buffer is full, incoming writes wait for a free slot
  (back-pressure), preserving durability semantics.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import TYPE_CHECKING

from repro.core.events import IoRequest, WriteHints

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import SsdController

class _BufferedPage:
    """One buffered page: its hints plus the write version it carries.

    The version is reserved from the FTL at admission, so content tokens
    stay one-to-one with logical writes even when rewrites are absorbed
    in RAM and only the newest version ever reaches flash.
    """

    __slots__ = ("hints", "version")

    def __init__(self, hints: WriteHints, version: int):
        self.hints = hints
        self.version = version


class WriteBuffer:
    """An LRU write-back buffer of whole pages in battery-backed RAM."""

    #: Start flushing above this occupancy...
    HIGH_WATERMARK = 0.75
    #: ...and stop once back at or below this occupancy.
    LOW_WATERMARK = 0.50

    def __init__(self, controller: "SsdController", capacity_pages: int):
        if capacity_pages < 1:
            raise ValueError("write buffer needs at least one page")
        self.controller = controller
        self.capacity = capacity_pages
        #: E14 durability axis: battery-backed RAM admits-and-acks (the
        #: buffer is durable), plain RAM defers the host acknowledgement
        #: until the page is actually on flash -- a power loss may then
        #: destroy buffered data, but never an acknowledged write.
        self.battery_backed = controller.config.controller.write_buffer_battery_backed
        page_bytes = controller.config.geometry.page_size_bytes
        if self.battery_backed:
            controller.memory.allocate_battery_ram(
                "write buffer", capacity_pages * page_bytes
            )
        else:
            controller.memory.allocate_ram(
                "write buffer", capacity_pages * page_bytes
            )
        #: lpn -> _BufferedPage, in least-recently-written-first order.
        self._entries: OrderedDict[int, _BufferedPage] = OrderedDict()
        #: Pages whose flush program is in flight (still readable).
        self._flushing: set[int] = set()
        #: Pages rewritten while their flush was in flight; their entry
        #: must survive the flush completion.
        self._rewritten_during_flush: set[int] = set()
        #: Trims deferred until an in-flight flush of the page completes.
        self._pending_trims: dict[int, list[IoRequest]] = {}
        #: Writes waiting for a free slot: (io, hints, version).
        self._waiting: deque[tuple[IoRequest, WriteHints, int]] = deque()
        #: Volatile mode only: accepted-but-unacknowledged writes per
        #: LPN, acknowledged once a flush covering their version lands.
        self._pending_acks: dict[int, list[IoRequest]] = {}
        self.hits = 0
        self.absorbed_rewrites = 0
        self.flushed_pages = 0

    # ------------------------------------------------------------------
    # IO paths (called by the controller)
    # ------------------------------------------------------------------
    def write(self, io: IoRequest, hints: WriteHints) -> None:
        version = self.controller.ftl.next_version(io.lpn)
        io.version = version
        if io.lpn in self._entries:
            # Absorb the rewrite in place.  If a flush of the old content
            # is in flight, remember that the entry must survive it.
            self._entries.move_to_end(io.lpn)
            self._entries[io.lpn] = _BufferedPage(hints, version)
            if io.lpn in self._flushing:
                self._rewritten_during_flush.add(io.lpn)
            self.absorbed_rewrites += 1
            self._ack_or_defer(io)
            return
        if len(self._entries) >= self.capacity:
            self._waiting.append((io, hints, version))
            self._maybe_flush(force=True)
            return
        self._admit(io, hints, version)

    def _admit(self, io: IoRequest, hints: WriteHints, version: int) -> None:
        self._entries[io.lpn] = _BufferedPage(hints, version)
        self._entries.move_to_end(io.lpn)
        self._ack_or_defer(io)
        self._maybe_flush()

    def _ack_or_defer(self, io: IoRequest) -> None:
        """Battery-backed: the buffer is durable, acknowledge now.
        Volatile: hold the acknowledgement until the data is on flash --
        and flush eagerly (write-through), otherwise writes below the
        watermark would never be acknowledged.  The volatile buffer
        keeps the read-cache and rewrite-coalescing wins but none of the
        ack-latency win: that is the durability trade of E14/E19."""
        if self.battery_backed:
            self.controller.complete_quick(io)
            return
        self._pending_acks.setdefault(io.lpn, []).append(io)
        if io.lpn not in self._flushing and io.lpn in self._entries:
            self._flush_page(io.lpn)

    def serve_read(self, io: IoRequest) -> bool:
        """Complete ``io`` from the buffer if the page is buffered."""
        if io.lpn not in self._entries:
            return False
        self.hits += 1
        io.data = (io.lpn, self._entries[io.lpn].version)
        self.controller.complete_quick(io)
        return True

    def trim(self, io: IoRequest) -> bool:
        """Trim support.  Returns True when the buffer took ownership of
        the trim; the FTL trim is then issued by the buffer itself (after
        any in-flight flush of the page, to preserve ordering)."""
        if io.lpn not in self._entries:
            return False
        if io.lpn in self._flushing:
            self._pending_trims.setdefault(io.lpn, []).append(io)
            return True
        del self._entries[io.lpn]
        self._rewritten_during_flush.discard(io.lpn)
        # The trim supersedes any accepted-but-unflushed writes of the
        # page: acknowledge them (their data no longer has to reach
        # flash) strictly before the trim's own completion below.
        self._ack_all_pending(io.lpn)
        # An older version of the page may still be mapped on flash.
        self.controller.ftl.trim(io)
        self._admit_waiters()
        return True

    @property
    def buffered_pages(self) -> int:
        return len(self._entries)

    def contains(self, lpn: int) -> bool:
        return lpn in self._entries

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def _maybe_flush(self, force: bool = False) -> None:
        high = int(self.capacity * self.HIGH_WATERMARK)
        low = int(self.capacity * self.LOW_WATERMARK)
        if not force and len(self._entries) <= high:
            return
        target = low if len(self._entries) > high else len(self._entries) - 1
        # simlint: disable=SIM003 -- insertion order IS the FIFO eviction
        # policy here; sorting by LPN would change which pages flush first.
        for lpn in list(self._entries):
            if len(self._entries) - len(self._flushing) <= target:
                break
            if lpn in self._flushing:
                continue
            self._flush_page(lpn)

    def _flush_page(self, lpn: int) -> None:
        page = self._entries[lpn]
        self._flushing.add(lpn)
        self.controller.ftl.write(
            None,
            lpn,
            page.hints,
            on_done=lambda lpn=lpn, version=page.version: self._flush_done(lpn, version),
            version=page.version,
        )

    def _flush_done(self, lpn: int, version: int) -> None:
        self._flushing.discard(lpn)
        self.flushed_pages += 1
        self._ack_flushed(lpn, version)
        if lpn in self._rewritten_during_flush:
            # Newer content arrived mid-flush: the flash copy is already
            # stale, keep the buffered page.
            self._rewritten_during_flush.discard(lpn)
        else:
            self._entries.pop(lpn, None)
        for trim_io in self._pending_trims.pop(lpn, []):
            self._entries.pop(lpn, None)
            self._rewritten_during_flush.discard(lpn)
            self._ack_all_pending(lpn)
            self.controller.ftl.trim(trim_io)
        if (
            self._pending_acks.get(lpn)
            and lpn in self._entries
            and lpn not in self._flushing
        ):
            # Volatile mode: a rewrite landed mid-flush; its ack still
            # waits on flash, so the newer version flushes right away.
            self._flush_page(lpn)
        self._admit_waiters()

    def _ack_flushed(self, lpn: int, version: int) -> None:
        """Volatile mode: the flush put ``version`` on flash, so every
        held write of the page up to that version is now durable.

        Reentrancy: ``complete_io`` interrupts the OS, whose thread may
        issue (and defer) a *new* write of this page synchronously -- so
        the list is detached first and survivors reinstalled before any
        completion fires; reentrant appends then extend a fresh list."""
        waiting = self._pending_acks.pop(lpn, None)
        if not waiting:
            return
        ready = [io for io in waiting if io.version is not None and io.version <= version]
        newer = [io for io in waiting if io.version is None or io.version > version]
        if newer:
            self._pending_acks[lpn] = newer
        for io in ready:
            self.controller.complete_io(io)

    def _ack_all_pending(self, lpn: int) -> None:
        for io in self._pending_acks.pop(lpn, []):
            self.controller.complete_io(io)

    def _admit_waiters(self) -> None:
        while self._waiting and len(self._entries) < self.capacity:
            io, hints, version = self._waiting.popleft()
            if io.lpn in self._entries:
                # The page re-entered the buffer while this write waited.
                # Absorb in place unless a newer write already superseded
                # this one (never regress the buffered version).
                if version > self._entries[io.lpn].version:
                    self._entries.move_to_end(io.lpn)
                    self._entries[io.lpn] = _BufferedPage(hints, version)
                    if io.lpn in self._flushing:
                        self._rewritten_during_flush.add(io.lpn)
                self.absorbed_rewrites += 1
                self._ack_or_defer(io)
            else:
                self._admit(io, hints, version)

    # ------------------------------------------------------------------
    # Crash support
    # ------------------------------------------------------------------
    def snapshot_entries(self) -> list[tuple[int, WriteHints, int]]:
        """Battery-backed mode: the buffer contents that survive a power
        loss, in eviction (least-recently-written-first) order."""
        # simlint: disable=SIM003 -- insertion order is the FIFO state
        # being preserved across the crash.
        return [
            (lpn, page.hints, page.version) for lpn, page in self._entries.items()
        ]

    def restore(self, entries: list[tuple[int, WriteHints, int]]) -> None:
        """Remount: re-install surviving buffer contents.  The writes
        they came from were acknowledged before the crash -- nothing is
        re-acknowledged here -- and normal watermark flushing resumes."""
        for lpn, hints, version in entries:
            self._entries[lpn] = _BufferedPage(hints, version)
        self._maybe_flush()
