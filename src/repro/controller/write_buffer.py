"""Write buffering in battery-backed RAM.

Paper Section 2.2: "other modules can be added to the SSD controller,
e.g., a write-buffering module that uses battery-backed RAM to
temporarily store data before it is written on flash pages."

Semantics:

* An admitted write completes as soon as its page sits in the buffer
  (battery-backed RAM is durable), after a small controller overhead.
* A write to an already-buffered page is absorbed in place -- this is
  where the module wins: rewrite-heavy workloads never touch flash.
* Reads are served from the buffer when the page is buffered.
* Above the high watermark the buffer flushes least-recently-written
  pages through the FTL; a page stays readable in the buffer until its
  flash program completes.
* When the buffer is full, incoming writes wait for a free slot
  (back-pressure), preserving durability semantics.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import TYPE_CHECKING

from repro.core.events import IoRequest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import SsdController

class _BufferedPage:
    """One buffered page: its hints plus the write version it carries.

    The version is reserved from the FTL at admission, so content tokens
    stay one-to-one with logical writes even when rewrites are absorbed
    in RAM and only the newest version ever reaches flash.
    """

    __slots__ = ("hints", "version")

    def __init__(self, hints: dict, version: int):
        self.hints = hints
        self.version = version


class WriteBuffer:
    """An LRU write-back buffer of whole pages in battery-backed RAM."""

    #: Start flushing above this occupancy...
    HIGH_WATERMARK = 0.75
    #: ...and stop once back at or below this occupancy.
    LOW_WATERMARK = 0.50

    def __init__(self, controller: "SsdController", capacity_pages: int):
        if capacity_pages < 1:
            raise ValueError("write buffer needs at least one page")
        self.controller = controller
        self.capacity = capacity_pages
        page_bytes = controller.config.geometry.page_size_bytes
        controller.memory.allocate_battery_ram(
            "write buffer", capacity_pages * page_bytes
        )
        #: lpn -> _BufferedPage, in least-recently-written-first order.
        self._entries: OrderedDict[int, _BufferedPage] = OrderedDict()
        #: Pages whose flush program is in flight (still readable).
        self._flushing: set[int] = set()
        #: Pages rewritten while their flush was in flight; their entry
        #: must survive the flush completion.
        self._rewritten_during_flush: set[int] = set()
        #: Trims deferred until an in-flight flush of the page completes.
        self._pending_trims: dict[int, list[IoRequest]] = {}
        #: Writes waiting for a free slot: (io, hints, version).
        self._waiting: deque[tuple[IoRequest, dict, int]] = deque()
        self.hits = 0
        self.absorbed_rewrites = 0
        self.flushed_pages = 0

    # ------------------------------------------------------------------
    # IO paths (called by the controller)
    # ------------------------------------------------------------------
    def write(self, io: IoRequest, hints: dict) -> None:
        version = self.controller.ftl.next_version(io.lpn)
        if io.lpn in self._entries:
            # Absorb the rewrite in place.  If a flush of the old content
            # is in flight, remember that the entry must survive it.
            self._entries.move_to_end(io.lpn)
            self._entries[io.lpn] = _BufferedPage(hints, version)
            if io.lpn in self._flushing:
                self._rewritten_during_flush.add(io.lpn)
            self.absorbed_rewrites += 1
            self.controller.complete_quick(io)
            return
        if len(self._entries) >= self.capacity:
            self._waiting.append((io, hints, version))
            self._maybe_flush(force=True)
            return
        self._admit(io, hints, version)

    def _admit(self, io: IoRequest, hints: dict, version: int) -> None:
        self._entries[io.lpn] = _BufferedPage(hints, version)
        self._entries.move_to_end(io.lpn)
        self.controller.complete_quick(io)
        self._maybe_flush()

    def serve_read(self, io: IoRequest) -> bool:
        """Complete ``io`` from the buffer if the page is buffered."""
        if io.lpn not in self._entries:
            return False
        self.hits += 1
        io.data = (io.lpn, self._entries[io.lpn].version)
        self.controller.complete_quick(io)
        return True

    def trim(self, io: IoRequest) -> bool:
        """Trim support.  Returns True when the buffer took ownership of
        the trim; the FTL trim is then issued by the buffer itself (after
        any in-flight flush of the page, to preserve ordering)."""
        if io.lpn not in self._entries:
            return False
        if io.lpn in self._flushing:
            self._pending_trims.setdefault(io.lpn, []).append(io)
            return True
        del self._entries[io.lpn]
        self._rewritten_during_flush.discard(io.lpn)
        # An older version of the page may still be mapped on flash.
        self.controller.ftl.trim(io)
        self._admit_waiters()
        return True

    @property
    def buffered_pages(self) -> int:
        return len(self._entries)

    def contains(self, lpn: int) -> bool:
        return lpn in self._entries

    # ------------------------------------------------------------------
    # Flushing
    # ------------------------------------------------------------------
    def _maybe_flush(self, force: bool = False) -> None:
        high = int(self.capacity * self.HIGH_WATERMARK)
        low = int(self.capacity * self.LOW_WATERMARK)
        if not force and len(self._entries) <= high:
            return
        target = low if len(self._entries) > high else len(self._entries) - 1
        # simlint: disable=SIM003 -- insertion order IS the FIFO eviction
        # policy here; sorting by LPN would change which pages flush first.
        for lpn in list(self._entries):
            if len(self._entries) - len(self._flushing) <= target:
                break
            if lpn in self._flushing:
                continue
            self._flush_page(lpn)

    def _flush_page(self, lpn: int) -> None:
        page = self._entries[lpn]
        self._flushing.add(lpn)
        self.controller.ftl.write(
            None,
            lpn,
            page.hints,
            on_done=lambda lpn=lpn: self._flush_done(lpn),
            version=page.version,
        )

    def _flush_done(self, lpn: int) -> None:
        self._flushing.discard(lpn)
        self.flushed_pages += 1
        if lpn in self._rewritten_during_flush:
            # Newer content arrived mid-flush: the flash copy is already
            # stale, keep the buffered page.
            self._rewritten_during_flush.discard(lpn)
        else:
            self._entries.pop(lpn, None)
        for trim_io in self._pending_trims.pop(lpn, []):
            self._entries.pop(lpn, None)
            self._rewritten_during_flush.discard(lpn)
            self.controller.ftl.trim(trim_io)
        self._admit_waiters()

    def _admit_waiters(self) -> None:
        while self._waiting and len(self._entries) < self.capacity:
            io, hints, version = self._waiting.popleft()
            if io.lpn in self._entries:
                # The page re-entered the buffer while this write waited.
                # Absorb in place unless a newer write already superseded
                # this one (never regress the buffered version).
                if version > self._entries[io.lpn].version:
                    self._entries.move_to_end(io.lpn)
                    self._entries[io.lpn] = _BufferedPage(hints, version)
                    if io.lpn in self._flushing:
                        self._rewritten_during_flush.add(io.lpn)
                self.absorbed_rewrites += 1
                self.controller.complete_quick(io)
            else:
                self._admit(io, hints, version)
