"""The SSD-internal IO scheduling framework.

Paper Section 2.2: "Given the state of the flash chip array and a queue
of pending IOs from various sources [...], of various types [...], and
that have been waiting in the queue for different lengths of time, which
IO should be executed next and where?"

The *where* for writes is delegated to the allocator (late page binding);
this module answers the *which* and *when*.  It maintains one pending
queue per LUN and, every time a channel or LUN frees, dispatches the
best eligible command according to the configured policy:

* ``FIFO``     -- oldest first.
* ``PRIORITY`` -- static (source, type) priorities with optional
  open-interface priority hints and an anti-starvation age threshold.
* ``DEADLINE`` -- earliest deadline first, overdue commands ahead.
* ``FAIR``     -- round-robin over command sources.

Eligibility rules keep the scheduler safe regardless of policy: an erase
only runs once its block holds no live data and no in-flight reads, and a
program only runs when the allocator can bind a page for it.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.core.config import SchedulerConfig, SsdSchedulerPolicy
from repro.core.engine import Simulator
from repro.hardware.array import SsdArray
from repro.hardware.commands import CommandKind, CommandSource, FlashCommand

#: Sources rotation order used by the FAIR policy.
_FAIR_ORDER = (
    CommandSource.APPLICATION,
    CommandSource.MAPPING,
    CommandSource.GC,
    CommandSource.WEAR_LEVELING,
)

#: Compact a LUN queue once it holds this many tombstones and at least
#: as many tombstones as live commands (amortised O(1) per removal).
_COMPACT_TOMBSTONES = 32


class LunCommandQueue:
    """Pending commands of one LUN: append-ordered, O(1) arbitrary removal.

    Dispatch removes the *best eligible* command, which for a deque costs
    a full O(n) scan per dispatch -- quadratic when queues are deep
    (exactly the overload regime).  Removal here marks a tombstone and
    iteration skips dead entries; the backing list is compacted lazily
    once tombstones dominate, so dispatch and abort stay amortised O(1)
    at any depth.  Iteration yields live commands in enqueue order --
    identical to the old deque, preserving scheduling bit-identity.
    """

    __slots__ = ("_items", "_dead", "high_watermark")

    def __init__(self) -> None:
        self._items: list[FlashCommand] = []
        self._dead: set[int] = set()
        #: Deepest the live queue has ever been (pure observer).
        self.high_watermark = 0

    def append(self, cmd: FlashCommand) -> None:
        self._items.append(cmd)
        depth = len(self._items) - len(self._dead)
        if depth > self.high_watermark:
            self.high_watermark = depth

    def extend(self, cmds: Iterable[FlashCommand]) -> None:
        for cmd in cmds:
            self.append(cmd)

    def remove(self, cmd: FlashCommand) -> None:
        """Tombstone a queued command (dispatch or abort)."""
        if cmd.id in self._dead:
            raise ValueError(f"command #{cmd.id} removed twice")
        self._dead.add(cmd.id)
        if (
            len(self._dead) >= _COMPACT_TOMBSTONES
            and len(self._dead) * 2 >= len(self._items)
        ):
            self._compact()

    def _compact(self) -> None:
        dead = self._dead
        self._items = [cmd for cmd in self._items if cmd.id not in dead]
        dead.clear()

    def __iter__(self) -> Iterator[FlashCommand]:
        dead = self._dead
        if not dead:
            return iter(self._items)
        return (cmd for cmd in self._items if cmd.id not in dead)

    def __len__(self) -> int:
        return len(self._items) - len(self._dead)

    def __bool__(self) -> bool:
        return len(self._items) > len(self._dead)


class SsdScheduler:
    """Per-LUN pending queues plus the dispatch loop ("pump")."""

    def __init__(
        self,
        sim: Simulator,
        array: SsdArray,
        config: SchedulerConfig,
        can_bind: Callable[[FlashCommand], bool],
    ):
        self.sim = sim
        self.array = array
        self.config = config
        #: Allocator predicate: can a PROGRAM/COPYBACK bind a page now?
        self.can_bind = can_bind
        self.queues: dict[tuple[int, int], LunCommandQueue] = {
            key: LunCommandQueue() for key in array.luns
        }
        #: Per-channel rotation pointer for LUN tie-breaking.
        self._lun_rotation: dict[int, int] = {c.channel_id: 0 for c in array.channels}
        #: Per-LUN rotation pointer over sources, for the FAIR policy.
        self._fair_rotation: dict[tuple[int, int], int] = {key: 0 for key in array.luns}
        self._pumping = False
        self.enqueued_commands = 0

    # ------------------------------------------------------------------
    # Queue interface
    # ------------------------------------------------------------------
    def enqueue(self, cmd: FlashCommand) -> None:
        """Add a command to its LUN's pending queue and try to dispatch."""
        cmd.enqueue_time = self.sim.now
        self.queues[cmd.lun_key].append(cmd)
        self.enqueued_commands += 1
        self.pump()

    def queue_depth(self, lun_key: tuple[int, int]) -> int:
        """Pending commands bound to a LUN (used by LEAST_QUEUED
        allocation and by fairness metrics)."""
        return len(self.queues[lun_key])

    def total_pending(self) -> int:
        return sum(len(queue) for queue in self.queues.values())

    def abort(self, cmd: FlashCommand) -> None:
        """Remove a still-queued command (overload timeout abort).  The
        caller owns the flash-state cleanup (in-flight read accounting)
        and the IO completion."""
        self.queues[cmd.lun_key].remove(cmd)

    def max_queue_high_watermark(self) -> int:
        """Deepest any LUN queue has ever been (overload statistics)."""
        return max(queue.high_watermark for queue in self.queues.values())

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Dispatch eligible commands until no more progress is possible.

        Called on every enqueue and on every resource-free notification
        from the array.  Re-entrant calls collapse into the outer loop.
        """
        if self._pumping:
            return
        self._pumping = True
        try:
            progress = True
            while progress:
                progress = False
                for channel in self.array.channels:
                    if not channel.is_free(self.sim.now) or channel.has_continuations:
                        continue
                    started = self._dispatch_on_channel(channel.channel_id)
                    progress = progress or started
        finally:
            self._pumping = False

    def _dispatch_on_channel(self, channel_id: int) -> bool:
        """Start the best eligible command on one free channel."""
        luns_per_channel = self.array.geometry.luns_per_channel
        rotation = self._lun_rotation[channel_id]
        best: Optional[tuple[tuple, FlashCommand]] = None
        best_lun_offset = 0
        for offset in range(luns_per_channel):
            lun_id = (rotation + offset) % luns_per_channel
            lun = self.array.lun(channel_id, lun_id)
            if lun.is_busy:
                continue
            candidate = self._select(lun.key)
            if candidate is None:
                continue
            key = self._sort_key(candidate)
            if best is None or key < best[0]:
                best = (key, candidate)
                best_lun_offset = offset
        if best is None:
            return False
        cmd = best[1]
        self.queues[cmd.lun_key].remove(cmd)
        if self.config.policy is SsdSchedulerPolicy.FAIR:
            self._advance_fair(cmd)
        self._lun_rotation[channel_id] = (rotation + best_lun_offset + 1) % luns_per_channel
        self.array.start(cmd)
        return True

    # ------------------------------------------------------------------
    # Policy: candidate selection within one LUN queue
    # ------------------------------------------------------------------
    def _select(self, lun_key: tuple[int, int]) -> Optional[FlashCommand]:
        queue = self.queues[lun_key]
        if not queue:
            return None
        if self.config.policy is SsdSchedulerPolicy.FAIR:
            return self._select_fair(lun_key, queue)
        best: Optional[FlashCommand] = None
        best_key: Optional[tuple] = None
        for cmd in queue:
            if not self._eligible(cmd):
                continue
            key = self._sort_key(cmd)
            if best_key is None or key < best_key:
                best, best_key = cmd, key
        return best

    def _select_fair(
        self, lun_key: tuple[int, int], queue: LunCommandQueue
    ) -> Optional[FlashCommand]:
        start = self._fair_rotation[lun_key]
        for offset in range(len(_FAIR_ORDER)):
            source = _FAIR_ORDER[(start + offset) % len(_FAIR_ORDER)]
            for cmd in queue:
                if cmd.source is source and self._eligible(cmd):
                    return cmd
        return None

    def _advance_fair(self, cmd: FlashCommand) -> None:
        index = _FAIR_ORDER.index(cmd.source)
        self._fair_rotation[cmd.lun_key] = (index + 1) % len(_FAIR_ORDER)

    def _eligible(self, cmd: FlashCommand) -> bool:
        if cmd.kind is CommandKind.ERASE:
            lun = self.array.lun_of(cmd)
            return lun.block(cmd.address.block).erasable
        if cmd.kind in (CommandKind.PROGRAM, CommandKind.COPYBACK):
            return self.can_bind(cmd)
        return True

    # ------------------------------------------------------------------
    # Policy: ordering
    # ------------------------------------------------------------------
    def _sort_key(self, cmd: FlashCommand) -> tuple:
        """Smaller sorts first.  All keys end with (enqueue_time, id) so
        ordering is total and deterministic."""
        now = self.sim.now
        tail = (cmd.enqueue_time or 0, cmd.id)
        policy = self.config.policy
        if policy is SsdSchedulerPolicy.FIFO:
            return tail
        if policy is SsdSchedulerPolicy.PRIORITY:
            starved = cmd.age(now) >= self.config.starvation_age_ns
            if starved:
                return (0, 0, 0) + tail
            source_prio = self.config.source_priorities.get(cmd.source.name, 9)
            type_prio = self.config.type_priorities.get(cmd.kind.name, 9)
            hint_prio = 0
            if self.config.use_priority_hints and cmd.io is not None:
                hint_prio = cmd.io.hints.get("priority", 0)
            return (1, hint_prio, source_prio * 10 + type_prio) + tail
        if policy is SsdSchedulerPolicy.DEADLINE:
            deadline = cmd.deadline if cmd.deadline is not None else float("inf")
            overdue = 0 if cmd.overdue(now) else 1
            return (overdue, deadline) + tail
        if policy is SsdSchedulerPolicy.FAIR:
            return tail
        raise ValueError(f"unknown scheduler policy {policy!r}")

    def deadline_for(self, kind: CommandKind, now: int) -> Optional[int]:
        """Absolute deadline a new command of ``kind`` should carry under
        the DEADLINE policy (None otherwise)."""
        if self.config.policy is not SsdSchedulerPolicy.DEADLINE:
            return None
        if kind is CommandKind.READ:
            return now + self.config.read_deadline_ns
        if kind is CommandKind.ERASE:
            return now + self.config.erase_deadline_ns
        return now + self.config.write_deadline_ns
