"""Garbage collection (paper Section 2.2).

"The default GC module strives to fulfill these goals by triggering GC
so that a given number of blocks (GC Greediness parameter) are always
free on each LUN."

The collector keeps at most one job per LUN.  A job:

1. picks a victim block according to the configured policy (greedy /
   cost-benefit / random / oldest);
2. relocates every page that was live at job start -- with the copyback
   command when the chip supports it and relocation stays within the
   LUN, otherwise with a read followed by a program (stream ``gc``);
3. erases the victim once all relocations completed (the scheduler
   additionally holds the erase until no in-flight read targets the
   block).

Races with the application are resolved by the FTL: a page overwritten
while its relocation was in flight yields an orphan copy, which
``ftl.on_relocation`` invalidates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.config import GcVictimPolicy
from repro.hardware.addresses import PhysicalAddress
from repro.hardware.commands import CommandKind, CommandSource, FlashCommand
from repro.hardware.flash import Block, Lun

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import SsdController


class _GcJob:
    """One in-progress collection of one victim block."""

    __slots__ = (
        "lun_key",
        "block_id",
        "pending_relocations",
        "erase_issued",
        "cross_lun",
        "retire",
    )

    def __init__(
        self,
        lun_key: tuple[int, int],
        block_id: int,
        cross_lun: bool = False,
        retire: bool = False,
    ):
        self.lun_key = lun_key
        self.block_id = block_id
        self.pending_relocations = 0
        self.erase_issued = False
        #: Balancing job: relocations leave the LUN (see maybe_trigger).
        self.cross_lun = cross_lun
        #: Condemnation job: the block is retired after relocation
        #: instead of erased (reliability subsystem, program failures).
        self.retire = retire


class GarbageCollector:
    """Per-LUN greedy space reclamation with a free-block watermark."""

    def __init__(self, controller: "SsdController"):
        self.controller = controller
        config = controller.config.controller
        self.greediness = config.gc_greediness
        self.policy = config.gc_victim_policy
        self.same_lun = config.gc_same_lun
        self.use_copyback = (
            config.enable_copyback
            and controller.config.timings.supports_copyback
            and config.gc_same_lun
        )
        self._rng = controller.rng.stream("gc")
        #: Proactive idle-time collection (0 disables).
        self.idle_target = config.gc_idle_target
        self.idle_threshold_ns = config.gc_idle_threshold_ns
        self._idle_timers: dict[tuple[int, int], object] = {}
        self._last_app_activity: dict[tuple[int, int], int] = {}
        self.active_jobs: dict[tuple[int, int], _GcJob] = {}
        #: Erase-only reclaims in flight (fully-dead blocks need no
        #: relocation space, so they bypass the one-job-per-LUN slot).
        self._erase_only: set[tuple[tuple[int, int], int]] = set()
        #: Blocks condemned by the reliability subsystem (program
        #: failures), queued or actively being drained for retirement.
        self._condemned: set[tuple[tuple[int, int], int]] = set()
        self._condemn_queue: dict[tuple[int, int], list[int]] = {}
        self.condemned_retirements = 0
        self.collected_blocks = 0
        self.relocated_pages = 0
        self.copyback_relocations = 0
        self.balancing_jobs = 0
        self.erase_only_reclaims = 0
        self.idle_jobs = 0

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def maybe_trigger(self, lun_key: tuple[int, int]) -> None:
        """Start a job on ``lun_key`` if it fell below the watermark.

        The watermark counts *usable* free blocks: the greediness target
        sits on top of the allocator's GC-reserve block, otherwise a
        greediness of 1 could never fire (the reserve keeps one block
        free at all times) and writers would stall.
        """
        if self.controller.ftl.manages_physical_space:
            return  # the FTL's own merges reclaim space
        lun = self.controller.array.luns[lun_key]
        watermark = self.greediness + self.controller.allocator.gc_reserve
        if len(lun.free_block_ids) >= watermark:
            return
        # Fully-dead blocks cost nothing to reclaim and must never wait
        # behind a relocation job (whose own space needs they may unblock).
        self._reclaim_fully_dead(lun_key, lun)
        if lun_key in self.active_jobs:
            return
        victim = self._select_victim(lun_key, lun)
        if victim is not None:
            self._start_job(lun_key, lun, victim, cross_lun=False)
            return
        # No block holds a single dead page: the LUN is overcommitted
        # with live data (possible under skewed allocation, since GC
        # relocations stay local).  Rebalance by evicting the block with
        # the fewest live pages to other LUNs, so this LUN regains free
        # blocks.  Two guards keep this safe and rare:
        #
        # * only rebalance when a queued program is actually blocked here
        #   (a merely-full-but-unwritten LUN is fine as it is);
        # * at most ONE rebalancing job device-wide -- concurrent
        #   cross-LUN jobs can block on each other's target space.
        if self._cross_lun_job_active():
            return
        if not self._has_blocked_program(lun_key, lun):
            return
        victim = self._select_balancing_victim(lun_key, lun)
        if victim is not None:
            self.balancing_jobs += 1
            self._start_job(lun_key, lun, victim, cross_lun=True)

    def _cross_lun_job_active(self) -> bool:
        return any(job.cross_lun for job in self.active_jobs.values())

    def _has_blocked_program(self, lun_key: tuple[int, int], lun: Lun) -> bool:
        allocator = self.controller.allocator
        if len(lun.free_block_ids) > allocator.gc_reserve:
            return False  # new blocks are still openable; nothing stuck
        return any(
            cmd.kind is CommandKind.PROGRAM and not allocator.can_bind(cmd)
            for cmd in self.controller.scheduler.queues[lun_key]
        )

    def _candidate_mask(
        self, lun_key: tuple[int, int], lun: Lun, require_dead: bool
    ) -> np.ndarray:
        """Boolean victim-candidate mask over the LUN's local block ids.

        Vectorized equivalent of the former per-block Python loop: a
        candidate is occupied (not free), not open, not bad, programmed,
        (optionally) holds dead pages, and is not already being collected
        or migrated.  The exclusion sets are all small, so they are
        cleared point-wise on top of the array reductions.
        """
        state = lun.state
        start, stop = state.block_range(lun.lun_index)
        mask = (
            (state.block_free[start:stop] == 0)
            & (state.bad[start:stop] == 0)
            & (state.write_pointer[start:stop] > 0)
        )
        if require_dead:
            mask &= state.dead_count[start:stop] > 0
        for block_id in self.controller.allocator.open_block_ids(lun_key):
            mask[block_id] = False
        for key, block_id in sorted(self._erase_only):
            if key == lun_key:
                mask[block_id] = False
        for key, block_id in sorted(self._condemned):
            if key == lun_key:
                mask[block_id] = False
        job = self.active_jobs.get(lun_key)
        if job is not None:
            mask[job.block_id] = False
        for key, block_id in self.controller.wear_leveler.active:
            if key == lun_key:
                mask[block_id] = False
        return mask

    def _select_victim(self, lun_key: tuple[int, int], lun: Lun) -> Optional[int]:
        candidates = np.nonzero(self._candidate_mask(lun_key, lun, True))[0]
        if candidates.size == 0:
            return None
        state = lun.state
        start, _ = state.block_range(lun.lun_index)
        now = self.controller.sim.now
        if self.policy is GcVictimPolicy.GREEDY:
            # min over (live_count, block_id): argmax of the first-min
            # picks the lowest block id among minimal live counts.
            live = state.live_count[start + candidates]
            return int(candidates[int(np.argmax(live == live.min()))])
        if self.policy is GcVictimPolicy.COST_BENEFIT:
            # max over (cost_benefit, -block_id): float64 element-wise ops
            # match the former per-block Python float arithmetic exactly.
            live = state.live_count[start + candidates]
            utilisation = live / float(self.controller.config.geometry.pages_per_block)
            age = np.maximum(
                1, now - state.last_write_ns[start + candidates]
            ).astype(np.float64)
            benefit = (1.0 - utilisation) / (1.0 + utilisation) * age
            return int(candidates[int(np.argmax(benefit == benefit.max()))])
        if self.policy is GcVictimPolicy.RANDOM:
            return self._rng.choice(candidates.tolist())
        if self.policy is GcVictimPolicy.OLDEST:
            written = state.last_write_ns[start + candidates]
            return int(candidates[int(np.argmax(written == written.min()))])
        raise ValueError(f"unknown GC victim policy {self.policy!r}")

    # ------------------------------------------------------------------
    # Proactive (idle-time) collection
    # ------------------------------------------------------------------
    def note_app_activity(self, lun_key: tuple[int, int]) -> None:
        """Controller hook: an application command was queued for this
        LUN.  (Re)arms the idle timer when proactive GC is enabled."""
        if self.idle_target <= 0 or self.controller.ftl.manages_physical_space:
            return
        self._last_app_activity[lun_key] = self.controller.sim.now
        timer = self._idle_timers.get(lun_key)
        if timer is not None and timer.pending:
            timer.cancel()
        self._idle_timers[lun_key] = self.controller.sim.schedule(
            self.idle_threshold_ns, self._idle_check, lun_key
        )

    def _idle_check(self, lun_key: tuple[int, int]) -> None:
        if self.idle_target <= 0:
            return
        now = self.controller.sim.now
        last = self._last_app_activity.get(lun_key, 0)
        if now - last < self.idle_threshold_ns:
            return  # a fresher timer exists
        lun = self.controller.array.luns[lun_key]
        if lun.is_busy or self._has_pending_app_work(lun_key):
            # Not actually idle: the backlog keeps the LUN occupied.
            # Try again one threshold later.
            self._idle_timers[lun_key] = self.controller.sim.schedule(
                self.idle_threshold_ns, self._idle_check, lun_key
            )
            return
        if len(lun.free_block_ids) >= self.idle_target:
            return
        if lun_key in self.active_jobs:
            return
        victim = self._select_victim(lun_key, lun)
        if victim is None:
            return
        self.idle_jobs += 1
        self._start_job(lun_key, lun, victim, cross_lun=False)

    def _has_pending_app_work(self, lun_key: tuple[int, int]) -> bool:
        return any(
            cmd.source is CommandSource.APPLICATION
            for cmd in self.controller.scheduler.queues[lun_key]
        )

    def _reclaim_fully_dead(self, lun_key: tuple[int, int], lun: Lun) -> None:
        # Fully-dead = programmed but zero live pages.  Bad blocks are
        # excluded: runtime-retired blocks keep their dead contents
        # (stale reads and parity stay valid); they are gone for good.
        state = lun.state
        start, stop = state.block_range(lun.lun_index)
        mask = state.write_pointer[start:stop] > 0
        mask &= state.live_count[start:stop] == 0
        if not mask.any():
            return  # common case: nothing fully dead, skip the rest
        mask &= state.bad[start:stop] == 0
        mask &= state.block_free[start:stop] == 0
        for block_id in self.controller.allocator.open_block_ids(lun_key):
            mask[block_id] = False
        for block_id in np.nonzero(mask)[0].tolist():
            if (lun_key, block_id) in self._erase_only:
                continue
            if self._being_collected(lun_key, block_id):
                continue
            if self.controller.wl_is_migrating(lun_key, block_id):
                continue
            self._erase_only.add((lun_key, block_id))
            cmd = FlashCommand(
                CommandKind.ERASE,
                CommandSource.GC,
                PhysicalAddress(lun_key[0], lun_key[1], block_id, 0),
                context=(lun_key, block_id),
                on_complete=self._erase_only_done,
            )
            self.controller.enqueue_command(cmd)

    def _erase_only_done(self, cmd: FlashCommand) -> None:
        self._erase_only.discard(cmd.context)
        self.collected_blocks += 1
        self.erase_only_reclaims += 1

    def _select_balancing_victim(self, lun_key: tuple[int, int], lun: Lun) -> Optional[int]:
        candidates = np.nonzero(self._candidate_mask(lun_key, lun, False))[0]
        if candidates.size == 0:
            return None
        state = lun.state
        start, _ = state.block_range(lun.lun_index)
        live = state.live_count[start + candidates]
        return int(candidates[int(np.argmax(live == live.min()))])

    @staticmethod
    def _cost_benefit(block: Block, now: int) -> float:
        utilisation = block.live_count / block.num_pages
        age = max(1, now - block.last_write_ns)
        return (1.0 - utilisation) / (1.0 + utilisation) * age

    def _being_collected(self, lun_key: tuple[int, int], block_id: int) -> bool:
        if (lun_key, block_id) in self._erase_only:
            return True
        if (lun_key, block_id) in self._condemned:
            return True
        job = self.active_jobs.get(lun_key)
        return job is not None and job.block_id == block_id

    # ------------------------------------------------------------------
    # Condemnation (reliability subsystem: program failures)
    # ------------------------------------------------------------------
    def condemn(self, lun_key: tuple[int, int], block_id: int) -> None:
        """Drain and retire a block that reported a program failure.

        The block's live pages are relocated with the normal GC
        read+program machinery (copyback is avoided: it would re-read
        the failing block without controller-side checking), and the
        block is then *retired*, never erased back into the free pool.
        Condemnation uses the one-job-per-LUN slot, queueing behind an
        in-progress collection if necessary; until the job starts the
        block sits in ``_condemned``, which keeps victim selection, WL
        and erase-only reclaim away from it.
        """
        key = (lun_key, block_id)
        if key in self._condemned:
            return
        block = self.controller.array.luns[lun_key].block(block_id)
        if block.is_bad:
            return  # already retired (e.g. a second failure raced in)
        self._condemned.add(key)
        self._condemn_queue.setdefault(lun_key, []).append(block_id)
        self._pump_condemn(lun_key)

    def _pump_condemn(self, lun_key: tuple[int, int]) -> None:
        if lun_key in self.active_jobs:
            return  # runs when the current job's erase/retire completes
        queue = self._condemn_queue.get(lun_key)
        if not queue:
            return
        block_id = queue.pop(0)
        lun = self.controller.array.luns[lun_key]
        job = _GcJob(lun_key, block_id, retire=True)
        self.active_jobs[lun_key] = job
        block = lun.block(block_id)
        live_pages = block.live_page_indexes()
        self.controller.tracer.record(
            self.controller.sim.now,
            "controller",
            "gc-condemn",
            f"draining (c{lun_key[0]},l{lun_key[1]},b{block_id}) "
            f"live={len(live_pages)}",
        )
        if not live_pages:
            self._retire_block(job)
            return
        job.pending_relocations = len(live_pages)
        for page_index in live_pages:
            source = PhysicalAddress(lun_key[0], lun_key[1], block_id, page_index)
            self._relocate_by_read_program(job, source)

    def _retire_block(self, job: _GcJob) -> None:
        lun_key, block_id = job.lun_key, job.block_id
        controller = self.controller
        lun = controller.array.luns[lun_key]
        # Retire without erasing: dead contents stay readable for any
        # in-flight stale read and the parity tracker stays consistent.
        lun.retire_block(block_id)
        controller.array.retired_blocks += 1
        self.active_jobs.pop(lun_key, None)
        self._condemned.discard((lun_key, block_id))
        self.condemned_retirements += 1
        controller.tracer.record(
            controller.sim.now,
            "controller",
            "gc-retired",
            f"condemned (c{lun_key[0]},l{lun_key[1]},b{block_id}) left service",
        )
        if controller.reliability is not None:
            controller.reliability.on_runtime_retirement(
                lun_key, block_id, "program failure"
            )
        self._pump_condemn(lun_key)
        # Usable capacity shrank: the LUN may now be below the watermark.
        self.maybe_trigger(lun_key)

    # ------------------------------------------------------------------
    # Job execution
    # ------------------------------------------------------------------
    def _start_job(
        self, lun_key: tuple[int, int], lun: Lun, victim_id: int, cross_lun: bool
    ) -> None:
        job = _GcJob(lun_key, victim_id, cross_lun=cross_lun)
        self.active_jobs[lun_key] = job
        block = lun.block(victim_id)
        live_pages = block.live_page_indexes()
        self.controller.tracer.record(
            self.controller.sim.now,
            "controller",
            "gc-start",
            f"victim (c{lun_key[0]},l{lun_key[1]},b{victim_id}) "
            f"live={len(live_pages)}{' rebalance' if cross_lun else ''}",
        )
        if not live_pages:
            self._issue_erase(job)
            return
        job.pending_relocations = len(live_pages)
        for page_index in live_pages:
            source = PhysicalAddress(lun_key[0], lun_key[1], victim_id, page_index)
            if self.use_copyback and not cross_lun:
                self._relocate_by_copyback(job, source)
            else:
                self._relocate_by_read_program(job, source)

    def _relocate_by_copyback(self, job: _GcJob, source: PhysicalAddress) -> None:
        cmd = FlashCommand(
            CommandKind.COPYBACK,
            CommandSource.GC,
            source,
            stream="gc",
            context=job,
            on_complete=self._copyback_done,
        )
        self.controller.enqueue_command(cmd)

    def _copyback_done(self, cmd: FlashCommand) -> None:
        assert cmd.target_address is not None and cmd.content is not None
        self.copyback_relocations += 1
        self._relocation_done(cmd.context, cmd.content, cmd.address, cmd.target_address)

    def _relocate_by_read_program(self, job: _GcJob, source: PhysicalAddress) -> None:
        cmd = FlashCommand(
            CommandKind.READ,
            CommandSource.GC,
            source,
            context=job,
            on_complete=self._relocation_read_done,
        )
        self.controller.enqueue_command(cmd)

    def _relocation_read_done(self, cmd: FlashCommand) -> None:
        assert cmd.content is not None
        job = cmd.context
        if job.cross_lun:
            # Balancing eviction: the data must leave this LUN.  Stream
            # "rebalance" is not reserve-exempt, so other LUNs keep their
            # GC headroom.
            lun_key = self.controller.allocator.place_internal(
                "rebalance", exclude=job.lun_key
            )
            stream = "rebalance"
        elif self.same_lun:
            lun_key = cmd.lun_key
            stream = self.controller.allocator.gc_stream_for(cmd.content[0])
        else:
            lun_key, stream = self.controller.allocator.place_internal("gc"), "gc"
        program = FlashCommand(
            CommandKind.PROGRAM,
            CommandSource.GC,
            PhysicalAddress(lun_key[0], lun_key[1], -1, -1),
            lpn=cmd.content[0],
            content=cmd.content,
            stream=stream,
            context=(cmd.context, cmd.address),
            on_complete=self._relocation_program_done,
        )
        self.controller.enqueue_command(program)

    def _relocation_program_done(self, cmd: FlashCommand) -> None:
        job, source = cmd.context
        assert cmd.content is not None
        self._relocation_done(job, cmd.content, source, cmd.address)

    def _relocation_done(
        self,
        job: _GcJob,
        content: tuple[int, int],
        old_address: PhysicalAddress,
        new_address: PhysicalAddress,
    ) -> None:
        self.controller.ftl.on_relocation(content, old_address, new_address)
        self.relocated_pages += 1
        job.pending_relocations -= 1
        if job.pending_relocations == 0:
            if job.retire:
                self._retire_block(job)
            else:
                self._issue_erase(job)

    def _issue_erase(self, job: _GcJob) -> None:
        job.erase_issued = True
        cmd = FlashCommand(
            CommandKind.ERASE,
            CommandSource.GC,
            PhysicalAddress(job.lun_key[0], job.lun_key[1], job.block_id, 0),
            context=job,
            on_complete=self._erase_done,
        )
        self.controller.enqueue_command(cmd)

    def _erase_done(self, cmd: FlashCommand) -> None:
        job = cmd.context
        self.active_jobs.pop(job.lun_key, None)
        self.collected_blocks += 1
        self.controller.tracer.record(
            self.controller.sim.now,
            "controller",
            "gc-done",
            f"erased (c{job.lun_key[0]},l{job.lun_key[1]},b{job.block_id})",
        )
        # Condemned blocks (reliability) jump ahead of further
        # collection: their space is unusable until they retire.
        self._pump_condemn(job.lun_key)
        # The LUN may still be below the watermark: chain the next job.
        self.maybe_trigger(job.lun_key)
        if job.cross_lun:
            # The device-wide rebalancing slot is free again: other LUNs
            # may have been waiting for it.
            for lun_key in self.controller.array.luns:
                self.maybe_trigger(lun_key)
        if self.idle_target > 0:
            # Chain proactive collection while the LUN stays idle.
            self.controller.sim.post(0, self._idle_check, job.lun_key)
