"""The application layer: the thread programming framework and workloads.

Paper Section 2.2: "The Thread layer is a programming framework that
gives users absolute control over the workload.  Users are able to
extend an abstract thread class by providing a definition for two
methods: init() and call_back()."  Here these are
:meth:`~repro.workloads.threads.Thread.on_init` and
:meth:`~repro.workloads.threads.Thread.on_io_completed`.

Provided workloads:

* :mod:`repro.workloads.synthetic` -- sequential/random readers and
  writers (uniform or zipfian), mixed read/write threads; used both as
  measured workloads and as the preconditioning threads of Section 2.3.
* :mod:`repro.workloads.filesystem` -- a thread simulating file-system
  behaviour (creates, appends, overwrites, deletes with trims).
* :mod:`repro.workloads.grace_hash_join` -- a thread following the IO
  pattern of a Grace hash join, as in the paper.
* :mod:`repro.workloads.lsm` -- LSM-tree insertion workload (flushes
  and compactions), the database motivation from the introduction.
* :mod:`repro.workloads.external_sort` -- external merge sort, from the
  cross-layer application list in Section 2.1.
* :mod:`repro.workloads.trace_replay` -- replays explicit IO traces.
"""

from repro.workloads.external_sort import ExternalSortThread
from repro.workloads.filesystem import FileSystemThread
from repro.workloads.grace_hash_join import GraceHashJoinThread
from repro.workloads.lsm import LsmInsertThread
from repro.workloads.synthetic import (
    MixedWorkloadThread,
    RandomReaderThread,
    RandomWriterThread,
    SequentialReaderThread,
    SequentialWriterThread,
    precondition_sequential,
    precondition_random,
)
from repro.workloads.threads import GeneratorThread, Thread
from repro.workloads.trace_replay import (
    TraceRecordOp,
    TraceReplayThread,
    generate_poisson_trace,
    load_trace_csv,
)

__all__ = [
    "ExternalSortThread",
    "FileSystemThread",
    "GeneratorThread",
    "GraceHashJoinThread",
    "LsmInsertThread",
    "MixedWorkloadThread",
    "RandomReaderThread",
    "RandomWriterThread",
    "SequentialReaderThread",
    "SequentialWriterThread",
    "Thread",
    "TraceRecordOp",
    "TraceReplayThread",
    "generate_poisson_trace",
    "load_trace_csv",
    "precondition_random",
    "precondition_sequential",
]
