"""A thread simulating the IO behaviour of a file system.

The paper mentions "threads simulating the behavior of a file system" as
an example of the framework's expressiveness.  This thread maintains an
in-memory model of a tiny extent-based file system inside its address
region:

* a metadata area at the front of the region (inode/bitmap pages that
  get rewritten on every namespace operation -- classic hot data);
* a data area managed by a next-fit page allocator.

Each *operation* is one of create / append / overwrite / delete, drawn
with configurable weights.  Creates and appends allocate pages and write
them plus a metadata page; overwrites rewrite existing file pages;
deletes trim the file's pages and rewrite metadata.  The result is a
realistic mix: hot metadata rewrites, cold bulk data, and trims.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import IoType, WriteHints
from repro.host.operating_system import ThreadContext
from repro.workloads.threads import GeneratorThread, Op


class FileSystemThread(GeneratorThread):
    """Replays a random sequence of file-system operations."""

    #: Relative weights of (create, append, overwrite, delete).
    DEFAULT_WEIGHTS = (0.3, 0.25, 0.3, 0.15)

    def __init__(
        self,
        name: str,
        operations: int,
        region: Optional[tuple[int, int]] = None,
        metadata_pages: int = 8,
        max_file_pages: int = 16,
        weights: tuple[float, float, float, float] = DEFAULT_WEIGHTS,
        depth: int = 4,
        hint_metadata_hot: bool = False,
    ):
        super().__init__(name, depth=depth)
        if operations < 0:
            raise ValueError("operations must be >= 0")
        if metadata_pages < 1:
            raise ValueError("metadata_pages must be >= 1")
        self.operations = operations
        self.region = region
        self.metadata_pages = metadata_pages
        self.max_file_pages = max_file_pages
        self.weights = weights
        #: Attach temperature hints: metadata hot, file data cold.
        self.hint_metadata_hot = hint_metadata_hot
        self._initialised = False
        self._ops_done = 0
        self._queue: list[Op] = []
        #: file id -> list of data lpns.
        self._files: dict[int, list[int]] = {}
        self._next_file_id = 0
        self._free: list[int] = []
        self._meta_low = 0

    # ------------------------------------------------------------------
    # Lazy initialisation (needs ctx for the logical space size)
    # ------------------------------------------------------------------
    def _setup(self, ctx: ThreadContext) -> None:
        low, high = self.region if self.region else (0, ctx.logical_pages)
        if high - low < self.metadata_pages + self.max_file_pages:
            raise ValueError("file-system region too small")
        self._meta_low = low
        self._free = list(range(low + self.metadata_pages, high))
        self._initialised = True

    # ------------------------------------------------------------------
    # Operation generation
    # ------------------------------------------------------------------
    def next_io(self, ctx: ThreadContext) -> Optional[Op]:
        if not self._initialised:
            self._setup(ctx)
        if self._queue:
            return self._queue.pop(0)
        if self._ops_done >= self.operations:
            return None
        self._ops_done += 1
        self._generate_operation(ctx)
        if not self._queue:  # operation degenerated (e.g. no space)
            return self.next_io(ctx)
        return self._queue.pop(0)

    def _generate_operation(self, ctx: ThreadContext) -> None:
        rng = ctx.rng("fs")
        choice = rng.random()
        create_w, append_w, overwrite_w, _delete_w = self.weights
        total = sum(self.weights)
        if choice < create_w / total or not self._files:
            self._op_create(ctx)
        elif choice < (create_w + append_w) / total:
            self._op_append(ctx)
        elif choice < (create_w + append_w + overwrite_w) / total:
            self._op_overwrite(ctx)
        else:
            self._op_delete(ctx)

    def _op_create(self, ctx: ThreadContext) -> None:
        rng = ctx.rng("fs")
        size = rng.randint(1, self.max_file_pages)
        if len(self._free) < size:
            if self._files:
                self._op_delete(ctx)
            return
        pages = [self._free.pop(0) for _ in range(size)]
        file_id = self._next_file_id
        self._next_file_id += 1
        self._files[file_id] = pages
        for lpn in pages:
            self._queue.append((IoType.WRITE, lpn, self._data_hints()))
        self._touch_metadata(ctx)

    def _op_append(self, ctx: ThreadContext) -> None:
        rng = ctx.rng("fs")
        file_id = rng.choice(sorted(self._files))
        if not self._free or len(self._files[file_id]) >= self.max_file_pages:
            return
        lpn = self._free.pop(0)
        self._files[file_id].append(lpn)
        self._queue.append((IoType.WRITE, lpn, self._data_hints()))
        self._touch_metadata(ctx)

    def _op_overwrite(self, ctx: ThreadContext) -> None:
        rng = ctx.rng("fs")
        file_id = rng.choice(sorted(self._files))
        pages = self._files[file_id]
        lpn = rng.choice(pages)
        self._queue.append((IoType.WRITE, lpn, self._data_hints()))

    def _op_delete(self, ctx: ThreadContext) -> None:
        rng = ctx.rng("fs")
        file_id = rng.choice(sorted(self._files))
        pages = self._files.pop(file_id)
        for lpn in pages:
            self._queue.append((IoType.TRIM, lpn, None))
        self._free.extend(pages)
        self._touch_metadata(ctx)

    def _touch_metadata(self, ctx: ThreadContext) -> None:
        rng = ctx.rng("fs")
        lpn = self._meta_low + rng.randrange(self.metadata_pages)
        self._queue.append((IoType.WRITE, lpn, self._metadata_hints()))

    def _data_hints(self) -> Optional[WriteHints]:
        if self.hint_metadata_hot:
            return {"temperature": "cold"}
        return None

    def _metadata_hints(self) -> Optional[WriteHints]:
        if self.hint_metadata_hot:
            return {"temperature": "hot"}
        return None

    # ------------------------------------------------------------------
    # Introspection for tests
    # ------------------------------------------------------------------
    @property
    def live_files(self) -> int:
        return len(self._files)
