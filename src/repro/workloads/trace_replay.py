"""Trace replay: drive the simulator with an explicit IO trace.

Supports the two standard replay disciplines:

* **closed-loop** (``timed=False``): keep ``depth`` IOs in flight,
  issuing trace records as completions free slots -- measures device
  capability;
* **open-loop** (``timed=True``): issue each record at its recorded
  timestamp regardless of completions -- measures behaviour under a
  fixed offered load (timestamps are virtual nanoseconds relative to
  thread start).

Traces can be built programmatically or loaded from a simple CSV
(``time_ns,op,lpn`` with op in {R, W, T}).
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from types import MappingProxyType
from typing import Iterable, Optional

from repro.core.events import IoType
from repro.host.interface import QueueFullError
from repro.host.operating_system import ThreadContext
from repro.workloads.threads import GeneratorThread, Op

_OP_CODES = MappingProxyType({"R": IoType.READ, "W": IoType.WRITE, "T": IoType.TRIM})


@dataclass(frozen=True)
class TraceRecordOp:
    """One trace record: when, what, where."""

    time_ns: int
    io_type: IoType
    lpn: int


def generate_poisson_trace(
    rate_iops: float,
    duration_ns: int,
    logical_pages: int,
    read_fraction: float = 0.5,
    zipf_theta: Optional[float] = None,
    seed: int = 42,
) -> list[TraceRecordOp]:
    """Synthesise an open-loop trace with Poisson arrivals.

    Replayed with ``TraceReplayThread(..., timed=True)`` this applies a
    fixed *offered load* regardless of completions -- the input for
    latency-vs-load curves (the open-loop complement of the queue-depth
    sweep in E9).
    """
    if rate_iops <= 0:
        raise ValueError("rate_iops must be positive")
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError("read_fraction must be in [0, 1]")
    from repro.core.rng import RandomStream

    rng = RandomStream(seed, "poisson-trace")
    records: list[TraceRecordOp] = []
    time_ns = 0.0
    mean_gap_ns = 1e9 / rate_iops
    while True:
        time_ns += rng.expovariate(1.0) * mean_gap_ns
        if time_ns >= duration_ns:
            break
        if zipf_theta is not None:
            lpn = rng.zipf_index(logical_pages, zipf_theta)
        else:
            lpn = rng.randrange(logical_pages)
        io_type = IoType.READ if rng.random() < read_fraction else IoType.WRITE
        records.append(TraceRecordOp(int(time_ns), io_type, lpn))
    return records


def load_trace_csv(path: str) -> list[TraceRecordOp]:
    """Load ``time_ns,op,lpn`` records; op is one of R, W, T."""
    records = []
    with open(path, newline="") as handle:
        for row in csv.reader(handle):
            if not row or row[0].startswith("#") or row[0] == "time_ns":
                continue
            time_ns, op, lpn = int(row[0]), row[1].strip().upper(), int(row[2])
            if op not in _OP_CODES:
                raise ValueError(f"unknown trace op {op!r}")
            records.append(TraceRecordOp(time_ns, _OP_CODES[op], lpn))
    records.sort(key=lambda record: record.time_ns)
    return records


class TraceReplayThread(GeneratorThread):
    """Replays a trace closed-loop or open-loop."""

    def __init__(
        self,
        name: str,
        trace: Iterable[TraceRecordOp],
        timed: bool = False,
        depth: int = 8,
    ):
        super().__init__(name, depth=depth)
        self.trace = sorted(trace, key=lambda record: record.time_ns)
        self.timed = timed
        self._cursor = 0
        self._start_ns: Optional[int] = None
        self._outstanding_open_loop = 0
        #: Open-loop records dropped at strict host admission control: an
        #: open-loop client cannot wait, so a rejected arrival is shed
        #: (and counted) rather than retried -- predictable load shedding.
        self.dropped_ios = 0

    # ------------------------------------------------------------------
    # Closed-loop: standard GeneratorThread behaviour
    # ------------------------------------------------------------------
    def next_io(self, ctx: ThreadContext) -> Optional[Op]:
        if self.timed:
            return None  # open-loop issuing is timer-driven instead
        if self._cursor >= len(self.trace):
            return None
        record = self.trace[self._cursor]
        self._cursor += 1
        return (record.io_type, record.lpn, None)

    # ------------------------------------------------------------------
    # Open-loop: timers fire at recorded instants
    # ------------------------------------------------------------------
    def on_init(self, ctx: ThreadContext) -> None:
        if not self.timed:
            super().on_init(ctx)
            return
        self._start_ns = ctx.now
        if not self.trace:
            ctx.finish()
            return
        self._arm_next(ctx)

    def _arm_next(self, ctx: ThreadContext) -> None:
        assert self._start_ns is not None
        record = self.trace[self._cursor]
        due = self._start_ns + record.time_ns
        # simlint: disable=SIM005 -- ThreadContext.schedule is already
        # fire-and-forget (it posts internally and returns None).
        ctx.schedule(max(0, due - ctx.now), self._fire, ctx)

    def _fire(self, ctx: ThreadContext) -> None:
        record = self.trace[self._cursor]
        self._cursor += 1
        try:
            if record.io_type is IoType.READ:
                ctx.read(record.lpn)
            elif record.io_type is IoType.WRITE:
                ctx.write(record.lpn)
            else:
                ctx.trim(record.lpn)
        except QueueFullError:
            self.dropped_ios += 1
        else:
            self._outstanding_open_loop += 1
        if self._cursor < len(self.trace):
            self._arm_next(ctx)
        elif self._outstanding_open_loop == 0:
            # The final arrival was shed with nothing in flight: no
            # completion will ever come, so finish here.
            ctx.finish()

    def on_io_completed(self, ctx: ThreadContext, io) -> None:
        if not self.timed:
            super().on_io_completed(ctx, io)
            return
        self._outstanding_open_loop -= 1
        if self._cursor >= len(self.trace) and self._outstanding_open_loop == 0:
            ctx.finish()
