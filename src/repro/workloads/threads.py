"""The abstract thread class and a reusable windowed-IO base.

A thread interacts with the operating system purely through its
:class:`~repro.host.operating_system.ThreadContext`:

* ``on_init(ctx)`` is called by the OS when the thread starts (after its
  dependencies finished);
* ``on_io_completed(ctx, io)`` is called for every completion of an IO
  this thread issued;
* within either method the thread may issue any number of IOs, arm
  timers (``ctx.schedule``), send open-interface messages, or declare
  itself done (``ctx.finish``).

:class:`GeneratorThread` captures the dominant pattern -- keep a window
of ``depth`` asynchronous IOs in flight, drawing the next operation from
a subclass -- so concrete workloads only implement :meth:`next_io`.
``depth=1`` gives fully synchronous behaviour (the paper's question "How
should we submit synchronous and asynchronous IOs?" becomes a parameter
sweep over ``depth``).
"""

from __future__ import annotations

import abc
from typing import Optional

from repro.core import units
from repro.core.events import IoRequest, IoType, WriteHints
from repro.host.interface import QueueFullError
from repro.host.operating_system import ThreadContext

#: An operation produced by a generator workload.
Op = tuple[IoType, int, Optional[WriteHints]]


class Thread(abc.ABC):
    """The paper's abstract thread class (init / call_back)."""

    def __init__(self, name: str):
        self.name = name

    @abc.abstractmethod
    def on_init(self, ctx: ThreadContext) -> None:
        """Called once by the OS when the thread is initialised."""

    def on_io_completed(self, ctx: ThreadContext, io: IoRequest) -> None:
        """Called every time an IO originating from this thread
        completes.  Default: do nothing."""


class GeneratorThread(Thread):
    """Keeps ``depth`` IOs in flight, pulling operations from
    :meth:`next_io` until it returns None; then finishes.

    ``think_time_ns`` inserts a virtual compute delay between an IO's
    completion and the issue of its replacement -- the application is
    then not purely IO-bound (paper: "How should we submit synchronous
    and asynchronous IOs?" has a third axis: how fast can we submit).

    Backpressure: when strict host admission control is armed
    (``overload.strict_admission``), a full submission pool raises
    :class:`~repro.host.interface.QueueFullError` out of the issue call.
    The generator then holds the rejected operation, backs off for
    ``backpressure_retry_ns`` of virtual time, and re-issues it -- no
    operation is ever lost, and ``backpressure_events`` counts how often
    the workload was pushed back.
    """

    def __init__(
        self,
        name: str,
        depth: int = 4,
        think_time_ns: int = 0,
        backpressure_retry_ns: int = units.microseconds(100),
    ):
        super().__init__(name)
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if think_time_ns < 0:
            raise ValueError("think_time_ns must be >= 0")
        if backpressure_retry_ns <= 0:
            raise ValueError("backpressure_retry_ns must be positive")
        self.depth = depth
        self.think_time_ns = think_time_ns
        self.backpressure_retry_ns = backpressure_retry_ns
        self.in_flight = 0
        #: Times an issue was rejected by strict host admission control.
        self.backpressure_events = 0
        self._exhausted = False
        #: Operation rejected at admission, held for re-issue.
        self._deferred: Optional[Op] = None
        self._retry_armed = False

    @abc.abstractmethod
    def next_io(self, ctx: ThreadContext) -> Optional[Op]:
        """The next operation as ``(io_type, lpn, hints)`` or None when
        the workload is exhausted."""

    def on_init(self, ctx: ThreadContext) -> None:
        for _ in range(self.depth):
            if not self._pump(ctx):
                break

    def on_io_completed(self, ctx: ThreadContext, io: IoRequest) -> None:
        self.in_flight -= 1
        if self.think_time_ns > 0:
            # simlint: disable=SIM005 -- ThreadContext.schedule is already
            # fire-and-forget (it posts internally and returns None).
            ctx.schedule(self.think_time_ns, self._pump, ctx)
        else:
            self._pump(ctx)

    def _pump(self, ctx: ThreadContext) -> bool:
        """Issue one more IO if available; finish when drained."""
        if not self._exhausted:
            if self._deferred is not None:
                op: Optional[Op] = self._deferred
                self._deferred = None
            else:
                op = self.next_io(ctx)
            if op is None:
                self._exhausted = True
            else:
                io_type, lpn, hints = op
                try:
                    if io_type is IoType.READ:
                        ctx.read(lpn, hints)
                    elif io_type is IoType.WRITE:
                        ctx.write(lpn, hints)
                    else:
                        ctx.trim(lpn, hints)
                except QueueFullError:
                    self.backpressure_events += 1
                    self._deferred = op
                    if not self._retry_armed:
                        self._retry_armed = True
                        # simlint: disable=SIM005 -- ThreadContext.schedule
                        # is already fire-and-forget.
                        ctx.schedule(
                            self.backpressure_retry_ns, self._retry_deferred, ctx
                        )
                    return False
                self.in_flight += 1
                return True
        if self._exhausted and self.in_flight == 0:
            ctx.finish()
        return False

    def _retry_deferred(self, ctx: ThreadContext) -> None:
        """Backoff timer: re-issue the operation held at admission.  A
        completion-driven pump may have consumed it already; then this
        is a no-op (the window was refilled through the normal path)."""
        self._retry_armed = False
        if self._deferred is not None:
            self._pump(ctx)
