"""Synthetic workload threads: the uFLIP-style building blocks.

These cover the workload vocabulary the paper's experiment suite needs:
sequential and random readers/writers over configurable address regions,
uniform or zipfian skew, configurable asynchrony (window depth), and a
mixed read/write thread.  They double as the *preparation threads* of
Section 2.3 ("thread(s) that write over the entire logical address space
sequentially and/or randomly") through the two ``precondition_*``
helpers.

Every thread accepts an optional ``hint_fn(io_type, lpn) -> dict`` so
open-interface experiments can attach priority / temperature / locality
hints without subclassing.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.events import IoType, WriteHints
from repro.host.operating_system import ThreadContext
from repro.workloads.threads import GeneratorThread, Op

HintFn = Callable[[IoType, int], Optional[WriteHints]]


class _RegionThread(GeneratorThread):
    """Shared plumbing: an address region, an op budget and hints."""

    def __init__(
        self,
        name: str,
        count: int,
        region: Optional[tuple[int, int]] = None,
        depth: int = 4,
        hint_fn: Optional[HintFn] = None,
    ):
        super().__init__(name, depth=depth)
        if count < 0:
            raise ValueError("count must be >= 0")
        self.count = count
        self.region = region
        self.hint_fn = hint_fn
        self.issued_ops = 0

    def _region(self, ctx: ThreadContext) -> tuple[int, int]:
        if self.region is not None:
            low, high = self.region
        else:
            low, high = 0, ctx.logical_pages
        if not 0 <= low < high <= ctx.logical_pages:
            raise ValueError(f"region ({low}, {high}) outside logical space")
        return low, high

    def _hints(self, io_type: IoType, lpn: int) -> Optional[WriteHints]:
        if self.hint_fn is None:
            return None
        return self.hint_fn(io_type, lpn)

    def _emit(self, io_type: IoType, lpn: int) -> Op:
        self.issued_ops += 1
        return (io_type, lpn, self._hints(io_type, lpn))


class SequentialWriterThread(_RegionThread):
    """Writes the region sequentially, wrapping around until ``count``
    operations were issued."""

    def next_io(self, ctx: ThreadContext) -> Optional[Op]:
        if self.issued_ops >= self.count:
            return None
        low, high = self._region(ctx)
        lpn = low + self.issued_ops % (high - low)
        return self._emit(IoType.WRITE, lpn)


class SequentialReaderThread(_RegionThread):
    """Reads the region sequentially, wrapping until ``count`` ops."""

    def next_io(self, ctx: ThreadContext) -> Optional[Op]:
        if self.issued_ops >= self.count:
            return None
        low, high = self._region(ctx)
        lpn = low + self.issued_ops % (high - low)
        return self._emit(IoType.READ, lpn)


class _SkewedThread(_RegionThread):
    """Shared random-address drawing with optional zipf skew."""

    def __init__(self, *args, zipf_theta: Optional[float] = None, **kwargs):
        super().__init__(*args, **kwargs)
        self.zipf_theta = zipf_theta

    def _draw_lpn(self, ctx: ThreadContext) -> int:
        low, high = self._region(ctx)
        rng = ctx.rng("addresses")
        span = high - low
        if self.zipf_theta is None:
            return low + rng.randrange(span)
        return low + rng.zipf_index(span, self.zipf_theta)


class RandomWriterThread(_SkewedThread):
    """Writes uniformly random (or zipf-skewed) pages in the region."""

    def next_io(self, ctx: ThreadContext) -> Optional[Op]:
        if self.issued_ops >= self.count:
            return None
        return self._emit(IoType.WRITE, self._draw_lpn(ctx))


class RandomReaderThread(_SkewedThread):
    """Reads uniformly random (or zipf-skewed) pages in the region."""

    def next_io(self, ctx: ThreadContext) -> Optional[Op]:
        if self.issued_ops >= self.count:
            return None
        return self._emit(IoType.READ, self._draw_lpn(ctx))


class MixedWorkloadThread(_SkewedThread):
    """Interleaves reads and writes with a configurable read fraction."""

    def __init__(self, *args, read_fraction: float = 0.5, **kwargs):
        super().__init__(*args, **kwargs)
        if not 0.0 <= read_fraction <= 1.0:
            raise ValueError("read_fraction must be in [0, 1]")
        self.read_fraction = read_fraction

    def next_io(self, ctx: ThreadContext) -> Optional[Op]:
        if self.issued_ops >= self.count:
            return None
        is_read = ctx.rng("mix").random() < self.read_fraction
        io_type = IoType.READ if is_read else IoType.WRITE
        return self._emit(io_type, self._draw_lpn(ctx))


def precondition_sequential(
    logical_pages: int, name: str = "precondition-seq", depth: int = 32
) -> SequentialWriterThread:
    """A preparation thread writing the whole logical space once,
    sequentially (brings the device to the "filled sequentially" state
    of the uFLIP methodology)."""
    return SequentialWriterThread(
        name, count=logical_pages, region=(0, logical_pages), depth=depth
    )


def precondition_random(
    logical_pages: int,
    overwrite_factor: float = 1.0,
    name: str = "precondition-rand",
    depth: int = 32,
) -> RandomWriterThread:
    """A preparation thread overwriting randomly (puts the device into
    steady state: fragmented blocks, working garbage collector)."""
    count = int(logical_pages * overwrite_factor)
    return RandomWriterThread(name, count=count, region=(0, logical_pages), depth=depth)
