"""External merge sort IO pattern.

The paper's cross-layer questions (§2.1) name "external sorting
algorithms" among the applications whose interaction with the SSD stack
is worth studying.  This thread follows the classic two-level external
merge sort:

1. **Run generation**: read the input sequentially in memory-sized
   chunks; write each chunk back as a sorted run (sequential writes).
2. **Merge passes**: merge ``fanin`` runs at a time -- the reads
   round-robin across the input runs (a highly parallel, multi-stream
   read pattern), the merged output is written sequentially.  Passes
   repeat until one run remains.

As with the other database workloads, tuple comparisons are abstracted
away; the *addresses and orderings* of the IOs are what exercise the
device.

Layout inside the region::

    [ input (run area A) | run area B ]

Runs ping-pong between the two areas across passes, so the space needed
is exactly twice the input.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import IoType
from repro.host.operating_system import ThreadContext
from repro.workloads.threads import GeneratorThread, Op


class ExternalSortThread(GeneratorThread):
    """Two-area external merge sort over ``input_pages`` of data."""

    def __init__(
        self,
        name: str,
        input_pages: int,
        memory_pages: int = 32,
        fanin: int = 4,
        region_start: int = 0,
        depth: int = 8,
    ):
        super().__init__(name, depth=depth)
        if input_pages < 1 or memory_pages < 1 or fanin < 2:
            raise ValueError("invalid sort shape")
        self.input_pages = input_pages
        self.memory_pages = memory_pages
        self.fanin = fanin
        self.region_start = region_start
        self._plan: Optional[list[Op]] = None
        self._cursor = 0
        self.run_generation_ops = 0
        self.merge_passes = 0

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def area_base(self, area: int) -> int:
        return self.region_start + area * self.input_pages

    def total_pages_needed(self) -> int:
        return 2 * self.input_pages

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def _build_plan(self, ctx: ThreadContext) -> list[Op]:
        if self.region_start + self.total_pages_needed() > ctx.logical_pages:
            raise ValueError(
                f"{self.name}: sort needs {self.total_pages_needed()} pages, "
                f"logical space has {ctx.logical_pages - self.region_start}"
            )
        plan: list[Op] = []
        # Pass 0: run generation.  Input is in area 0; sorted runs go to
        # area 1.  Each chunk: sequential read then sequential write.
        runs: list[tuple[int, int]] = []  # (start_offset, length)
        offset = 0
        while offset < self.input_pages:
            length = min(self.memory_pages, self.input_pages - offset)
            for page in range(length):
                plan.append((IoType.READ, self.area_base(0) + offset + page, None))
            for page in range(length):
                plan.append((IoType.WRITE, self.area_base(1) + offset + page, None))
            runs.append((offset, length))
            offset += length
        self.run_generation_ops = len(plan)
        # Merge passes, ping-ponging between the areas.
        source_area = 1
        while len(runs) > 1:
            self.merge_passes += 1
            target_area = 1 - source_area
            next_runs: list[tuple[int, int]] = []
            for group_start in range(0, len(runs), self.fanin):
                group = runs[group_start : group_start + self.fanin]
                merged_offset = group[0][0]
                # Round-robin reads across the group's runs (merge order),
                # then the sequential write of the merged output.
                cursors = [start for start, _ in group]
                ends = [start + length for start, length in group]
                out = merged_offset
                while any(c < e for c, e in zip(cursors, ends)):
                    for index in range(len(group)):
                        if cursors[index] < ends[index]:
                            plan.append(
                                (IoType.READ,
                                 self.area_base(source_area) + cursors[index],
                                 None)
                            )
                            cursors[index] += 1
                            plan.append(
                                (IoType.WRITE,
                                 self.area_base(target_area) + out,
                                 None)
                            )
                            out += 1
                merged_length = sum(length for _, length in group)
                next_runs.append((merged_offset, merged_length))
            runs = next_runs
            source_area = target_area
        return plan

    # ------------------------------------------------------------------
    # GeneratorThread interface
    # ------------------------------------------------------------------
    def next_io(self, ctx: ThreadContext) -> Optional[Op]:
        if self._plan is None:
            self._plan = self._build_plan(ctx)
            self._cursor = 0
        if self._cursor >= len(self._plan):
            return None
        op = self._plan[self._cursor]
        self._cursor += 1
        return op
