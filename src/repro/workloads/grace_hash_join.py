"""A thread following the IO pattern of a Grace hash join.

The paper implemented "a thread that follows the IO pattern of Grace
hash Join" as a database-algorithm workload.  Grace hash join runs in
two passes:

1. **Partition phase**: read relation R sequentially, hash-partition its
   tuples into K output buckets, writing each bucket page as it fills;
   then the same for relation S.  The IO pattern is a sequential read
   stream interleaved with writes scattered across K growing partitions.
2. **Probe phase**: for each partition i, read R_i (build the hash
   table), then read S_i (probe).  Reads within a partition can be
   issued asynchronously, which is exactly where SSD parallelism helps.

Tuple-level work is abstracted away (the simulator moves pages); the
*addresses and ordering* of IOs are faithful, which is what determines
how the algorithm exercises the device.

Layout inside the thread's region::

    [ R pages | S pages | partition area: K buckets of capacity
      (r+s)/K each, R and S sub-areas ]
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import IoType, WriteHints
from repro.host.operating_system import ThreadContext
from repro.workloads.threads import GeneratorThread, Op


class GraceHashJoinThread(GeneratorThread):
    """Grace hash join over two relations stored on the device."""

    def __init__(
        self,
        name: str,
        r_pages: int,
        s_pages: int,
        partitions: int = 8,
        region_start: int = 0,
        depth: int = 8,
        use_locality_hints: bool = False,
    ):
        super().__init__(name, depth=depth)
        if r_pages < 1 or s_pages < 1:
            raise ValueError("relations must have at least one page")
        if partitions < 1:
            raise ValueError("partitions must be >= 1")
        self.r_pages = r_pages
        self.s_pages = s_pages
        self.partitions = partitions
        self.region_start = region_start
        #: Attach update-locality hints: one group per partition, so the
        #: SSD can co-locate each partition's pages in the same blocks.
        self.use_locality_hints = use_locality_hints
        # Capacity of each partition's R/S sub-area: partitioning is
        # hash-based and roughly uniform; +1 page of slack per bucket.
        self._r_bucket = -(-r_pages // partitions) + 1
        self._s_bucket = -(-s_pages // partitions) + 1
        self._plan: Optional[list[Op]] = None
        self._cursor = 0
        #: Phase boundaries, exposed for tests: op index where each
        #: phase begins.
        self.phase_offsets: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Address layout
    # ------------------------------------------------------------------
    def _r_base(self) -> int:
        return self.region_start

    def _s_base(self) -> int:
        return self.region_start + self.r_pages

    def _partition_base(self) -> int:
        return self._s_base() + self.s_pages

    def partition_r_lpn(self, partition: int, offset: int) -> int:
        base = self._partition_base() + partition * (self._r_bucket + self._s_bucket)
        return base + offset

    def partition_s_lpn(self, partition: int, offset: int) -> int:
        return self.partition_r_lpn(partition, self._r_bucket) + offset

    def total_pages_needed(self) -> int:
        """Region size the thread requires (for sizing experiments)."""
        return (
            self.r_pages
            + self.s_pages
            + self.partitions * (self._r_bucket + self._s_bucket)
        )

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def _build_plan(self, ctx: ThreadContext) -> list[Op]:
        if self.region_start + self.total_pages_needed() > ctx.logical_pages:
            raise ValueError(
                f"{self.name}: join needs {self.total_pages_needed()} pages, "
                f"logical space has {ctx.logical_pages - self.region_start}"
            )
        plan: list[Op] = []
        rng = ctx.rng("partitioning")
        self.phase_offsets["partition_r"] = len(plan)
        plan.extend(self._partition_pass(rng, self.r_pages, self._r_base(), is_r=True))
        self.phase_offsets["partition_s"] = len(plan)
        plan.extend(self._partition_pass(rng, self.s_pages, self._s_base(), is_r=False))
        self.phase_offsets["probe"] = len(plan)
        plan.extend(self._probe_pass())
        return plan

    def _partition_pass(self, rng, num_pages: int, base: int, is_r: bool) -> list[Op]:
        """Sequential read of a relation, interleaved with partition
        writes as output buckets fill."""
        ops: list[Op] = []
        fill = [0] * self.partitions
        capacity = self._r_bucket if is_r else self._s_bucket
        for page in range(num_pages):
            ops.append((IoType.READ, base + page, None))
            # Each input page yields roughly one output page, landing in
            # a hash-chosen partition (uniform over partitions).
            partition = rng.randrange(self.partitions)
            if fill[partition] >= capacity:
                # Slack exhausted by skew: spill to the least-full bucket.
                partition = min(range(self.partitions), key=lambda p: fill[p])
                if fill[partition] >= capacity:
                    continue
            offset = fill[partition]
            fill[partition] += 1
            if is_r:
                lpn = self.partition_r_lpn(partition, offset)
            else:
                lpn = self.partition_s_lpn(partition, offset)
            ops.append((IoType.WRITE, lpn, self._write_hints(partition)))
        if is_r:
            self._r_fill = list(fill)
        else:
            self._s_fill = list(fill)
        return ops

    def _probe_pass(self) -> list[Op]:
        ops: list[Op] = []
        for partition in range(self.partitions):
            for offset in range(self._r_fill[partition]):
                ops.append((IoType.READ, self.partition_r_lpn(partition, offset), None))
            for offset in range(self._s_fill[partition]):
                ops.append((IoType.READ, self.partition_s_lpn(partition, offset), None))
        return ops

    def _write_hints(self, partition: int) -> Optional[WriteHints]:
        if self.use_locality_hints:
            return {"locality": partition}
        return None

    # ------------------------------------------------------------------
    # GeneratorThread interface
    # ------------------------------------------------------------------
    def next_io(self, ctx: ThreadContext) -> Optional[Op]:
        if self._plan is None:
            self._plan = self._build_plan(ctx)
            self._cursor = 0
        if self._cursor >= len(self._plan):
            return None
        op = self._plan[self._cursor]
        self._cursor += 1
        return op
