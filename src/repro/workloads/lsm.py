"""LSM-tree insertion workload.

The paper's introduction names "LSM-tree insertions" as a canonical
SSD-based algorithm whose interaction with device parallelism is poorly
understood.  This thread models the *IO side* of a leveled LSM tree:

* inserts accumulate in an in-memory memtable (no IO);
* every ``memtable_pages`` inserts the memtable is flushed as a new
  sorted run on level 0 -- a burst of sequential writes;
* when a level holds ``fanout`` runs they are compacted into the next
  level: every input page is read, and the merged output (same total
  size) is written sequentially to the next level's area.

Each level owns a fixed address area sized for ``fanout`` runs of that
level's run size, and runs rotate through slots within the area, so the
workload steadily overwrites -- exactly the update pattern that makes
LSM trees interesting for garbage collection studies.
"""

from __future__ import annotations

from typing import Optional

from repro.core.events import IoType
from repro.host.operating_system import ThreadContext
from repro.workloads.threads import GeneratorThread, Op


class LsmInsertThread(GeneratorThread):
    """Sustained LSM-tree insertions: flushes plus cascading compactions."""

    def __init__(
        self,
        name: str,
        inserts: int,
        memtable_pages: int = 8,
        fanout: int = 4,
        levels: int = 3,
        region_start: int = 0,
        depth: int = 8,
    ):
        super().__init__(name, depth=depth)
        if memtable_pages < 1 or fanout < 2 or levels < 1:
            raise ValueError("invalid LSM shape")
        self.inserts = inserts
        self.memtable_pages = memtable_pages
        self.fanout = fanout
        self.levels = levels
        self.region_start = region_start
        #: Runs currently present per level (run = slot index).
        self._runs: list[list[int]] = [[] for _ in range(levels)]
        #: Next slot to use per level (rotates through fanout+1 slots so
        #: a compaction can write while its inputs still exist).
        self._next_slot = [0] * levels
        self._flushes_done = 0
        self._queue: list[Op] = []
        self.flush_count = 0
        self.compaction_count = 0

    # ------------------------------------------------------------------
    # Address layout
    # ------------------------------------------------------------------
    def run_pages(self, level: int) -> int:
        """Pages per run at ``level`` (level 0 = one memtable)."""
        return self.memtable_pages * (self.fanout ** level)

    def _slots_per_level(self) -> int:
        return self.fanout + 1

    def level_base(self, level: int) -> int:
        base = self.region_start
        for lower in range(level):
            base += self._slots_per_level() * self.run_pages(lower)
        return base

    def run_base(self, level: int, slot: int) -> int:
        return self.level_base(level) + slot * self.run_pages(level)

    def total_pages_needed(self) -> int:
        return self.level_base(self.levels)

    # ------------------------------------------------------------------
    # LSM mechanics
    # ------------------------------------------------------------------
    def _flush_memtable(self) -> None:
        self.flush_count += 1
        self._emit_run_write(level=0)
        self._cascade()

    def _emit_run_write(self, level: int) -> int:
        """Queue the sequential writes of a new run; returns its slot."""
        slot = self._next_slot[level]
        self._next_slot[level] = (slot + 1) % self._slots_per_level()
        base = self.run_base(level, slot)
        for offset in range(self.run_pages(level)):
            self._queue.append((IoType.WRITE, base + offset, None))
        self._runs[level].append(slot)
        return slot

    def _cascade(self) -> None:
        for level in range(self.levels - 1):
            if len(self._runs[level]) < self.fanout:
                break
            self.compaction_count += 1
            # Read every page of every input run (merge inputs).
            for slot in self._runs[level]:
                base = self.run_base(level, slot)
                for offset in range(self.run_pages(level)):
                    self._queue.append((IoType.READ, base + offset, None))
            self._runs[level].clear()
            self._emit_run_write(level + 1)
        # The last level absorbs runs without further compaction; cap it
        # so the address area never overflows.
        last = self.levels - 1
        if len(self._runs[last]) > self.fanout:
            self._runs[last] = self._runs[last][-self.fanout :]

    # ------------------------------------------------------------------
    # GeneratorThread interface
    # ------------------------------------------------------------------
    def next_io(self, ctx: ThreadContext) -> Optional[Op]:
        if self.region_start + self.total_pages_needed() > ctx.logical_pages:
            raise ValueError(
                f"{self.name}: LSM layout needs {self.total_pages_needed()} pages, "
                f"logical space has {ctx.logical_pages - self.region_start}"
            )
        while not self._queue:
            if self._flushes_done * self.memtable_pages >= self.inserts:
                return None
            self._flushes_done += 1
            self._flush_memtable()
        return self._queue.pop(0)
