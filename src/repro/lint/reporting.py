"""Output formatting for simlint: text, JSON, and SARIF 2.1.0 reports."""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.lint.framework import Rule, Violation


def format_text(
    violations: Iterable[Violation], files_checked: int, suppressed: int
) -> str:
    """The human-readable report: one ``path:line:col`` line per finding."""
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.rule_id} ({v.rule_name}) {v.message}"
        for v in violations
    ]
    count = len(lines)
    noun = "violation" if count == 1 else "violations"
    summary = f"simlint: {count} {noun} in {files_checked} files"
    if suppressed:
        summary += f" ({suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def format_json(
    violations: Iterable[Violation], files_checked: int, suppressed: int
) -> str:
    """Machine-readable report (stable schema, one object)."""
    materialised = list(violations)
    payload = {
        "violations": [v.as_dict() for v in materialised],
        "files_checked": files_checked,
        "suppressed": suppressed,
        "count": len(materialised),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def format_sarif(violations: Iterable[Violation], rules: Sequence[Rule]) -> str:
    """SARIF 2.1.0 log (one run), as consumed by
    ``github/codeql-action/upload-sarif`` to annotate PR diffs."""
    rule_descriptors = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.description},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in rules
    ]
    rule_index = {rule.id: index for index, rule in enumerate(rules)}
    results = []
    for violation in violations:
        result: dict[str, object] = {
            "ruleId": violation.rule_id,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": violation.line,
                            "startColumn": violation.col,
                        },
                    }
                }
            ],
        }
        if violation.rule_id in rule_index:
            result["ruleIndex"] = rule_index[violation.rule_id]
        if violation.fingerprint:
            result["partialFingerprints"] = {
                "simlint/v1": violation.fingerprint
            }
        results.append(result)
    log = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "rules": rule_descriptors,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
