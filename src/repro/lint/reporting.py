"""Output formatting for simlint: text and JSON reports."""

from __future__ import annotations

import json
from typing import Iterable

from repro.lint.framework import Violation


def format_text(
    violations: Iterable[Violation], files_checked: int, suppressed: int
) -> str:
    """The human-readable report: one ``path:line:col`` line per finding."""
    lines = [
        f"{v.path}:{v.line}:{v.col}: {v.rule_id} ({v.rule_name}) {v.message}"
        for v in violations
    ]
    count = len(lines)
    noun = "violation" if count == 1 else "violations"
    summary = f"simlint: {count} {noun} in {files_checked} files"
    if suppressed:
        summary += f" ({suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def format_json(
    violations: Iterable[Violation], files_checked: int, suppressed: int
) -> str:
    """Machine-readable report (stable schema, one object)."""
    materialised = list(violations)
    payload = {
        "violations": [v.as_dict() for v in materialised],
        "files_checked": files_checked,
        "suppressed": suppressed,
        "count": len(materialised),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
