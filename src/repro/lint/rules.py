"""The simlint rule set (SIM001..SIM009).

Each rule targets a concrete way a change can silently break the
simulator's determinism or its virtual-time model:

========  ======================  ==============================================
id        name                    hazard
========  ======================  ==============================================
SIM001    no-stdlib-random        unseeded stdlib RNG bypasses the stream
                                  registry in :mod:`repro.core.rng`
SIM002    no-wallclock            wall-clock reads leak host time into a
                                  virtual-time system
SIM003    ordered-iteration       iterating a set (or bare dict view) on a
                                  scheduling path makes event order depend on
                                  hash seeds / insertion history
SIM004    no-unpicklable-runspec  lambdas in ``RunSpec``/``Parameter`` break
                                  the process-pool sweep executor
SIM005    discarded-handle        ``schedule()`` returns an EventHandle; if it
                                  is discarded the cheaper ``post()`` belongs
SIM006    no-mutable-module-state module-level mutable containers persist
                                  across Simulations in one process
SIM007    no-float-time-literal   float delays break the integer-nanosecond
                                  virtual clock
SIM008    no-environ-in-sim       environment reads make runs machine-dependent
SIM009    no-id-ordering          ``id()``/``hash()`` as ordering keys vary
                                  between processes
========  ======================  ==============================================

Rules here are intentionally shallow: one ``ast`` pass, no type
inference beyond the same-file container-kind table in
:class:`repro.lint.framework.LintContext`.  False positives are handled
with ``# simlint: disable=SIMxxx -- why`` at the site.  The
cross-module dataflow rules (SIM010..SIM012) live in
:mod:`repro.lint.rules_dataflow`; this module composes the registry.
"""

from __future__ import annotations

import ast
from types import MappingProxyType
from typing import Iterator, Optional

from repro.lint.framework import LintContext, Rule, Violation
from repro.lint.rules_dataflow import PROJECT_RULES

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _call_name(node: ast.Call) -> Optional[str]:
    """The trailing name of the called object: ``a.b.c()`` -> ``c``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _dotted(node: ast.expr) -> Optional[str]:
    """``time.monotonic`` -> ``"time.monotonic"``; None when not a plain
    name/attribute chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# SIM001
# ---------------------------------------------------------------------------

class NoStdlibRandom(Rule):
    id = "SIM001"
    name = "no-stdlib-random"
    description = (
        "import of the stdlib `random` module (or numpy.random); use a named "
        "stream from repro.core.rng so draws are seeded and reproducible"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root == "random" or alias.name == "numpy.random":
                        yield self.violation(
                            context,
                            node,
                            f"import of {alias.name!r}: draw from a named "
                            "RandomSource stream instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "random" or module.startswith("random.") or module == "numpy.random":
                    yield self.violation(
                        context,
                        node,
                        f"import from {module!r}: draw from a named "
                        "RandomSource stream instead",
                    )


# ---------------------------------------------------------------------------
# SIM002
# ---------------------------------------------------------------------------

_WALLCLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "date.today",
    }
)

_WALLCLOCK_BARE = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
    }
)


class NoWallclock(Rule):
    id = "SIM002"
    name = "no-wallclock"
    description = (
        "wall-clock read (time.time, datetime.now, ...); the simulator runs "
        "in virtual time -- use sim.now"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        wallclock_imports: set[str] = set()
        for node in ast.walk(context.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _WALLCLOCK_BARE:
                        wallclock_imports.add(alias.asname or alias.name)
                        yield self.violation(
                            context,
                            node,
                            f"importing time.{alias.name}: virtual-time code "
                            "must use sim.now",
                        )
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = _dotted(node.func)
            if dotted in _WALLCLOCK_CALLS:
                yield self.violation(
                    context, node, f"call to {dotted}(): use sim.now (virtual time)"
                )
            elif isinstance(node.func, ast.Name) and node.func.id in wallclock_imports:
                yield self.violation(
                    context,
                    node,
                    f"call to {node.func.id}(): use sim.now (virtual time)",
                )


# ---------------------------------------------------------------------------
# SIM003
# ---------------------------------------------------------------------------

#: Direct wrappers whose argument order still reaches the loop body.
_ORDER_PRESERVING = frozenset({"enumerate", "reversed", "list", "tuple", "iter"})
#: Reducers whose result does not depend on iteration order.
_ORDER_INSENSITIVE = frozenset(
    {"any", "all", "sum", "min", "max", "len", "sorted", "set", "frozenset", "dict", "Counter"}
)
_DICT_VIEWS = frozenset({"keys", "values", "items"})


class OrderedIteration(Rule):
    id = "SIM003"
    name = "ordered-iteration"
    description = (
        "iteration over a set or dict on a scheduling path; wrap in sorted() "
        "or justify with a suppression (dict insertion order must be argued)"
    )

    def _classify(self, context: LintContext, expr: ast.expr) -> Optional[str]:
        """Return a description of the unordered iterable, or None if safe."""
        # Unwrap order-preserving wrappers; sorted() anywhere makes it safe.
        while isinstance(expr, ast.Call):
            name = _call_name(expr)
            if name == "sorted":
                return None
            if name in _ORDER_PRESERVING and expr.args:
                expr = expr.args[0]
                continue
            break
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            if name in ("set", "frozenset"):
                return "a set built in place"
            if (
                name in _DICT_VIEWS
                and isinstance(expr.func, ast.Attribute)
                and not expr.args
            ):
                base_kind = context.container_kind(expr.func.value)
                if base_kind == "set":
                    return "a set"  # pragma: no cover - sets have no views
                return f"a dict .{name}() view"
            return None
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "a set literal"
        kind = context.container_kind(expr)
        if kind == "set":
            return "a set"
        if kind == "dict":
            return "a dict"
        return None

    def _in_order_insensitive_reducer(
        self, context: LintContext, comp: ast.AST
    ) -> bool:
        parent = context.parent(comp)
        return (
            isinstance(parent, ast.Call)
            and _call_name(parent) in _ORDER_INSENSITIVE
            and comp in parent.args
        )

    def _materialization_is_covered(
        self, context: LintContext, node: ast.Call
    ) -> bool:
        """Whether a ``list()``/``tuple()`` materialization is either safe
        (feeding an order-insensitive reducer / ``sorted()``) or already
        flagged by the for-loop/comprehension branches."""
        current: ast.AST = node
        while True:
            parent = context.parent(current)
            if isinstance(parent, ast.Call):
                name = _call_name(parent)
                if name == "sorted" or name in _ORDER_INSENSITIVE:
                    return True
                if name in _ORDER_PRESERVING:
                    current = parent
                    continue
                return False
            if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is current:
                return True  # the for-loop branch flags this site
            if isinstance(parent, ast.comprehension) and parent.iter is current:
                return True  # the comprehension branch flags this site
            return False

    def check(self, context: LintContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                described = self._classify(context, node.iter)
                if described is not None:
                    yield self.violation(
                        context,
                        node,
                        f"for-loop iterates {described}; event order must not "
                        "depend on hash/insertion order -- wrap in sorted()",
                    )
            elif isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.DictComp)):
                # ast.SetComp is deliberately absent: the comprehension's
                # own result is a set, so its iteration order cannot leak.
                if self._in_order_insensitive_reducer(context, node):
                    continue
                for generator in node.generators:
                    described = self._classify(context, generator.iter)
                    if described is not None:
                        yield self.violation(
                            context,
                            node,
                            f"comprehension iterates {described}; wrap in "
                            "sorted() (or reduce with an order-insensitive "
                            "builtin)",
                        )
            elif isinstance(node, ast.Call) and _call_name(node) in ("list", "tuple"):
                # Standalone materialization: ``pending = list(d.keys())``
                # freezes hash/insertion order into a sequence whose order
                # then leaks wherever the list goes.
                if not node.args:
                    continue
                described = self._classify(context, node)
                if described is None:
                    continue
                if self._materialization_is_covered(context, node):
                    continue
                yield self.violation(
                    context,
                    node,
                    f"{_call_name(node)}() materializes {described} into an "
                    "ordered sequence; wrap the iterable in sorted() so the "
                    "order is deterministic",
                )


# ---------------------------------------------------------------------------
# SIM004
# ---------------------------------------------------------------------------

_SPEC_CONSTRUCTORS = frozenset({"RunSpec", "Parameter"})


class NoUnpicklableRunspec(Rule):
    id = "SIM004"
    name = "no-unpicklable-runspec"
    description = (
        "lambda passed to RunSpec/Parameter; sweep workers pickle specs, so "
        "use a module-level function"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.Call) and _call_name(node) in _SPEC_CONSTRUCTORS):
                continue
            ctor = _call_name(node)
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(arg, ast.Lambda):
                    yield self.violation(
                        context,
                        arg,
                        f"lambda passed to {ctor}(): process-pool sweeps "
                        "pickle the spec -- use a module-level function",
                    )


# ---------------------------------------------------------------------------
# SIM005
# ---------------------------------------------------------------------------

class DiscardedHandle(Rule):
    id = "SIM005"
    name = "discarded-handle"
    description = (
        "schedule()/schedule_at() result discarded; if the EventHandle is "
        "never used, post()/post_at() is the fire-and-forget idiom"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.Expr) and isinstance(node.value, ast.Call)):
                continue
            call = node.value
            name = _call_name(call)
            if name not in ("schedule", "schedule_at"):
                continue
            replacement = "post()" if name == "schedule" else "post_at()"
            yield self.violation(
                context,
                call,
                f"{name}() returns an EventHandle that is discarded here; "
                f"use {replacement} (cheaper, no cancellation bookkeeping)",
            )


# ---------------------------------------------------------------------------
# SIM006
# ---------------------------------------------------------------------------

_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "defaultdict", "deque", "count", "OrderedDict", "Counter"})


class NoMutableModuleState(Rule):
    id = "SIM006"
    name = "no-mutable-module-state"
    description = (
        "module-level mutable container; state that survives across "
        "Simulation instances breaks run isolation -- use a tuple/"
        "MappingProxyType or move it onto an object"
    )

    def _is_mutable_value(self, value: ast.expr) -> Optional[str]:
        if isinstance(value, (ast.List, ast.ListComp)):
            return "list"
        if isinstance(value, (ast.Dict, ast.DictComp)):
            return "dict"
        if isinstance(value, (ast.Set, ast.SetComp)):
            return "set"
        if isinstance(value, ast.Call):
            name = _call_name(value)
            if name in _MUTABLE_FACTORIES:
                return name
        return None

    def check(self, context: LintContext) -> Iterator[Violation]:
        for stmt in context.tree.body:
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            else:
                continue
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            # Dunders (__all__ and friends) are interpreter protocol, not state.
            names = [n for n in names if not (n.startswith("__") and n.endswith("__"))]
            if not names:
                continue
            kind = self._is_mutable_value(value)
            if kind is None:
                continue
            yield self.violation(
                context,
                stmt,
                f"module-level {kind} {', '.join(names)!s} is mutable shared "
                "state; use a tuple/frozenset/MappingProxyType or move it "
                "into a class",
            )


# ---------------------------------------------------------------------------
# SIM007
# ---------------------------------------------------------------------------

_TIME_ARG_CALLS = frozenset({"schedule", "schedule_at", "post", "post_at"})


class NoFloatTimeLiteral(Rule):
    id = "SIM007"
    name = "no-float-time-literal"
    description = (
        "float literal passed as a delay/deadline to the event engine; the "
        "virtual clock is integer nanoseconds -- use repro.core.units"
    )

    def _is_float_literal(self, expr: ast.expr) -> bool:
        if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, (ast.USub, ast.UAdd)):
            expr = expr.operand
        return isinstance(expr, ast.Constant) and isinstance(expr.value, float)

    def check(self, context: LintContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.Call) and _call_name(node) in _TIME_ARG_CALLS):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if self._is_float_literal(first):
                yield self.violation(
                    context,
                    first,
                    f"float time literal in {_call_name(node)}(); the clock "
                    "is integer ns -- write units.microseconds(...) or an "
                    "int literal",
                )


# ---------------------------------------------------------------------------
# SIM008
# ---------------------------------------------------------------------------

class NoEnvironInSim(Rule):
    id = "SIM008"
    name = "no-environ-in-sim"
    description = (
        "environment variable read inside the simulator; config must flow "
        "through SimulationConfig so runs are machine-independent"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            dotted = _dotted(node) if isinstance(node, (ast.Attribute, ast.Name)) else None
            if dotted == "os.environ":
                # Only flag the outermost Attribute, not its Name child.
                parent = context.parent(node)
                if isinstance(parent, ast.Attribute) and _dotted(parent) == "os.environ":
                    continue
                yield self.violation(
                    context, node, "os.environ access: route through SimulationConfig"
                )
            elif isinstance(node, ast.Call):
                name = _dotted(node.func)
                if name in ("os.getenv", "getenv"):
                    yield self.violation(
                        context, node, f"{name}() read: route through SimulationConfig"
                    )


# ---------------------------------------------------------------------------
# SIM009
# ---------------------------------------------------------------------------

_SORTING_CALLS = frozenset({"sorted", "min", "max"})
_UNSTABLE_KEYS = frozenset({"id", "hash"})


class NoIdOrdering(Rule):
    id = "SIM009"
    name = "no-id-ordering"
    description = (
        "id()/hash() used as an ordering key; object addresses and hash "
        "seeds vary between processes -- order by a stable field"
    )

    def check(self, context: LintContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not (isinstance(node, ast.Call) and _call_name(node) in _SORTING_CALLS):
                continue
            for keyword in node.keywords:
                if keyword.arg != "key":
                    continue
                value = keyword.value
                # key=id / key=hash directly
                if isinstance(value, ast.Name) and value.id in _UNSTABLE_KEYS:
                    yield self.violation(
                        context,
                        value,
                        f"{_call_name(node)}(key={value.id}) orders by "
                        "process-specific values; use a stable field",
                    )
                    continue
                # key=lambda x: id(x) or any id()/hash() call inside the key
                for inner in ast.walk(value):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Name)
                        and inner.func.id in _UNSTABLE_KEYS
                    ):
                        yield self.violation(
                            context,
                            inner,
                            f"{inner.func.id}() inside a sort key is process-"
                            "specific; use a stable field",
                        )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

ALL_RULES: tuple[Rule, ...] = (
    NoStdlibRandom(),
    NoWallclock(),
    OrderedIteration(),
    NoUnpicklableRunspec(),
    DiscardedHandle(),
    NoMutableModuleState(),
    NoFloatTimeLiteral(),
    NoEnvironInSim(),
    NoIdOrdering(),
) + PROJECT_RULES

_RULES_BY_ID = MappingProxyType({rule.id: rule for rule in ALL_RULES})


def rule_by_id(rule_id: str) -> Rule:
    try:
        return _RULES_BY_ID[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown rule {rule_id!r}; known: {', '.join(sorted(_RULES_BY_ID))}"
        ) from None
