"""Address-domain knowledge for the cross-module dataflow rules.

PR 7 flattened every piece of FTL/flash state onto raw ``int64`` arrays,
so a logical page number (LPN), a global physical page number (PPN), a
global block id (PBN) and a flat LUN index are now indistinguishable
Python ints.  This module is the *data* that teaches the dataflow engine
(:mod:`repro.lint.dataflow`) to tell them apart again:

* the :class:`Domain` lattice and the ``Lpn``/``Ppn``/``Pbn``/
  ``LunIndex`` annotation aliases (declared in
  :mod:`repro.hardware.addresses`) that seed taint,
* which array attributes of the state classes are indexed by which
  domain (``FlashState.erase_count`` is per-block, ``page_lpn`` is
  per-page, ``MappingTable.table`` is per-LPN),
* which attributes/accessors hand out live numpy views of device state
  (the SIM012 sources), and which ndarray methods mutate in place.

Everything here is deliberately declarative -- plain mappings the rule
documentation in ``docs/GUIDE.md`` can quote verbatim.  The engine keys
class tables on the *class name* (not the import path) so the fixture
suites can exercise the rules with self-contained stand-in classes.
"""

from __future__ import annotations

import enum
from types import MappingProxyType
from typing import Mapping, Optional


class Domain(enum.Enum):
    """One address space of the simulator.

    The enum values are the annotation aliases: annotating a parameter
    or return type with ``Lpn``/``Ppn``/``Pbn``/``LunIndex`` assigns the
    value that flows through it to the corresponding domain.
    """

    LPN = "Lpn"  #: logical page number (host address space)
    PPN = "Ppn"  #: global physical page number (device address space)
    PBN = "Pbn"  #: global block id (``lun_index * blocks_per_lun + block``)
    LUN_INDEX = "LunIndex"  #: flat LUN index in channel-major order

    def __str__(self) -> str:
        return self.value


#: Annotation alias -> domain.  Matched by *name* so neither the
#: simulator's layering (core cannot import hardware) nor test fixtures
#: need to import the canonical aliases from
#: :mod:`repro.hardware.addresses`.
DOMAIN_BY_ALIAS: Mapping[str, Domain] = MappingProxyType(
    {domain.value: domain for domain in Domain}
)

_PER_BLOCK_ARRAYS = (
    "write_pointer",
    "erase_count",
    "last_erase_ns",
    "last_write_ns",
    "inflight_reads",
    "live_count",
    "dead_count",
    "bad",
    "block_free",
)
_PER_PAGE_ARRAYS = ("page_lpn", "page_version")
_PAGE_BITMAPS = ("programmed", "valid", "torn", "has_content")


def _with_memoryviews(names: tuple[str, ...]) -> tuple[str, ...]:
    """Each array attribute plus its cached-``memoryview`` twin."""
    return names + tuple(f"mv_{name}" for name in names)


#: class name -> array attribute -> the domain its *index* must carry.
#: An index expression with a different known domain is a SIM010
#: violation (e.g. ``state.erase_count[ppn]``).  Word-granular bitmaps
#: (``programmed``/``valid``/...) are indexed by packed word offsets,
#: which carry no domain, so they appear only in the view tables below.
ARRAY_INDEX_DOMAINS: Mapping[str, Mapping[str, Domain]] = MappingProxyType(
    {
        "FlashState": MappingProxyType(
            {
                name: (Domain.PPN if base in _PER_PAGE_ARRAYS else Domain.PBN)
                for base in _PER_PAGE_ARRAYS + _PER_BLOCK_ARRAYS
                for name in (base, f"mv_{base}")
            }
        ),
        "MappingTable": MappingProxyType({"table": Domain.LPN, "_mv": Domain.LPN}),
        "VersionTable": MappingProxyType({"table": Domain.LPN, "_mv": Domain.LPN}),
    }
)

#: class name -> array attribute -> the domain of the *elements* read
#: out of it (``page_lpn[ppn]`` yields an LPN; ``MappingTable.table``
#: holds ``ppn + 1``, still PPN-domain under the +-literal rule).
ARRAY_ELEMENT_DOMAINS: Mapping[str, Mapping[str, Domain]] = MappingProxyType(
    {
        "FlashState": MappingProxyType(
            {"page_lpn": Domain.LPN, "mv_page_lpn": Domain.LPN}
        ),
        "MappingTable": MappingProxyType({"table": Domain.PPN, "_mv": Domain.PPN}),
        "VersionTable": MappingProxyType({}),
    }
)

#: class name -> attributes that *are* raw device-state arrays.  Reading
#: them is fine; slicing them yields a live view (SIM012 taint) and
#: writing through them outside the hardware layer bypasses the mutator
#: API (SIM012 violation).
STATE_ARRAY_ATTRS: Mapping[str, frozenset[str]] = MappingProxyType(
    {
        "FlashState": frozenset(
            _with_memoryviews(_PER_PAGE_ARRAYS + _PER_BLOCK_ARRAYS + _PAGE_BITMAPS)
        ),
        "MappingTable": frozenset({"table", "_mv"}),
        "VersionTable": frozenset({"table", "_mv"}),
    }
)

#: Accessor methods that return live views of device state.  The value
#: says where the viewed buffer comes from: ``"argument"`` (the view
#: aliases the first argument, so only state-owned arguments taint the
#: result -- ``block_words(np.zeros_like(...))`` is a fresh local) or
#: ``"receiver"`` (the view aliases the receiver's own state).
VIEW_RETURNING_METHODS: Mapping[str, Mapping[str, str]] = MappingProxyType(
    {
        "FlashState": MappingProxyType({"block_words": "argument"}),
    }
)

#: ndarray methods that return another view of the same buffer: calling
#: them on a tainted view keeps the taint.
VIEW_PROPAGATING_METHODS: frozenset[str] = frozenset(
    {"reshape", "view", "ravel", "transpose", "swapaxes", "squeeze"}
)

#: ndarray methods that mutate the buffer in place: calling them on a
#: tainted view is a SIM012 violation.
MUTATING_ARRAY_METHODS: frozenset[str] = frozenset(
    {"fill", "sort", "partition", "put", "resize", "byteswap"}
)

#: Methods whose *iteration elements* carry a domain (``for lpn in
#: table.mapped_lpns()``), keyed by class name.
ITER_ELEMENT_DOMAINS: Mapping[str, Mapping[str, Domain]] = MappingProxyType(
    {"MappingTable": MappingProxyType({"mapped_lpns": Domain.LPN})}
)

#: Event-engine entry points: a function object passed to one of these
#: becomes a root of the scheduling call graph (SIM011).
SCHEDULING_CALL_NAMES: frozenset[str] = frozenset(
    {"post", "post_at", "schedule", "schedule_at"}
)

#: Container-mutator method names: calling one of these on a
#: module-level name is a module-state write (SIM011).
CONTAINER_MUTATOR_METHODS: frozenset[str] = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "pop",
        "popitem",
        "popleft",
        "clear",
        "extend",
        "extendleft",
        "insert",
        "remove",
        "discard",
        "setdefault",
    }
)


def domain_of_alias(name: Optional[str]) -> Optional[Domain]:
    """The domain an annotation alias names, or None."""
    if name is None:
        return None
    return DOMAIN_BY_ALIAS.get(name)
