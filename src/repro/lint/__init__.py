"""simlint: simulator-invariant static analysis for the repro codebase.

A deterministic discrete-event simulator has failure modes no generic
linter looks for: a stray ``random.random()`` that bypasses the seeded
stream registry, a ``time.time()`` that leaks wall-clock into virtual
time, iteration over a ``set`` on a scheduling path whose order feeds
the event calendar.  Each of those compiles, runs, and silently breaks
bit-identical reproducibility -- the property the whole framework is
built on (PAPER Section 2.1).

``repro.lint`` is an AST-based checker for exactly those hazards.
Rules SIM001-SIM009 are single-file pattern rules; SIM010-SIM012 run a
cross-module dataflow analysis (project-wide symbol table, call graph,
address-domain taint tracking -- see :mod:`repro.lint.dataflow`)::

    python -m repro.lint src/            # human-readable report
    python -m repro.lint --format json src/
    python -m repro.lint --format sarif src/
    python -m repro.lint baseline src/   # snapshot findings (ratchet)
    python -m repro.lint --list-rules

Rules carry stable ``SIMxxx`` identifiers (see :mod:`repro.lint.rules`)
and individual findings can be suppressed in the source with a trailing
comment::

    import random  # simlint: disable=SIM001 -- sanctioned wrapper module

Exit codes: 0 clean, 1 violations found, 2 usage/crash.
"""

from repro.lint.cli import lint_paths, main
from repro.lint.framework import LintContext, ProjectRule, Rule, Violation
from repro.lint.rules import ALL_RULES, rule_by_id

__all__ = [
    "ALL_RULES",
    "LintContext",
    "ProjectRule",
    "Rule",
    "Violation",
    "lint_paths",
    "main",
    "rule_by_id",
]
