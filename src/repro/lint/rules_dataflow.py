"""The cross-module dataflow rules (SIM010..SIM012).

========  ========================  ============================================
id        name                      hazard
========  ========================  ============================================
SIM010    address-domain-confusion  an LPN/PPN/PBN/LUN-index int crossing into
                                    the wrong address space (wrong argument,
                                    wrong array index, wrong return) corrupts
                                    the device silently -- all four are plain
                                    ``int64`` since the PR-7 flattening
SIM011    shard-impure-function     a function reachable from the event-
                                    scheduling call graph that writes module-
                                    level state cannot be sharded across
                                    processes by channel/LUN domain
SIM012    leaked-array-view         mutating a live numpy view of device state
                                    (instead of the owning class's mutator API)
                                    bypasses bit-identity accounting
========  ========================  ============================================

These are :class:`repro.lint.framework.ProjectRule` subclasses: they run
once per lint invocation against the
:class:`repro.lint.dataflow.ProjectAnalysis` built over every in-scope
file, and their findings flow through the same suppression/scoping
machinery as the single-file rules.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.config import SIM011_ALLOWED_IMPURE
from repro.lint.dataflow import ProjectAnalysis
from repro.lint.framework import ProjectRule, Violation


class AddressDomainConfusion(ProjectRule):
    id = "SIM010"
    name = "address-domain-confusion"
    description = (
        "a value from one address domain (Lpn/Ppn/Pbn/LunIndex) used where "
        "another is declared; annotate with the hardware.addresses aliases "
        "and convert explicitly"
    )

    def check_project(self, analysis: ProjectAnalysis) -> Iterator[Violation]:
        for qualname in sorted(analysis.summaries):
            summary = analysis.summaries[qualname]
            for finding in summary.domain_findings:
                yield self.violation_at(
                    finding.path, finding.line, finding.col, finding.message
                )


class ShardImpureFunction(ProjectRule):
    id = "SIM011"
    name = "shard-impure-function"
    description = (
        "function on the event-scheduling call graph writes module-level "
        "state; sharding the engine by channel/LUN domain requires these "
        "paths to be pure (allowlist: config.SIM011_ALLOWED_IMPURE)"
    )

    def check_project(self, analysis: ProjectAnalysis) -> Iterator[Violation]:
        reachable = analysis.scheduling_reachable()
        for qualname in sorted(reachable):
            if qualname in SIM011_ALLOWED_IMPURE:
                continue
            summary = analysis.summaries.get(qualname)
            if summary is None:
                continue
            for finding, description in summary.module_writes:
                yield self.violation_at(
                    finding.path,
                    finding.line,
                    finding.col,
                    f"{qualname} is {reachable[qualname]} and {finding.message}"
                    f" ({description}); scheduling-path code must not touch "
                    "module state",
                )


class LeakedArrayView(ProjectRule):
    id = "SIM012"
    name = "leaked-array-view"
    description = (
        "in-place mutation of a numpy view of device state (FlashState "
        "arrays, bitmap words, mapping tables); route writes through the "
        "owning class's mutator API"
    )

    def check_project(self, analysis: ProjectAnalysis) -> Iterator[Violation]:
        for qualname in sorted(analysis.summaries):
            summary = analysis.summaries[qualname]
            for finding in summary.view_findings:
                yield self.violation_at(
                    finding.path, finding.line, finding.col, finding.message
                )


PROJECT_RULES: tuple[ProjectRule, ...] = (
    AddressDomainConfusion(),
    ShardImpureFunction(),
    LeakedArrayView(),
)
