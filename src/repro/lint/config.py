"""Path scoping: which rules apply to which files.

Two mechanisms, both matched against the normalised forward-slash path:

* :data:`GLOBAL_EXEMPT_FRAGMENTS` -- files no rule applies to (tests,
  benchmarks, examples, docs: they run outside the simulator and may
  use wall clocks, ad-hoc randomness, whatever they like).
* per-rule scoping -- a rule either applies everywhere except listed
  exemptions (:data:`RULE_EXEMPT_FRAGMENTS`) or *only* under listed
  fragments (:data:`RULE_ONLY_FRAGMENTS`).

The scoping is deliberately data, not code, so the rule table in
``docs/GUIDE.md`` can state it verbatim.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

from repro.lint.framework import Rule

#: No rule fires in these trees: they are host-side tooling, not simulator.
GLOBAL_EXEMPT_FRAGMENTS: tuple[str, ...] = (
    "/tests/",
    "tests/",
    "/benchmarks/",
    "benchmarks/",
    "/examples/",
    "examples/",
    "/docs/",
    "docs/",
)

#: Rules that apply everywhere *except* under these fragments.
RULE_EXEMPT_FRAGMENTS: Mapping[str, tuple[str, ...]] = MappingProxyType({
    # core/rng.py is the sanctioned wrapper; it carries an inline
    # suppression anyway, this keeps the intent in one visible place.
    "SIM001": (),
    # The sweep executor runs on the host side of the process boundary:
    # wall-clock timeouts and progress reporting are its job.  The
    # experiment service is entirely host-side (job timing, dashboard
    # polling).  The lint CLI times its own rules (--timings).
    "SIM002": ("core/parallel.py", "service/", "lint/"),
    "SIM004": (),
    "SIM005": (),
    "SIM006": (),
    "SIM007": (),
    # Host-side entry points may read the environment; the simulator
    # proper must not.  The parallel executor sizes its worker pool;
    # the service locates its cache directory ($REPRO_CACHE_DIR).
    "SIM008": ("core/parallel.py", "analysis/", "service/"),
    "SIM009": (),
    "SIM010": (),
    "SIM011": (),
    # The hardware layer *is* the mutator API: FlashState/MappingTable/
    # VersionTable methods legitimately write their own arrays.
    "SIM012": ("hardware/",),
})

#: Rules that apply *only* under these fragments (scheduling paths).
RULE_ONLY_FRAGMENTS: Mapping[str, tuple[str, ...]] = MappingProxyType({
    "SIM003": ("controller/", "host/", "core/engine.py"),
})


#: SIM011 allowlist: fully-qualified functions that sit on the event-
#: scheduling call graph and are *known* to touch module state for a
#: reviewed reason.  Keep each entry justified -- the future sharded
#: engine treats everything outside this set as a purity guarantee.
SIM011_ALLOWED_IMPURE: frozenset[str] = frozenset()


def path_is_globally_exempt(path: str) -> bool:
    normalised = path.replace("\\", "/")
    return any(fragment in normalised for fragment in GLOBAL_EXEMPT_FRAGMENTS)


def rule_applies(rule: Rule, path: str) -> bool:
    """Whether ``rule`` is in scope for ``path`` (already non-exempt)."""
    normalised = path.replace("\\", "/")
    only = RULE_ONLY_FRAGMENTS.get(rule.id)
    if only is not None:
        return any(fragment in normalised for fragment in only)
    exempt = RULE_EXEMPT_FRAGMENTS.get(rule.id, ())
    return not any(fragment in normalised for fragment in exempt)
