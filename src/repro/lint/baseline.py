"""The findings baseline / ratchet.

``python -m repro.lint baseline src/`` snapshots the current findings;
subsequent runs with ``--baseline`` report only findings *not* in the
snapshot.  That lets a new rule land before every legacy hotspot is
annotated: the debt is frozen, and CI fails the moment anyone adds to
it.

Fingerprints are deliberately line-number independent -- ``sha256(rule
id | path | stripped source line text | message)`` truncated to 16 hex
chars -- so inserting code above a baselined finding does not resurrect
it.  The snapshot itself is checksummed; a hand-edited baseline fails
loudly instead of silently hiding findings.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from typing import Iterable, Mapping, Optional, Sequence

from repro.lint.framework import Violation

#: Default snapshot location, relative to the invocation directory.
DEFAULT_BASELINE_PATH = ".simlint-baseline.json"

_FORMAT_VERSION = 1


class BaselineError(Exception):
    """A baseline file is unreadable, corrupt, or hand-tampered."""


def compute_fingerprint(violation: Violation, line_text: str) -> str:
    """Line-number-independent identity of one finding."""
    payload = "|".join(
        (violation.rule_id, violation.path, line_text.strip(), violation.message)
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def attach_fingerprints(
    violations: Iterable[Violation], lines_by_path: Mapping[str, Sequence[str]]
) -> list[Violation]:
    """Return the violations with their ``fingerprint`` field filled in."""
    out: list[Violation] = []
    for violation in violations:
        lines = lines_by_path.get(violation.path, ())
        line_text = (
            lines[violation.line - 1] if 0 < violation.line <= len(lines) else ""
        )
        out.append(
            replace(violation, fingerprint=compute_fingerprint(violation, line_text))
        )
    return out


def _checksum(findings: dict[str, dict[str, object]]) -> str:
    canonical = json.dumps(findings, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def write_baseline(path: str, violations: Iterable[Violation]) -> int:
    """Snapshot ``violations``; returns the number of entries written."""
    findings: dict[str, dict[str, object]] = {}
    for violation in violations:
        if not violation.fingerprint:
            raise BaselineError(
                f"violation at {violation.path}:{violation.line} has no "
                "fingerprint; baseline entries must be fingerprinted"
            )
        findings[violation.fingerprint] = {
            "rule": violation.rule_id,
            "path": violation.path,
            "message": violation.message,
        }
    payload = {
        "version": _FORMAT_VERSION,
        "checksum": _checksum(findings),
        "findings": findings,
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return len(findings)


def load_baseline(path: str) -> frozenset[str]:
    """The fingerprints a baseline hides.  Raises :class:`BaselineError`
    on a missing/corrupt/tampered file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
        raise BaselineError(
            f"baseline {path!r} has unsupported format "
            f"(expected version {_FORMAT_VERSION})"
        )
    findings = payload.get("findings")
    if not isinstance(findings, dict):
        raise BaselineError(f"baseline {path!r} is missing its findings table")
    if payload.get("checksum") != _checksum(findings):
        raise BaselineError(
            f"baseline {path!r} fails its checksum; regenerate it with "
            "`python -m repro.lint baseline` instead of editing by hand"
        )
    return frozenset(findings)


def split_by_baseline(
    violations: Sequence[Violation], baselined: Optional[frozenset[str]]
) -> tuple[list[Violation], int]:
    """(new findings, count hidden by the baseline)."""
    if baselined is None:
        return list(violations), 0
    fresh = [v for v in violations if v.fingerprint not in baselined]
    return fresh, len(violations) - len(fresh)
