"""Intraprocedural def-use propagation and interprocedural summaries.

This is the engine behind SIM010/SIM011/SIM012.  For every function in
the project it runs a single flow-ordered pass over the body, tracking
an abstract :class:`Value` per local name:

* the *address domain* (``Lpn``/``Ppn``/``Pbn``/``LunIndex``) seeded
  from parameter/attribute annotations and propagated through
  assignments, calls and ``+``/``-`` arithmetic (``*``, ``//``, ``%``
  and unary minus deliberately kill the domain: they are how the
  simulator legitimately converts between spaces),
* the *class* of the object a name holds, resolved through the
  :class:`repro.lint.callgraph.Project` symbol table so attribute
  chains like ``self.controller.array.state`` type all the way down,
* *view taint*: whether the value aliases a live device-state buffer
  (a slice of a ``FlashState`` array, the result of ``block_words``
  on a state-owned bitmap, ...).

The pass emits a :class:`FunctionSummary` carrying the resolved call
edges, scheduling roots, module-state writes, and the raw SIM010/SIM012
findings; :class:`ProjectAnalysis` runs the pass twice (the first pass
infers return domains of unannotated helpers, the second produces final
findings) and derives the scheduling-reachability map SIM011 and the
``--purity-map`` output consume.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Union

from repro.lint.callgraph import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    Symbol,
    annotation_domain,
    reachable_from,
)
from repro.lint.domains import (
    ARRAY_ELEMENT_DOMAINS,
    ARRAY_INDEX_DOMAINS,
    CONTAINER_MUTATOR_METHODS,
    ITER_ELEMENT_DOMAINS,
    MUTATING_ARRAY_METHODS,
    SCHEDULING_CALL_NAMES,
    STATE_ARRAY_ATTRS,
    VIEW_PROPAGATING_METHODS,
    VIEW_RETURNING_METHODS,
    Domain,
)

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class Value:
    """What the evaluator knows about one expression's result."""

    #: address domain of an int value, if known.
    domain: Optional[Domain] = None
    #: qualified name of the class this value is an instance of.
    cls: Optional[str] = None
    #: ``(class name, attr)`` when the value *is* a raw state array.
    array_of: Optional[tuple[str, str]] = None
    #: human-readable origin when the value is a live state view.
    view_origin: Optional[str] = None
    #: domain of the elements an iteration over this value yields.
    elem_domain: Optional[Domain] = None
    #: per-element domains when the value is a known tuple.
    domain_tuple: Optional[tuple[Optional[Domain], ...]] = None
    #: qualname of the project function this value references (callbacks).
    func_ref: Optional[str] = None

    @property
    def is_state_buffer(self) -> bool:
        return self.array_of is not None or self.view_origin is not None

    def buffer_description(self) -> str:
        if self.array_of is not None:
            return f"{self.array_of[0]}.{self.array_of[1]}"
        return self.view_origin or "<buffer>"


_EMPTY = Value()


@dataclass
class Finding:
    """A raw rule hit, pre-Violation (the rule object adds id/name)."""

    path: str
    line: int
    col: int
    message: str


def _finding(path: str, node: ast.AST, message: str) -> Finding:
    return Finding(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0) + 1,
        message=message,
    )


@dataclass
class FunctionSummary:
    """Everything the project rules need to know about one function."""

    info: FunctionInfo
    #: resolved callee qualnames (call-graph edges out of this function).
    calls: set[str] = field(default_factory=set)
    #: callee qualname -> description, for function refs handed to the
    #: event engine (``sim.post(..., self.complete_io, io)``).
    sched_roots: dict[str, str] = field(default_factory=dict)
    #: (finding, short description) pairs for module-state writes.
    module_writes: list[tuple[Finding, str]] = field(default_factory=list)
    domain_findings: list[Finding] = field(default_factory=list)
    view_findings: list[Finding] = field(default_factory=list)
    #: domains observed at ``return`` statements (None entries mean a
    #: return whose domain is unknown).
    return_domains: list[Optional[Domain]] = field(default_factory=list)

    def inferred_return_domain(self) -> Optional[Domain]:
        observed = {d for d in self.return_domains if d is not None}
        if len(observed) == 1 and all(
            d is not None for d in self.return_domains
        ):
            return next(iter(observed))
        return None


class _FunctionEvaluator:
    """One flow-ordered pass over a single function body."""

    def __init__(
        self, project: Project, module: ModuleInfo, info: FunctionInfo
    ) -> None:
        self.project = project
        self.module = module
        self.info = info
        self.summary = FunctionSummary(info=info)
        self.env: dict[str, Value] = {}
        self.local_names: set[str] = set()
        self.global_names: set[str] = set()
        self._seed_parameters()

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------
    def _seed_parameters(self) -> None:
        args = self.info.node.args
        all_args = list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        if args.vararg is not None:
            all_args.append(args.vararg)
        if args.kwarg is not None:
            all_args.append(args.kwarg)
        for index, arg in enumerate(all_args):
            value = Value(
                domain=self.info.param_domains.get(arg.arg),
                cls=self.info.param_classes.get(arg.arg),
            )
            if index == 0 and self.info.is_method and arg.arg in ("self", "cls"):
                owner = f"{self.info.module_name}.{self.info.class_name}"
                value = Value(cls=owner)
            self.env[arg.arg] = value
            self.local_names.add(arg.arg)

    def run(self) -> FunctionSummary:
        for stmt in self.info.node.body:
            self._exec(stmt)
        return self.summary

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _class_info(self, value: Value) -> Optional[ClassInfo]:
        if value.cls is None:
            return None
        return self.project.classes.get(value.cls)

    def _class_key(self, value: Value) -> Optional[str]:
        """The short class name used to key the domain tables."""
        if value.cls is None:
            return None
        info = self.project.classes.get(value.cls)
        if info is not None:
            return info.name
        return value.cls.rsplit(".", 1)[-1]

    def _report_domain(self, node: ast.AST, message: str) -> None:
        self.summary.domain_findings.append(
            _finding(self.info.path, node, message)
        )

    def _report_view(self, node: ast.AST, message: str) -> None:
        self.summary.view_findings.append(_finding(self.info.path, node, message))

    def _report_module_write(
        self, node: ast.AST, description: str, message: str
    ) -> None:
        self.summary.module_writes.append(
            (_finding(self.info.path, node, message), description)
        )

    def _is_module_level_name(self, name: str) -> bool:
        return (
            name in self.module.module_names
            and name not in self.local_names
        ) or name in self.global_names

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._bind(target, value, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            value = self._eval(stmt.value) if stmt.value is not None else _EMPTY
            declared = annotation_domain(stmt.annotation)
            if (
                declared is not None
                and value.domain is not None
                and value.domain != declared
            ):
                self._report_domain(
                    stmt,
                    f"value in the {value.domain} domain assigned to a name "
                    f"annotated {declared}",
                )
            if declared is not None:
                value = replace(value, domain=declared)
            self._bind(stmt.target, value, stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value)
            self._bind_aug(stmt, value)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value)
                if not (
                    isinstance(stmt.value, ast.Constant)
                    and stmt.value.value is None
                ):
                    self.summary.return_domains.append(value.domain)
                declared = self.info.return_domain
                if (
                    declared is not None
                    and value.domain is not None
                    and value.domain != declared
                ):
                    self._report_domain(
                        stmt,
                        f"returns a {value.domain}-domain value from a "
                        f"function annotated to return {declared}",
                    )
        elif isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            for sub in stmt.body:
                self._exec(sub)
            for sub in stmt.orelse:
                self._exec(sub)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iterable = self._eval(stmt.iter)
            self._bind(stmt.target, Value(domain=iterable.elem_domain), None)
            for sub in stmt.body:
                self._exec(sub)
            for sub in stmt.orelse:
                self._exec(sub)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, value, item.context_expr)
            for sub in stmt.body:
                self._exec(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body:
                self._exec(sub)
            for handler in stmt.handlers:
                if handler.name is not None:
                    self.env[handler.name] = _EMPTY
                    self.local_names.add(handler.name)
                for sub in handler.body:
                    self._exec(sub)
            for sub in stmt.orelse:
                self._exec(sub)
            for sub in stmt.finalbody:
                self._exec(sub)
        elif isinstance(stmt, ast.Global):
            self.global_names.update(stmt.names)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested defs (closures used as continuations) are analysed
            # inline: their effects belong to the enclosing function.
            self._exec_nested(stmt)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test)
            if stmt.msg is not None:
                self._eval(stmt.msg)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript) and isinstance(
                    target.value, ast.Name
                ):
                    if self._is_module_level_name(target.value.id):
                        self._report_module_write(
                            target,
                            f"del {target.value.id}[...]",
                            f"deletes from module-level container "
                            f"{target.value.id!r}",
                        )
        # Pass/Break/Continue/Import/Nonlocal/ClassDef: nothing to track.

    def _exec_nested(self, node: _FunctionNode) -> None:
        saved_env = dict(self.env)
        saved_locals = set(self.local_names)
        for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
            domain = annotation_domain(arg.annotation)
            self.env[arg.arg] = Value(domain=domain)
            self.local_names.add(arg.arg)
        for stmt in node.body:
            self._exec(stmt)
        self.env = saved_env
        self.local_names = saved_locals
        # The nested function itself becomes referenceable by name.
        self.env[node.name] = _EMPTY
        self.local_names.add(node.name)

    # ------------------------------------------------------------------
    # stores
    # ------------------------------------------------------------------
    def _bind(
        self, target: ast.expr, value: Value, source: Optional[ast.expr]
    ) -> None:
        if isinstance(target, ast.Name):
            if self._is_module_level_name(target.id) and target.id in self.global_names:
                self._report_module_write(
                    target,
                    f"{target.id} = ...",
                    f"rebinds module-level name {target.id!r} "
                    "(declared global)",
                )
            self.env[target.id] = value
            self.local_names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            domains = value.domain_tuple
            for index, element in enumerate(target.elts):
                if domains is not None and index < len(domains):
                    self._bind(element, Value(domain=domains[index]), None)
                else:
                    self._bind(element, _EMPTY, None)
        elif isinstance(target, ast.Attribute):
            obj = self._eval(target.value)
            cls = self._class_info(obj)
            if cls is not None:
                declared = self.project.attr_domain_of(cls, target.attr)
                if (
                    declared is not None
                    and value.domain is not None
                    and value.domain != declared
                ):
                    self._report_domain(
                        target,
                        f"value in the {value.domain} domain stored in "
                        f"attribute {cls.name}.{target.attr} annotated "
                        f"{declared}",
                    )
        elif isinstance(target, ast.Subscript):
            self._store_subscript(target, value)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, _EMPTY, None)

    def _owns_buffer(self, obj: Value) -> bool:
        """True when the current function is a method of the class that
        owns the buffer -- the mutator API itself lives there and must
        be allowed to write."""
        owner = self.info.class_name
        if not owner:
            return False
        if obj.array_of is not None:
            return obj.array_of[0] == owner
        if obj.view_origin is not None:
            return obj.view_origin.split(".", 1)[0] == owner
        return False

    def _store_subscript(self, target: ast.Subscript, value: Value) -> None:
        obj = self._eval(target.value)
        self._check_index(target, obj, target.slice)
        self._eval(target.slice)
        if self._owns_buffer(obj):
            pass
        elif obj.array_of is not None:
            self._report_view(
                target,
                f"in-place write to state array {obj.buffer_description()}; "
                "go through the owning class's mutator API",
            )
        elif obj.view_origin is not None:
            self._report_view(
                target,
                f"write through a live view of {obj.view_origin}; views "
                "returned by state accessors are read-only by convention -- "
                "use the mutator API",
            )
        elif isinstance(target.value, ast.Name) and self._is_module_level_name(
            target.value.id
        ):
            self._report_module_write(
                target,
                f"{target.value.id}[...] = ...",
                f"writes into module-level container {target.value.id!r}",
            )

    def _bind_aug(self, stmt: ast.AugAssign, value: Value) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            if target.id in self.global_names:
                self._report_module_write(
                    target,
                    f"{target.id} {type(stmt.op).__name__}= ...",
                    f"augments module-level name {target.id!r} "
                    "(declared global)",
                )
            current = self.env.get(target.id, _EMPTY)
            self.env[target.id] = replace(current, domain=current.domain)
            self.local_names.add(target.id)
        elif isinstance(target, ast.Subscript):
            self._store_subscript(target, value)
        elif isinstance(target, ast.Attribute):
            self._eval(target.value)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def _eval(self, node: Optional[ast.expr]) -> Value:
        if node is None:
            return _EMPTY
        if isinstance(node, ast.Name):
            return self._eval_name(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            self._eval(node.operand)
            return _EMPTY
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            body = self._eval(node.body)
            orelse = self._eval(node.orelse)
            if body.domain is not None and body.domain == orelse.domain:
                return Value(domain=body.domain)
            return _EMPTY
        if isinstance(node, ast.Tuple):
            values = [self._eval(element) for element in node.elts]
            return Value(domain_tuple=tuple(v.domain for v in values))
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            self._eval_comprehension(node.generators)
            self._eval(node.elt)
            return _EMPTY
        if isinstance(node, ast.DictComp):
            self._eval_comprehension(node.generators)
            self._eval(node.key)
            self._eval(node.value)
            return _EMPTY
        if isinstance(node, ast.Lambda):
            self._eval_lambda(node)
            return _EMPTY
        if isinstance(node, ast.NamedExpr):
            value = self._eval(node.value)
            self._bind(node.target, value, node.value)
            return value
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        # Constants, f-strings, bool ops, comparisons, containers: walk
        # children so nested calls are still recorded, carry no value.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._eval(child)
        return _EMPTY

    def _eval_comprehension(self, generators: list[ast.comprehension]) -> None:
        for generator in generators:
            iterable = self._eval(generator.iter)
            self._bind(generator.target, Value(domain=iterable.elem_domain), None)
            for condition in generator.ifs:
                self._eval(condition)

    def _eval_lambda(self, node: ast.Lambda) -> set[str]:
        """Evaluate a lambda body inline; returns the calls it makes."""
        saved_env = dict(self.env)
        saved_locals = set(self.local_names)
        saved_calls = set(self.summary.calls)
        self.summary.calls = set()
        for arg in node.args.posonlyargs + node.args.args + node.args.kwonlyargs:
            self.env[arg.arg] = _EMPTY
            self.local_names.add(arg.arg)
        self._eval(node.body)
        captured = self.summary.calls
        self.summary.calls = saved_calls | captured
        self.env = saved_env
        self.local_names = saved_locals
        return captured

    def _eval_name(self, node: ast.Name) -> Value:
        if node.id in self.env:
            return self.env[node.id]
        if node.id in self.module.functions:
            return Value(func_ref=self.module.functions[node.id].qualname)
        target = self.module.imports.get(node.id)
        if target is not None:
            if target in self.project.functions:
                return Value(func_ref=target)
            if target in self.project.classes:
                return _EMPTY
        return _EMPTY

    def _eval_attribute(self, node: ast.Attribute) -> Value:
        obj = self._eval(node.value)
        cls = self._class_info(obj)
        key = self._class_key(obj)
        if key is not None and node.attr in STATE_ARRAY_ATTRS.get(key, frozenset()):
            return Value(array_of=(key, node.attr))
        if cls is not None:
            domain = self.project.attr_domain_of(cls, node.attr)
            attr_cls = self.project.attr_class_of(cls, node.attr)
            method = self.project.method_of(cls, node.attr)
            if domain is not None or attr_cls is not None:
                return Value(
                    domain=domain,
                    cls=attr_cls.qualname if attr_cls is not None else None,
                )
            if method is not None:
                return Value(func_ref=method.qualname)
        if obj.is_state_buffer and node.attr == "T":
            return replace(obj, array_of=None, view_origin=obj.buffer_description())
        # Dotted module access: ``addresses.lun_index``.
        if isinstance(node.value, ast.Name) and node.value.id not in self.env:
            target = self.module.imports.get(node.value.id)
            if target is not None:
                dotted = f"{target}.{node.attr}"
                if dotted in self.project.functions:
                    return Value(func_ref=dotted)
        return _EMPTY

    def _check_index(
        self, node: ast.AST, obj: Value, index: ast.expr
    ) -> None:
        if obj.array_of is None:
            return
        class_key, attr = obj.array_of
        expected = ARRAY_INDEX_DOMAINS.get(class_key, {}).get(attr)
        if expected is None:
            return
        if isinstance(index, (ast.Slice, ast.Tuple)):
            return
        found = self._eval(index)
        if found.domain is not None and found.domain != expected:
            self._report_domain(
                node,
                f"{class_key}.{attr} is indexed by {expected} but the index "
                f"expression is in the {found.domain} domain",
            )

    def _eval_subscript(self, node: ast.Subscript) -> Value:
        obj = self._eval(node.value)
        self._check_index(node, obj, node.slice)
        if not isinstance(node.slice, (ast.Slice, ast.Tuple)):
            self._eval(node.slice)
        if obj.array_of is not None:
            class_key, attr = obj.array_of
            if isinstance(node.slice, ast.Slice) or (
                isinstance(node.slice, ast.Tuple)
                and any(isinstance(e, ast.Slice) for e in node.slice.elts)
            ):
                return Value(view_origin=f"{class_key}.{attr}")
            element = ARRAY_ELEMENT_DOMAINS.get(class_key, {}).get(attr)
            return Value(domain=element)
        if obj.view_origin is not None and isinstance(node.slice, ast.Slice):
            return obj
        return _EMPTY

    def _eval_binop(self, node: ast.BinOp) -> Value:
        left = self._eval(node.left)
        right = self._eval(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if left.domain is not None and right.domain is None:
                return Value(domain=left.domain)
            if right.domain is not None and left.domain is None:
                return Value(domain=right.domain)
            if left.domain is not None and left.domain == right.domain:
                return Value(domain=left.domain)
        # Mult/FloorDiv/Mod/... legitimately convert between address
        # spaces (ppn = pbn * pages_per_block + page), so they erase it.
        return _EMPTY

    # ------------------------------------------------------------------
    # calls
    # ------------------------------------------------------------------
    def _eval_call(self, node: ast.Call) -> Value:
        func = node.func
        arg_values = [self._eval(arg) for arg in node.args]
        keyword_values = {
            kw.arg: self._eval(kw.value) for kw in node.keywords if kw.arg
        }
        for kw in node.keywords:
            if kw.arg is None:
                self._eval(kw.value)

        # Function references handed to any call may be invoked later on
        # whatever path the callee sits on: record them as edges.
        ref_args: list[str] = []
        for value in list(arg_values) + list(keyword_values.values()):
            if value.func_ref is not None:
                ref_args.append(value.func_ref)
                self.summary.calls.add(value.func_ref)
        lambda_calls: set[str] = set()
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            if isinstance(arg, ast.Lambda):
                lambda_calls |= self._eval_lambda(arg)

        call_name = (
            func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        )
        if call_name in SCHEDULING_CALL_NAMES:
            origin = f"scheduled from {self.info.qualname} via {call_name}()"
            for qualname in ref_args:
                self.summary.sched_roots.setdefault(qualname, origin)
            for qualname in lambda_calls:
                self.summary.sched_roots.setdefault(
                    qualname, origin + " (lambda)"
                )

        callee = self._resolve_callee(node, arg_values)
        if isinstance(callee, ClassInfo):
            init = self.project.method_of(callee, "__init__")
            if init is not None:
                self.summary.calls.add(init.qualname)
                self._check_call_domains(node, init, arg_values, keyword_values)
            return Value(cls=callee.qualname)
        if isinstance(callee, FunctionInfo):
            self.summary.calls.add(callee.qualname)
            self._check_call_domains(node, callee, arg_values, keyword_values)
            return_cls = callee.return_class
            result = Value(
                domain=callee.effective_return_domain(),
                cls=return_cls,
                domain_tuple=callee.return_domain_tuple,
            )
            view_result = self._view_result(node, func, arg_values)
            if view_result is not None:
                return view_result
            iter_result = self._iter_result(func)
            if iter_result is not None:
                return iter_result
            return result

        builtin = self._eval_builtin_call(node, func, arg_values)
        if builtin is not None:
            return builtin
        view_result = self._view_result(node, func, arg_values)
        if view_result is not None:
            return view_result
        iter_result = self._iter_result(func)
        if iter_result is not None:
            return iter_result
        self._check_buffer_method(node, func)
        self._check_module_container_mutation(node, func)
        return _EMPTY

    def _resolve_callee(
        self, node: ast.Call, arg_values: list[Value]
    ) -> Optional[Symbol]:
        func = node.func
        resolved = self.project.resolve_call_target(self.module, func)
        if resolved is not None:
            # A plain name may be shadowed by a local.
            if isinstance(func, ast.Name) and func.id in self.env:
                return None
            return resolved
        if isinstance(func, ast.Attribute):
            obj = self._eval(func.value)
            cls = self._class_info(obj)
            if cls is not None:
                method = self.project.method_of(cls, func.attr)
                if method is not None:
                    return method
        return None

    def _check_call_domains(
        self,
        node: ast.Call,
        callee: FunctionInfo,
        arg_values: list[Value],
        keyword_values: dict[str, Value],
    ) -> None:
        params = callee.positional_params()
        for index, value in enumerate(arg_values):
            if index >= len(params):
                break
            expected = callee.param_domains.get(params[index])
            if (
                expected is not None
                and value.domain is not None
                and value.domain != expected
            ):
                self._report_domain(
                    node,
                    f"argument {index + 1} of {callee.name}() is declared "
                    f"{expected} but the value passed is in the "
                    f"{value.domain} domain",
                )
        for name, value in keyword_values.items():
            expected = callee.param_domains.get(name)
            if (
                expected is not None
                and value.domain is not None
                and value.domain != expected
            ):
                self._report_domain(
                    node,
                    f"keyword argument {name!r} of {callee.name}() is "
                    f"declared {expected} but the value passed is in the "
                    f"{value.domain} domain",
                )

    def _view_result(
        self, node: ast.Call, func: ast.expr, arg_values: list[Value]
    ) -> Optional[Value]:
        if not isinstance(func, ast.Attribute):
            return None
        obj = self._eval(func.value)
        key = self._class_key(obj)
        if key is None:
            return None
        mode = VIEW_RETURNING_METHODS.get(key, {}).get(func.attr)
        if mode is None:
            return None
        if mode == "receiver":
            return Value(view_origin=f"{key}.{func.attr}()")
        if mode == "argument" and arg_values:
            first = arg_values[0]
            if first.is_state_buffer:
                return Value(
                    view_origin=f"{key}.{func.attr}({first.buffer_description()})"
                )
        return _EMPTY

    def _iter_result(self, func: ast.expr) -> Optional[Value]:
        if not isinstance(func, ast.Attribute):
            return None
        obj = self._eval(func.value)
        key = self._class_key(obj)
        if key is None:
            return None
        domain = ITER_ELEMENT_DOMAINS.get(key, {}).get(func.attr)
        if domain is None:
            return None
        return Value(elem_domain=domain)

    def _eval_builtin_call(
        self, node: ast.Call, func: ast.expr, arg_values: list[Value]
    ) -> Optional[Value]:
        if not isinstance(func, ast.Name) or func.id in self.env:
            return None
        if func.id == "range" and arg_values:
            domains = {v.domain for v in arg_values[: min(len(arg_values), 2)]}
            if len(domains) == 1 and None not in domains:
                return Value(elem_domain=next(iter(domains)))
            return _EMPTY
        if func.id in ("sorted", "list", "tuple", "reversed") and arg_values:
            inner = arg_values[0]
            if inner.elem_domain is not None:
                return Value(elem_domain=inner.elem_domain)
            return _EMPTY
        return None

    def _check_buffer_method(self, node: ast.Call, func: ast.expr) -> None:
        if not isinstance(func, ast.Attribute):
            return
        obj = self._eval(func.value)
        if not obj.is_state_buffer or self._owns_buffer(obj):
            return
        if func.attr in MUTATING_ARRAY_METHODS:
            self._report_view(
                node,
                f".{func.attr}() mutates a live view of "
                f"{obj.buffer_description()} in place; use the mutator API",
            )

    def _check_module_container_mutation(
        self, node: ast.Call, func: ast.expr
    ) -> None:
        if not (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.attr in CONTAINER_MUTATOR_METHODS
        ):
            return
        name = func.value.id
        if self._is_module_level_name(name) and name not in self.env:
            self._report_module_write(
                node,
                f"{name}.{func.attr}(...)",
                f"mutates module-level container {name!r} via "
                f".{func.attr}()",
            )


def evaluate_function(
    project: Project, module: ModuleInfo, info: FunctionInfo
) -> FunctionSummary:
    """Run the dataflow pass over one function."""
    return _FunctionEvaluator(project, module, info).run()


class ProjectAnalysis:
    """The two-pass whole-project analysis the SIM010..SIM012 rules read."""

    def __init__(
        self, project: Project, summaries: dict[str, FunctionSummary]
    ) -> None:
        self.project = project
        self.summaries = summaries

    @classmethod
    def build(cls, entries: Iterable[tuple[str, ast.Module]]) -> "ProjectAnalysis":
        project = Project(entries)
        # Pass 1: infer return domains of unannotated helpers so pass 2
        # sees them at call sites (a one-step fixpoint is enough for the
        # accessor-wrapper chains in this codebase).
        for info in project.functions.values():
            module = project.modules.get(info.module_name)
            if module is None:
                continue
            summary = evaluate_function(project, module, info)
            if info.return_domain is None:
                info.inferred_return_domain = summary.inferred_return_domain()
        # Pass 2: final summaries with inferred domains visible.
        summaries: dict[str, FunctionSummary] = {}
        for qualname, info in project.functions.items():
            module = project.modules.get(info.module_name)
            if module is None:
                continue
            summaries[qualname] = evaluate_function(project, module, info)
        return cls(project, summaries)

    def scheduling_reachable(self) -> dict[str, str]:
        """qualname -> origin description, over the scheduling call graph."""
        roots: dict[str, str] = {}
        for summary in self.summaries.values():
            for qualname, description in summary.sched_roots.items():
                roots.setdefault(qualname, description)
        edges = {q: s.calls for q, s in self.summaries.items()}
        return reachable_from(roots, edges)

    def purity_map(self) -> dict[str, dict[str, object]]:
        """The machine-readable purity report (``--purity-map``)."""
        reachable = self.scheduling_reachable()
        out: dict[str, dict[str, object]] = {}
        for qualname in sorted(reachable):
            summary = self.summaries.get(qualname)
            if summary is None:
                continue
            writes = sorted({description for _, description in summary.module_writes})
            out[qualname] = {
                "origin": reachable[qualname],
                "pure": not writes,
                "module_writes": writes,
                "path": summary.info.path,
            }
        return out
