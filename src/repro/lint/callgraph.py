"""Project-wide symbol table and call graph for simlint.

The single-file rules (SIM001..SIM009) see one AST at a time.  The
dataflow rules (SIM010..SIM012) need to know, across module boundaries,
*what a name is*: which class a constructor call builds, which function
an attribute call dispatches to, which domain an annotated parameter
assigns.  This module builds that view:

* :class:`ModuleInfo` -- one parsed file: its import table (local alias
  -> dotted target), module-level bindings, functions and classes.
* :class:`ClassInfo` -- methods, resolved base classes, and the
  *attribute type table* inferred from ``self.x = ClassName(...)``
  assignments and annotations (this is what lets the engine resolve
  ``self.controller.array.state`` to ``FlashState`` three modules away).
* :class:`FunctionInfo` -- the signature with parsed domain/class
  annotations (string annotations under ``from __future__ import
  annotations`` included).
* :class:`Project` -- the index over all of the above, plus name
  resolution and method lookup along base-class chains.

The call graph itself (edges = resolved calls plus function references
passed as callbacks) is extracted by the dataflow evaluator, which owns
the local environments needed to type call receivers; reachability over
those edges lives here (:func:`reachable_from`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Deque, Iterable, Mapping, Optional, Union

from repro.lint.domains import Domain, domain_of_alias

#: Either kind of project symbol a dotted name can resolve to.
Symbol = Union["FunctionInfo", "ClassInfo"]


@dataclass
class FunctionInfo:
    """One module-level function or method."""

    qualname: str
    name: str
    module_name: str
    path: str
    node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    class_name: Optional[str] = None
    is_staticmethod: bool = False
    #: parameter name -> address domain, parsed from annotations.
    param_domains: dict[str, Domain] = field(default_factory=dict)
    #: parameter name -> qualified class name, parsed from annotations.
    param_classes: dict[str, str] = field(default_factory=dict)
    #: explicit return domain (``-> Ppn``), if annotated.
    return_domain: Optional[Domain] = None
    #: per-element domains of a ``tuple[...]`` return annotation.
    return_domain_tuple: Optional[tuple[Optional[Domain], ...]] = None
    #: qualified class name of the return annotation, if it names one.
    return_class: Optional[str] = None
    #: return domain inferred by the dataflow summary pass (used when no
    #: explicit annotation exists).
    inferred_return_domain: Optional[Domain] = None

    @property
    def is_method(self) -> bool:
        return self.class_name is not None and not self.is_staticmethod

    def positional_params(self) -> list[str]:
        """Positional parameter names, ``self``/``cls`` excluded for methods."""
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if self.is_method and names:
            names = names[1:]
        return names

    def effective_return_domain(self) -> Optional[Domain]:
        if self.return_domain is not None:
            return self.return_domain
        return self.inferred_return_domain


@dataclass
class ClassInfo:
    """One class definition with its inferred attribute types."""

    qualname: str
    name: str
    module_name: str
    path: str
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    #: base-class expressions, resolved lazily by :meth:`Project.bases_of`.
    base_names: list[ast.expr] = field(default_factory=list)
    #: ``self.attr`` -> qualified class name (from constructor
    #: assignments and annotations in any method).
    attr_classes: dict[str, str] = field(default_factory=dict)
    #: ``self.attr`` -> address domain (from annotations).
    attr_domains: dict[str, Domain] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed source file."""

    name: str
    path: str
    tree: ast.Module
    #: local alias -> dotted import target ("MappingTable" ->
    #: "repro.hardware.state.MappingTable", "np" -> "numpy").
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: every name bound at module level (assignments, defs, imports);
    #: used to distinguish module state from locals.
    module_names: set[str] = field(default_factory=set)


def module_name_for_path(path: str) -> str:
    """Dotted module name for a source path.

    Paths under a ``src/`` root map to their package name
    (``src/repro/core/engine.py`` -> ``repro.core.engine``); anything
    else falls back to the file stem, which keeps fixture files in
    temporary directories addressable.
    """
    normalised = path.replace("\\", "/")
    marker = "/src/"
    if normalised.startswith("src/"):
        tail = normalised[len("src/"):]
    elif marker in normalised:
        tail = normalised.rsplit(marker, 1)[1]
    else:
        tail = normalised.rsplit("/", 1)[-1]
    if tail.endswith(".py"):
        tail = tail[: -len(".py")]
    dotted = tail.replace("/", ".")
    if dotted.endswith(".__init__"):
        dotted = dotted[: -len(".__init__")]
    return dotted


def _annotation_tree(annotation: ast.expr) -> Optional[ast.expr]:
    """Resolve a string annotation (``"SsdController"``) to its AST."""
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        try:
            parsed = ast.parse(annotation.value, mode="eval")
        except SyntaxError:
            return None
        return parsed.body
    return annotation


def _unwrap_optional(annotation: ast.expr) -> ast.expr:
    """``Optional[X]`` -> ``X``; leaves other annotations untouched."""
    if isinstance(annotation, ast.Subscript):
        head = annotation.value
        head_name = head.attr if isinstance(head, ast.Attribute) else getattr(head, "id", None)
        if head_name == "Optional":
            return annotation.slice
    return annotation


def annotation_domain(annotation: Optional[ast.expr]) -> Optional[Domain]:
    """The address domain an annotation names, if any (handles string
    annotations and ``Optional[...]`` wrapping)."""
    if annotation is None:
        return None
    tree = _annotation_tree(annotation)
    if tree is None:
        return None
    tree = _unwrap_optional(tree)
    if isinstance(tree, ast.Name):
        return domain_of_alias(tree.id)
    if isinstance(tree, ast.Attribute):
        return domain_of_alias(tree.attr)
    return None


def annotation_domain_tuple(
    annotation: Optional[ast.expr],
) -> Optional[tuple[Optional[Domain], ...]]:
    """Per-element domains of a ``tuple[A, B]`` annotation, or None."""
    if annotation is None:
        return None
    tree = _annotation_tree(annotation)
    if tree is None:
        return None
    tree = _unwrap_optional(tree)
    if not isinstance(tree, ast.Subscript):
        return None
    head = tree.value
    head_name = head.attr if isinstance(head, ast.Attribute) else getattr(head, "id", None)
    if head_name not in ("tuple", "Tuple"):
        return None
    slice_node = tree.slice
    elements = slice_node.elts if isinstance(slice_node, ast.Tuple) else [slice_node]
    domains = tuple(
        domain_of_alias(e.id) if isinstance(e, ast.Name) else None for e in elements
    )
    if any(d is not None for d in domains):
        return domains
    return None


def _annotation_class_name(annotation: Optional[ast.expr]) -> Optional[str]:
    """The plain/dotted class name an annotation refers to, if any."""
    if annotation is None:
        return None
    tree = _annotation_tree(annotation)
    if tree is None:
        return None
    tree = _unwrap_optional(tree)
    parts: list[str] = []
    node = tree
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class Project:
    """The cross-module symbol index."""

    def __init__(self, entries: Iterable[tuple[str, ast.Module]]) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}
        for path, tree in entries:
            module = self._index_module(path, tree)
            self.modules[module.name] = module
        for module in self.modules.values():
            self._parse_signatures(module)
            self._infer_attribute_types(module)

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------
    def _index_module(self, path: str, tree: ast.Module) -> ModuleInfo:
        module = ModuleInfo(name=module_name_for_path(path), path=path, tree=tree)
        # Imports anywhere in the file (TYPE_CHECKING blocks included).
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    module.imports[local] = target
            elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    module.imports[local] = f"{node.module}.{alias.name}"
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._make_function(module, stmt, class_name=None)
                module.functions[stmt.name] = info
                self.functions[info.qualname] = info
                module.module_names.add(stmt.name)
            elif isinstance(stmt, ast.ClassDef):
                cls = self._make_class(module, stmt)
                module.classes[stmt.name] = cls
                self.classes[cls.qualname] = cls
                module.module_names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module.module_names.add(target.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                module.module_names.add(stmt.target.id)
            elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
                for alias in stmt.names:
                    module.module_names.add(
                        alias.asname or alias.name.split(".")[0]
                    )
        return module

    def _make_function(
        self,
        module: ModuleInfo,
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        class_name: Optional[str],
    ) -> FunctionInfo:
        prefix = f"{module.name}.{class_name}." if class_name else f"{module.name}."
        is_static = any(
            isinstance(d, ast.Name) and d.id == "staticmethod" for d in node.decorator_list
        )
        return FunctionInfo(
            qualname=f"{prefix}{node.name}",
            name=node.name,
            module_name=module.name,
            path=module.path,
            node=node,
            class_name=class_name,
            is_staticmethod=is_static,
        )

    def _make_class(self, module: ModuleInfo, node: ast.ClassDef) -> ClassInfo:
        cls = ClassInfo(
            qualname=f"{module.name}.{node.name}",
            name=node.name,
            module_name=module.name,
            path=module.path,
            node=node,
            base_names=list(node.bases),
        )
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._make_function(module, stmt, class_name=node.name)
                cls.methods[stmt.name] = info
                self.functions[info.qualname] = info
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                domain = annotation_domain(stmt.annotation)
                if domain is not None:
                    cls.attr_domains[stmt.target.id] = domain
                class_name = _annotation_class_name(stmt.annotation)
                resolved = self._resolve_class_name(module, class_name)
                if resolved is not None:
                    cls.attr_classes[stmt.target.id] = resolved.qualname
        return cls

    # ------------------------------------------------------------------
    # Signature parsing
    # ------------------------------------------------------------------
    def _parse_signatures(self, module: ModuleInfo) -> None:
        functions = list(module.functions.values())
        for cls in module.classes.values():
            functions.extend(cls.methods.values())
        for info in functions:
            args = info.node.args
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                domain = annotation_domain(arg.annotation)
                if domain is not None:
                    info.param_domains[arg.arg] = domain
                class_name = _annotation_class_name(arg.annotation)
                resolved = self._resolve_class_name(module, class_name)
                if resolved is not None:
                    info.param_classes[arg.arg] = resolved.qualname
            info.return_domain = annotation_domain(info.node.returns)
            info.return_domain_tuple = annotation_domain_tuple(info.node.returns)
            class_name = _annotation_class_name(info.node.returns)
            resolved = self._resolve_class_name(module, class_name)
            if resolved is not None:
                info.return_class = resolved.qualname

    def _infer_attribute_types(self, module: ModuleInfo) -> None:
        """``self.x = ClassName(...)`` / ``self.x = typed_param`` in any
        method binds the attribute's class for the whole project."""
        for cls in module.classes.values():
            for method in cls.methods.values():
                for node in ast.walk(method.node):
                    target: Optional[ast.expr] = None
                    value: Optional[ast.expr] = None
                    annotation: Optional[ast.expr] = None
                    if isinstance(node, ast.Assign) and len(node.targets) == 1:
                        target, value = node.targets[0], node.value
                    elif isinstance(node, ast.AnnAssign):
                        target, value, annotation = node.target, node.value, node.annotation
                    if not (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        continue
                    attr = target.attr
                    if annotation is not None:
                        domain = annotation_domain(annotation)
                        if domain is not None:
                            cls.attr_domains.setdefault(attr, domain)
                        resolved = self._resolve_class_name(
                            module, _annotation_class_name(annotation)
                        )
                        if resolved is not None:
                            self._record_attr_class(cls, attr, resolved.qualname)
                            continue
                    if value is None:
                        continue
                    inferred = self._value_class(module, method, value)
                    if inferred is not None:
                        self._record_attr_class(cls, attr, inferred.qualname)
                    if isinstance(value, ast.Name):
                        domain = method.param_domains.get(value.id)
                        if domain is not None:
                            cls.attr_domains.setdefault(attr, domain)

    def _record_attr_class(self, cls: ClassInfo, attr: str, qualname: str) -> None:
        existing = cls.attr_classes.get(attr)
        if existing is not None and existing != qualname:
            # Conflicting assignments: drop the binding rather than guess.
            cls.attr_classes[attr] = ""
            return
        cls.attr_classes[attr] = qualname

    def _value_class(
        self, module: ModuleInfo, method: FunctionInfo, value: ast.expr
    ) -> Optional[ClassInfo]:
        """The class a ``self.x = <value>`` assignment binds, if evident."""
        if isinstance(value, ast.Call):
            resolved = self.resolve_call_target(module, value.func)
            if isinstance(resolved, ClassInfo):
                return resolved
            return None
        if isinstance(value, ast.Name):
            qualname = method.param_classes.get(value.id)
            if qualname:
                return self.classes.get(qualname)
        return None

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def _resolve_class_name(
        self, module: ModuleInfo, name: Optional[str]
    ) -> Optional[ClassInfo]:
        if not name:
            return None
        head, _, rest = name.partition(".")
        if not rest and head in module.classes:
            return module.classes[head]
        target = module.imports.get(head)
        if target is None:
            return None
        dotted = f"{target}.{rest}" if rest else target
        return self.classes.get(dotted)

    def resolve_call_target(
        self, module: ModuleInfo, func: ast.expr
    ) -> Optional[Symbol]:
        """Resolve a call's function expression to a project symbol.

        Handles plain names (local defs, imports) and dotted module
        access (``addresses.lun_index``).  Attribute calls on *objects*
        are resolved by the dataflow evaluator, which knows receiver
        types.
        """
        if isinstance(func, ast.Name):
            name = func.id
            if name in module.functions:
                return module.functions[name]
            if name in module.classes:
                return module.classes[name]
            target = module.imports.get(name)
            if target is not None:
                if target in self.functions:
                    return self.functions[target]
                if target in self.classes:
                    return self.classes[target]
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            target = module.imports.get(func.value.id)
            if target is not None:
                dotted = f"{target}.{func.attr}"
                if dotted in self.functions:
                    return self.functions[dotted]
                if dotted in self.classes:
                    return self.classes[dotted]
        return None

    def bases_of(self, cls: ClassInfo) -> list[ClassInfo]:
        module = self.modules.get(cls.module_name)
        if module is None:
            return []
        out: list[ClassInfo] = []
        for base in cls.base_names:
            name = _annotation_class_name(base)
            resolved = self._resolve_class_name(module, name)
            if resolved is not None:
                out.append(resolved)
        return out

    def method_of(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        """Look a method up along the base-class chain."""
        seen: set[str] = set()
        queue: Deque[ClassInfo] = Deque([cls])
        while queue:
            current = queue.popleft()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if name in current.methods:
                return current.methods[name]
            queue.extend(self.bases_of(current))
        return None

    def attr_class_of(self, cls: ClassInfo, attr: str) -> Optional[ClassInfo]:
        """The class of ``instance.attr``, along the base chain."""
        seen: set[str] = set()
        queue: Deque[ClassInfo] = Deque([cls])
        while queue:
            current = queue.popleft()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            qualname = current.attr_classes.get(attr)
            if qualname is not None:
                return self.classes.get(qualname) if qualname else None
            queue.extend(self.bases_of(current))
        return None

    def attr_domain_of(self, cls: ClassInfo, attr: str) -> Optional[Domain]:
        seen: set[str] = set()
        queue: Deque[ClassInfo] = Deque([cls])
        while queue:
            current = queue.popleft()
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if attr in current.attr_domains:
                return current.attr_domains[attr]
            queue.extend(self.bases_of(current))
        return None


def reachable_from(
    roots: Mapping[str, str], edges: Mapping[str, set[str]]
) -> dict[str, str]:
    """BFS over the call graph.

    ``roots`` maps root qualnames to a human-readable origin ("scheduled
    by ...").  Returns every reachable qualname mapped to the chain
    origin (its root's description), which the SIM011 messages quote.
    """
    origin: dict[str, str] = {}
    queue: Deque[str] = Deque()
    for qualname, description in sorted(roots.items()):
        if qualname not in origin:
            origin[qualname] = description
            queue.append(qualname)
    while queue:
        current = queue.popleft()
        for callee in sorted(edges.get(current, ())):
            if callee not in origin:
                origin[callee] = origin[current]
                queue.append(callee)
    return origin
