"""Core machinery of simlint: violations, rules, per-file context.

The checker is a single :func:`ast.parse` pass per file.  A
:class:`LintContext` wraps the parsed tree with everything rules need:

* parent links on every node (``ast`` does not provide them),
* the suppression table parsed from ``# simlint: disable=...`` comments,
* a cheap symbol table mapping names and attributes to ``"set"`` or
  ``"dict"`` when an assignment or annotation in the same file reveals
  the container type (used by the ordered-iteration rule).

Rules are small classes with a stable id (``SIM001``...), a kebab-case
name, and a ``check(context)`` generator yielding :class:`Violation`
objects.  Path scoping (which rules apply to which files) lives in
:mod:`repro.lint.config`, not in the rules themselves.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

if TYPE_CHECKING:
    from repro.lint.dataflow import ProjectAnalysis


@dataclass(frozen=True)
class Violation:
    """One finding: a rule fired at a location."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str
    #: Line-number-independent identity used by the baseline ratchet
    #: (attached after rule execution; not part of the JSON schema).
    fingerprint: str = ""

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "name": self.rule_name,
            "message": self.message,
        }


class Rule:
    """Base class for simlint rules.

    Subclasses set ``id`` (stable, ``SIMxxx``), ``name`` (kebab-case)
    and ``description`` and implement :meth:`check`.
    """

    id: str = "SIM000"
    name: str = "abstract-rule"
    description: str = ""

    def check(self, context: "LintContext") -> Iterator[Violation]:
        raise NotImplementedError

    def violation(
        self, context: "LintContext", node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            path=context.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            rule_name=self.name,
            message=message,
        )


class ProjectRule(Rule):
    """A rule that needs the whole-project dataflow analysis.

    Project rules run once per lint invocation, after every file has
    been parsed, against the :class:`repro.lint.dataflow.ProjectAnalysis`
    built over all in-scope files.  Their findings still go through the
    same per-file suppression and path-scoping machinery as single-file
    rules (keyed on the *finding's* path).  ``check()`` is a no-op so a
    project rule is inert when applied file-at-a-time.
    """

    def check(self, context: "LintContext") -> Iterator[Violation]:
        return iter(())

    def check_project(self, analysis: "ProjectAnalysis") -> Iterator[Violation]:
        raise NotImplementedError

    def violation_at(
        self, path: str, line: int, col: int, message: str
    ) -> Violation:
        return Violation(
            path=path.replace("\\", "/"),
            line=line,
            col=col,
            rule_id=self.id,
            rule_name=self.name,
            message=message,
        )


#: ``# simlint: disable=SIM001,SIM003 -- optional justification``
#: ``# simlint: disable-file=SIM006 -- optional justification``
_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+?)(?:\s*--.*)?$"
)

_SET_TYPE_NAMES = frozenset({"set", "Set", "frozenset", "FrozenSet", "MutableSet"})
_DICT_TYPE_NAMES = frozenset(
    {"dict", "Dict", "defaultdict", "DefaultDict", "OrderedDict", "Counter", "Mapping", "MutableMapping"}
)


def _root_type_name(annotation: ast.expr) -> Optional[str]:
    """``set[int]`` -> ``set``; ``typing.Dict[str, int]`` -> ``Dict``."""
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _value_container_kind(value: ast.expr) -> Optional[str]:
    """Classify an assigned value expression as ``"set"``/``"dict"``."""
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, (ast.Dict, ast.DictComp)):
        return "dict"
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        if name in ("set", "frozenset"):
            return "set"
        if name in ("dict", "defaultdict", "OrderedDict", "Counter"):
            return "dict"
    return None


class LintContext:
    """Everything a rule needs to inspect one source file."""

    def __init__(self, path: str, source: str, tree: Optional[ast.Module] = None) -> None:
        #: Normalised, forward-slash path used for reporting and scoping.
        self.path = path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree if tree is not None else ast.parse(source, filename=path)
        self._link_parents()
        #: line number -> set of suppressed rule ids on that line.
        self.line_suppressions: dict[int, set[str]] = {}
        #: rule ids suppressed for the whole file.
        self.file_suppressions: set[str] = set()
        self._parse_suppressions()
        #: plain name  -> "set" | "dict"  (module/function locals alike).
        self.name_kinds: dict[str, str] = {}
        #: attribute name -> "set" | "dict" (from ``self.x = set()`` etc).
        self.attr_kinds: dict[str, str] = {}
        self._infer_container_kinds()

    # -- construction helpers -----------------------------------------
    def _link_parents(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                child.simlint_parent = node  # type: ignore[attr-defined]

    def _parse_suppressions(self) -> None:
        # A trailing comment suppresses its own line.  A standalone
        # comment line suppresses the next code line (the justification
        # may continue over further comment lines).  Decorator lines
        # both receive and propagate the carry, so a comment above
        # ``@decorator`` reaches the ``def`` line where function-level
        # findings (e.g. SIM011) are reported.
        carry: set[str] = set()
        for lineno, text in enumerate(self.lines, start=1):
            stripped = text.strip()
            match = _SUPPRESS_RE.search(text)
            if match is not None:
                kind, ids = match.group(1), match.group(2)
                rule_ids = {part.strip() for part in ids.split(",") if part.strip()}
                if kind == "disable-file":
                    self.file_suppressions |= rule_ids
                    continue
                self.line_suppressions.setdefault(lineno, set()).update(rule_ids)
                if stripped.startswith("#"):
                    carry |= rule_ids
                elif carry:
                    self.line_suppressions[lineno] |= carry
                    if not stripped.startswith("@"):
                        carry = set()
                continue
            if stripped.startswith("#") or not stripped:
                continue  # comment/blank continuation keeps the carry
            if carry:
                self.line_suppressions.setdefault(lineno, set()).update(carry)
                if not stripped.startswith("@"):
                    carry = set()

    def _record_kind(self, target: ast.expr, kind: str) -> None:
        if isinstance(target, ast.Name):
            self.name_kinds[target.id] = kind
        elif isinstance(target, ast.Attribute):
            self.attr_kinds[target.attr] = kind

    def _infer_container_kinds(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Assign):
                kind = _value_container_kind(node.value)
                if kind is not None:
                    for target in node.targets:
                        self._record_kind(target, kind)
            elif isinstance(node, ast.AnnAssign):
                root = _root_type_name(node.annotation)
                if root in _SET_TYPE_NAMES:
                    self._record_kind(node.target, "set")
                elif root in _DICT_TYPE_NAMES:
                    self._record_kind(node.target, "dict")
                elif node.value is not None:
                    kind = _value_container_kind(node.value)
                    if kind is not None:
                        self._record_kind(node.target, kind)
            elif isinstance(node, ast.arg) and node.annotation is not None:
                root = _root_type_name(node.annotation)
                if root in _SET_TYPE_NAMES:
                    self.name_kinds[node.arg] = "set"
                elif root in _DICT_TYPE_NAMES:
                    self.name_kinds[node.arg] = "dict"

    # -- query API used by rules --------------------------------------
    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, "simlint_parent", None)

    def container_kind(self, expr: ast.expr) -> Optional[str]:
        """``"set"``/``"dict"`` when the file reveals the container type."""
        direct = _value_container_kind(expr)
        if direct is not None:
            return direct
        if isinstance(expr, ast.Name):
            return self.name_kinds.get(expr.id)
        if isinstance(expr, ast.Attribute):
            return self.attr_kinds.get(expr.attr)
        return None

    def is_suppressed(self, violation: Violation) -> bool:
        if violation.rule_id in self.file_suppressions or "all" in self.file_suppressions:
            return True
        on_line = self.line_suppressions.get(violation.line, set())
        return violation.rule_id in on_line or "all" in on_line

    def suppressed_count(self, rule_id: str) -> int:
        count = sum(1 for ids in self.line_suppressions.values() if rule_id in ids)
        return count + (1 if rule_id in self.file_suppressions else 0)


def run_rules(
    context: LintContext, rules: Iterable[Rule]
) -> tuple[list[Violation], int]:
    """Apply ``rules`` to one file; returns (violations, suppressed)."""
    kept: list[Violation] = []
    suppressed = 0
    for rule in rules:
        for violation in rule.check(context):
            if context.is_suppressed(violation):
                suppressed += 1
            else:
                kept.append(violation)
    kept.sort(key=Violation.sort_key)
    return kept, suppressed
