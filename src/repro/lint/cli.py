"""The ``python -m repro.lint`` command line.

Usage::

    python -m repro.lint src/                    # lint a tree
    python -m repro.lint --format json src/      # machine-readable
    python -m repro.lint --format sarif src/     # SARIF 2.1.0 log
    python -m repro.lint --select SIM003 src/    # one rule only
    python -m repro.lint --ignore SIM006 src/    # all but one
    python -m repro.lint --list-rules            # rule table

    python -m repro.lint baseline src/           # snapshot findings
    python -m repro.lint src/ --baseline         # report only NEW ones

    python -m repro.lint --purity-map purity.json src/
    python -m repro.lint --cache-dir .simlint-cache --timings src/

Exit codes: ``0`` no (new) violations, ``1`` violations found, ``2`` bad
usage or an unreadable/unparsable input file (unparsable files are also
reported as structured ``E999`` findings).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
import time
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint.baseline import (
    DEFAULT_BASELINE_PATH,
    BaselineError,
    attach_fingerprints,
    load_baseline,
    split_by_baseline,
    write_baseline,
)
from repro.lint.cache import AnalysisCache, analysis_signature, source_digest
from repro.lint.config import path_is_globally_exempt, rule_applies
from repro.lint.dataflow import ProjectAnalysis
from repro.lint.framework import LintContext, ProjectRule, Rule, Violation
from repro.lint.reporting import format_json, format_sarif, format_text
from repro.lint.rules import ALL_RULES, rule_by_id


def iter_python_files(paths: Iterable[str]) -> Iterable[str]:
    """Expand files/directories into a sorted stream of ``*.py`` paths."""
    collected: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                collected.extend(
                    os.path.join(dirpath, name)
                    for name in filenames
                    if name.endswith(".py")
                )
        else:
            collected.append(path)
    return sorted(set(collected))


def _select_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> tuple[Rule, ...]:
    if select:
        rules = tuple(rule_by_id(rule_id) for rule_id in select)
    else:
        rules = ALL_RULES
    if ignore:
        dropped = {rule_by_id(rule_id).id for rule_id in ignore}
        rules = tuple(rule for rule in rules if rule.id not in dropped)
    return rules


def _parse_failure(
    path: str, exc: Exception
) -> Tuple[Violation, str]:
    """Structured ``E999`` finding + stderr line for an unparsable file."""
    if isinstance(exc, SyntaxError):
        line = exc.lineno or 1
        col = exc.offset or 1
        detail = exc.msg or "invalid syntax"
    else:  # ValueError (null bytes), UnicodeDecodeError
        line, col = 1, 1
        detail = str(exc)
    violation = Violation(
        path=path,
        line=line,
        col=col,
        rule_id="E999",
        rule_name="syntax-error",
        message=f"cannot parse file: {detail}",
    )
    return violation, f"{path}:{line}: syntax error: {detail}"


class _LintRun:
    """One lint invocation over a fixed file set.

    Splits the work into (a) per-file rules, cached per source blob, and
    (b) the cross-module project rules, cached per exact file-set
    digest.  Parsing is lazy: on a fully warm cache no file is parsed at
    all.
    """

    def __init__(
        self,
        rules: tuple[Rule, ...],
        respect_scoping: bool,
        cache: Optional[AnalysisCache],
    ) -> None:
        self.file_rules = tuple(r for r in rules if not isinstance(r, ProjectRule))
        self.project_rules = tuple(r for r in rules if isinstance(r, ProjectRule))
        self.respect_scoping = respect_scoping
        self.cache = cache
        self.violations: list[Violation] = []
        self.errors: list[str] = []
        self.files_checked = 0
        self.suppressed = 0
        self.timings: Dict[str, float] = {}
        self.purity_map: dict[str, dict[str, object]] = {}
        #: path -> source text, for every readable input file.
        self._sources: Dict[str, str] = {}
        self._digests: Dict[str, str] = {}
        self._contexts: Dict[str, Optional[LintContext]] = {}

    # -- timing --------------------------------------------------------
    def _timed(self, key: str, start: float) -> None:
        self.timings[key] = self.timings.get(key, 0.0) + (
            time.perf_counter() - start
        )

    # -- lazy parsing --------------------------------------------------
    def _context(self, path: str) -> Optional[LintContext]:
        """Parse ``path`` (memoised); None when it cannot be parsed."""
        if path in self._contexts:
            return self._contexts[path]
        start = time.perf_counter()
        try:
            context: Optional[LintContext] = LintContext(
                path, self._sources[path]
            )
        except (SyntaxError, ValueError) as exc:
            violation, error = _parse_failure(path, exc)
            lines = self._sources[path].splitlines()
            self.violations.extend(
                attach_fingerprints([violation], {path: lines})
            )
            self.errors.append(error)
            context = None
        self._timed("parse", start)
        self._contexts[path] = context
        return context

    # -- per-file rules ------------------------------------------------
    def _run_file_rules(self, path: str) -> bool:
        """Lint one file with the single-file rules; returns False when
        the file could not be parsed."""
        digest = self._digests[path]
        if self.cache is not None:
            key = self.cache.file_key(path, digest)
            cached = self.cache.load(key)
            if cached is not None:
                found, suppressed = cached
                self.violations.extend(found)
                self.suppressed += suppressed
                return True
        context = self._context(path)
        if context is None:
            return False
        found: list[Violation] = []
        suppressed = 0
        if self.respect_scoping:
            in_scope = tuple(
                r for r in self.file_rules if rule_applies(r, context.path)
            )
        else:
            in_scope = self.file_rules
        for rule in in_scope:
            start = time.perf_counter()
            for violation in rule.check(context):
                if context.is_suppressed(violation):
                    suppressed += 1
                else:
                    found.append(violation)
            self._timed(rule.id, start)
        found = attach_fingerprints(found, {path: context.lines})
        self.violations.extend(found)
        self.suppressed += suppressed
        if self.cache is not None:
            self.cache.store(self.cache.file_key(path, digest), found, suppressed)
        return True

    # -- project rules -------------------------------------------------
    def _run_project_rules(self, parsed_ok: list[str]) -> None:
        if not self.project_rules and not self.purity_requested:
            return
        entries = [(path, self._digests[path]) for path in parsed_ok]
        key: Optional[str] = None
        if self.cache is not None:
            key = self.cache.project_key(entries)
            if not self.purity_requested:
                cached = self.cache.load(key)
                if cached is not None:
                    found, suppressed = cached
                    self.violations.extend(found)
                    self.suppressed += suppressed
                    return
        start = time.perf_counter()
        trees: list[tuple[str, ast.Module]] = []
        contexts: dict[str, LintContext] = {}
        for path in parsed_ok:
            context = self._context(path)
            if context is not None:
                trees.append((path, context.tree))
                contexts[path] = context
        analysis = ProjectAnalysis.build(trees)
        self._timed("analysis", start)
        if self.purity_requested:
            self.purity_map = analysis.purity_map()
        found: list[Violation] = []
        suppressed = 0
        for rule in self.project_rules:
            start = time.perf_counter()
            for violation in rule.check_project(analysis):
                if self.respect_scoping and not rule_applies(rule, violation.path):
                    continue
                context = contexts.get(violation.path)
                if context is not None and context.is_suppressed(violation):
                    suppressed += 1
                else:
                    found.append(violation)
            self._timed(rule.id, start)
        lines_by_path = {p: c.lines for p, c in contexts.items()}
        found = attach_fingerprints(found, lines_by_path)
        self.violations.extend(found)
        self.suppressed += suppressed
        if self.cache is not None and key is not None:
            self.cache.store(key, found, suppressed)

    purity_requested: bool = False

    # -- driver --------------------------------------------------------
    def run(self, paths: Sequence[str]) -> None:
        for filename in iter_python_files(paths):
            normalised = filename.replace("\\", "/")
            if self.respect_scoping and path_is_globally_exempt(normalised):
                continue
            try:
                with open(filename, "r", encoding="utf-8") as handle:
                    source = handle.read()
            except OSError as exc:
                self.errors.append(f"{normalised}: {exc}")
                continue
            except UnicodeDecodeError as exc:
                violation, error = _parse_failure(normalised, exc)
                self.violations.extend(attach_fingerprints([violation], {}))
                self.errors.append(error)
                continue
            self._sources[normalised] = source
            self._digests[normalised] = source_digest(source)
        parsed_ok: list[str] = []
        for path in sorted(self._sources):
            if self._run_file_rules(path):
                parsed_ok.append(path)
        self.files_checked = len(parsed_ok)
        self._run_project_rules(parsed_ok)
        self.violations.sort(key=Violation.sort_key)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    respect_scoping: bool = True,
    *,
    cache_dir: Optional[str] = None,
    details: Optional[dict[str, object]] = None,
    purity: bool = False,
) -> tuple[list[Violation], int, int, list[str]]:
    """Lint ``paths``; returns (violations, files_checked, suppressed, errors).

    ``respect_scoping=False`` applies every rule to every file (used by
    the fixture tests, where paths are temp files outside the tree).
    ``cache_dir`` enables the on-disk result cache; ``details`` (a dict
    filled in place) receives per-rule ``timings``, cache statistics and
    the SIM011 ``purity_map`` when ``purity`` is set.
    """
    rules = _select_rules(select, ignore)
    cache: Optional[AnalysisCache] = None
    if cache_dir is not None:
        signature = analysis_signature([r.id for r in rules])
        cache = AnalysisCache(cache_dir, signature)
    run = _LintRun(rules, respect_scoping, cache)
    run.purity_requested = purity
    run.run(paths)
    if details is not None:
        details["timings"] = dict(run.timings)
        details["purity_map"] = run.purity_map
        if cache is not None:
            details["cache"] = {"hits": cache.hits, "misses": cache.misses}
    return run.violations, run.files_checked, run.suppressed, run.errors


def _print_rule_table() -> None:
    width = max(len(rule.name) for rule in ALL_RULES)
    for rule in ALL_RULES:
        print(f"{rule.id}  {rule.name:<{width}}  {rule.description}")


def _print_timings(timings: Dict[str, float]) -> None:
    total = sum(timings.values())
    print("simlint timings:", file=sys.stderr)
    for key in sorted(timings, key=lambda k: -timings[k]):
        print(f"  {key:<10} {timings[key] * 1000.0:8.1f} ms", file=sys.stderr)
    print(f"  {'total':<10} {total * 1000.0:8.1f} ms", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simulator-invariant static analysis for the repro codebase",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint; prefix with the `baseline` "
        "subcommand to snapshot current findings",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="output_format",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="SIMxxx",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="SIMxxx",
        help="skip these rule ids (repeatable)",
    )
    parser.add_argument(
        "--no-scoping",
        action="store_true",
        help="apply every rule to every file, ignoring path scoping",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE_PATH,
        metavar="PATH",
        help="hide findings recorded in the baseline snapshot "
        f"(default path: {DEFAULT_BASELINE_PATH})",
    )
    parser.add_argument(
        "--sarif-file",
        metavar="PATH",
        help="additionally write a SARIF 2.1.0 log to PATH",
    )
    parser.add_argument(
        "--purity-map",
        metavar="PATH",
        help="write the SIM011 scheduling-path purity map (JSON) to PATH",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="cache per-file and whole-project analysis results in DIR",
    )
    parser.add_argument(
        "--timings",
        action="store_true",
        help="print per-rule wall time to stderr",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rule_table()
        return 0

    paths: List[str] = list(args.paths)
    baseline_write = bool(paths) and paths[0] == "baseline"
    if baseline_write:
        paths = paths[1:]
    if not paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2

    details: dict[str, object] = {}
    try:
        violations, files_checked, suppressed, errors = lint_paths(
            paths,
            select=args.select,
            ignore=args.ignore,
            respect_scoping=not args.no_scoping,
            cache_dir=args.cache_dir,
            details=details,
            purity=args.purity_map is not None,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.purity_map:
        with open(args.purity_map, "w", encoding="utf-8") as handle:
            json.dump(details.get("purity_map", {}), handle, indent=2, sort_keys=True)
            handle.write("\n")

    if baseline_write:
        target = args.baseline or DEFAULT_BASELINE_PATH
        count = write_baseline(target, violations)
        print(f"simlint: baseline of {count} findings written to {target}")
        for error in errors:
            print(f"error: {error}", file=sys.stderr)
        return 2 if errors else 0

    baselined = 0
    if args.baseline:
        try:
            known = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        violations, baselined = split_by_baseline(violations, known)

    rules = _select_rules(args.select, args.ignore)
    if args.sarif_file:
        with open(args.sarif_file, "w", encoding="utf-8") as handle:
            handle.write(format_sarif(violations, rules))
            handle.write("\n")

    if args.output_format == "sarif":
        print(format_sarif(violations, rules))
    elif args.output_format == "json":
        print(format_json(violations, files_checked, suppressed))
    else:
        print(format_text(violations, files_checked, suppressed))

    if baselined:
        print(
            f"simlint: {baselined} baselined finding(s) hidden "
            f"({args.baseline})",
            file=sys.stderr,
        )
    if args.timings:
        timings = details.get("timings")
        if isinstance(timings, dict):
            _print_timings(timings)
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        return 2
    return 1 if violations else 0
