"""The ``python -m repro.lint`` command line.

Usage::

    python -m repro.lint src/                    # lint a tree
    python -m repro.lint --format json src/      # machine-readable
    python -m repro.lint --select SIM003 src/    # one rule only
    python -m repro.lint --ignore SIM006 src/    # all but one
    python -m repro.lint --list-rules            # rule table

Exit codes: ``0`` no violations, ``1`` violations found, ``2`` bad
usage or an unreadable/unparsable input file.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Iterable, Optional, Sequence

from repro.lint.config import path_is_globally_exempt, rule_applies
from repro.lint.framework import LintContext, Rule, Violation, run_rules
from repro.lint.reporting import format_json, format_text
from repro.lint.rules import ALL_RULES, rule_by_id


def iter_python_files(paths: Iterable[str]) -> Iterable[str]:
    """Expand files/directories into a sorted stream of ``*.py`` paths."""
    collected: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in ("__pycache__", ".git")
                )
                collected.extend(
                    os.path.join(dirpath, name)
                    for name in filenames
                    if name.endswith(".py")
                )
        else:
            collected.append(path)
    return sorted(set(collected))


def _select_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> tuple[Rule, ...]:
    if select:
        rules = tuple(rule_by_id(rule_id) for rule_id in select)
    else:
        rules = ALL_RULES
    if ignore:
        dropped = {rule_by_id(rule_id).id for rule_id in ignore}
        rules = tuple(rule for rule in rules if rule.id not in dropped)
    return rules


def lint_paths(
    paths: Sequence[str],
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    respect_scoping: bool = True,
) -> tuple[list[Violation], int, int, list[str]]:
    """Lint ``paths``; returns (violations, files_checked, suppressed, errors).

    ``respect_scoping=False`` applies every rule to every file (used by
    the fixture tests, where paths are temp files outside the tree).
    """
    rules = _select_rules(select, ignore)
    violations: list[Violation] = []
    errors: list[str] = []
    files_checked = 0
    suppressed_total = 0
    for filename in iter_python_files(paths):
        if respect_scoping and path_is_globally_exempt(filename):
            continue
        try:
            with open(filename, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            errors.append(f"{filename}: {exc}")
            continue
        try:
            context = LintContext(filename, source)
        except SyntaxError as exc:
            errors.append(f"{filename}: syntax error: {exc}")
            continue
        files_checked += 1
        if respect_scoping:
            in_scope = tuple(r for r in rules if rule_applies(r, context.path))
        else:
            in_scope = rules
        found, suppressed = run_rules(context, in_scope)
        violations.extend(found)
        suppressed_total += suppressed
    violations.sort(key=Violation.sort_key)
    return violations, files_checked, suppressed_total, errors


def _print_rule_table() -> None:
    width = max(len(rule.name) for rule in ALL_RULES)
    for rule in ALL_RULES:
        print(f"{rule.id}  {rule.name:<{width}}  {rule.description}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simulator-invariant static analysis for the repro codebase",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="output_format"
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="SIMxxx",
        help="run only these rule ids (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="SIMxxx",
        help="skip these rule ids (repeatable)",
    )
    parser.add_argument(
        "--no-scoping",
        action="store_true",
        help="apply every rule to every file, ignoring path scoping",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule table and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        _print_rule_table()
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2

    try:
        violations, files_checked, suppressed, errors = lint_paths(
            args.paths,
            select=args.select,
            ignore=args.ignore,
            respect_scoping=not args.no_scoping,
        )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    formatter = format_json if args.output_format == "json" else format_text
    print(formatter(violations, files_checked, suppressed))
    for error in errors:
        print(f"error: {error}", file=sys.stderr)
    if errors:
        return 2
    return 1 if violations else 0
