"""On-disk result cache for repeated lint runs (``--cache-dir``).

Two granularities:

* **per file** -- the single-file rules' findings for one source blob,
  keyed on ``sha256(source) + analysis signature``;
* **per project** -- the cross-module rules' findings for one exact set
  of ``(path, source hash)`` pairs, keyed on the set's digest.

The *analysis signature* folds in the source of the lint package itself
plus the rule selection, so editing any rule (or selecting different
ones) invalidates everything.  Entries are plain JSON; a corrupt or
unreadable entry is treated as a miss.  CI persists the cache directory
between the simlint/ruff/mypy steps' runs with ``actions/cache``.
"""

from __future__ import annotations

import functools
import hashlib
import json
import os
from typing import Iterable, Optional, Sequence

from repro.lint.framework import Violation


def analysis_signature(rule_ids: Sequence[str]) -> str:
    """Digest of the lint package's own sources plus the rule selection."""
    return _analysis_signature(tuple(sorted(rule_ids)))


@functools.lru_cache(maxsize=None)
def _analysis_signature(key: tuple[str, ...]) -> str:
    digest = hashlib.sha256()
    package_dir = os.path.dirname(os.path.abspath(__file__))
    for name in sorted(os.listdir(package_dir)):
        if not name.endswith(".py"):
            continue
        digest.update(name.encode("utf-8"))
        try:
            with open(os.path.join(package_dir, name), "rb") as handle:
                digest.update(handle.read())
        except OSError:
            digest.update(b"<unreadable>")
    for rule_id in key:
        digest.update(rule_id.encode("utf-8"))
    return digest.hexdigest()


def source_digest(source: str) -> str:
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


class AnalysisCache:
    """JSON blobs under one directory, content-addressed by digest."""

    def __init__(self, directory: str, signature: str) -> None:
        self.directory = directory
        self.signature = signature
        self.hits = 0
        self.misses = 0
        os.makedirs(directory, exist_ok=True)

    # -- keys ----------------------------------------------------------
    def file_key(self, path: str, digest: str) -> str:
        payload = f"file|{self.signature}|{path}|{digest}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def project_key(self, entries: Iterable[tuple[str, str]]) -> str:
        digest = hashlib.sha256(f"project|{self.signature}".encode("utf-8"))
        for path, source_hash in sorted(entries):
            digest.update(f"|{path}|{source_hash}".encode("utf-8"))
        return digest.hexdigest()

    # -- storage -------------------------------------------------------
    def _entry_path(self, key: str) -> str:
        return os.path.join(self.directory, f"{key}.json")

    def load(self, key: str) -> Optional[tuple[list[Violation], int]]:
        """(violations, suppressed count) for ``key``, or None on miss."""
        try:
            with open(self._entry_path(key), "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            violations = [
                Violation(
                    path=str(item["path"]),
                    line=int(item["line"]),
                    col=int(item["col"]),
                    rule_id=str(item["rule"]),
                    rule_name=str(item["name"]),
                    message=str(item["message"]),
                    fingerprint=str(item.get("fingerprint", "")),
                )
                for item in payload["violations"]
            ]
            suppressed = int(payload["suppressed"])
        except (OSError, ValueError, KeyError, TypeError):
            self.misses += 1
            return None
        self.hits += 1
        return violations, suppressed

    def store(
        self, key: str, violations: Sequence[Violation], suppressed: int
    ) -> None:
        payload = {
            "violations": [
                {**v.as_dict(), "fingerprint": v.fingerprint} for v in violations
            ],
            "suppressed": suppressed,
        }
        tmp_path = self._entry_path(key) + ".tmp"
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, separators=(",", ":"), sort_keys=True)
            os.replace(tmp_path, self._entry_path(key))
        except OSError:
            # A read-only or full cache directory must not fail the lint.
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
