"""``python -m repro``: a one-command tour of the simulator.

Runs a preconditioned mixed workload on the demo configuration and
prints the metrics panel -- the quickest way to see the simulator move.
Pass ``--help`` for the few supported knobs; the fuller interactive
console lives in ``examples/demo_console.py``.
"""

import argparse

from repro import FtlKind, Simulation, demo_config
from repro.workloads import MixedWorkloadThread, precondition_sequential


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    parser.add_argument("--channels", type=int, default=4)
    parser.add_argument("--ops", type=int, default=10_000)
    parser.add_argument(
        "--ftl", choices=[kind.value for kind in FtlKind], default="page"
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    config = demo_config(seed=args.seed)
    config.geometry.channels = args.channels
    config.controller.ftl = FtlKind(args.ftl)
    config.validate()
    print(config.describe())
    print()

    simulation = Simulation(config)
    prep = precondition_sequential(config.logical_pages)
    simulation.add_thread(prep)
    simulation.add_thread(
        MixedWorkloadThread("app", count=args.ops, read_fraction=0.5, depth=16),
        depends_on=[prep.name],
    )
    result = simulation.run()
    print(result.report())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
