"""Parallel sweep execution.

The paper's whole point (Section 2.1) is making design-space
explorations of "hundreds of experiments" tractable.  Every run of a
sweep is an independent simulation -- same code, different
configuration -- so the sweep is embarrassingly parallel across
processes.  This module provides the machinery:

* :class:`RunSpec` -- one picklable unit of work: a fully-prepared
  configuration, a reference to the workload factory, and the time
  limit.  The parameter values have already been applied to the config
  by the experiment template, so workers never see ``Parameter`` objects
  (whose ``setter`` may be an unpicklable lambda).
* :class:`SweepExecutor` -- fans specs out over a
  :class:`concurrent.futures.ProcessPoolExecutor` and reassembles the
  :class:`~repro.core.simulation.SimulationResult` objects in
  deterministic sweep order, regardless of completion order.
  ``workers=1`` (the default) runs every spec in-process, exactly like
  the historical serial path.

Picklability rules (see docs/GUIDE.md "Running sweeps in parallel"):
the workload factory must be an importable module-level callable (or a
``functools.partial`` of one); closures and lambdas only work with
``workers=1``.  A worker failure is surfaced as a :class:`SweepRunError`
naming the failing run -- never as a hung sweep.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, Sequence

from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation, SimulationResult


class SweepRunError(RuntimeError):
    """One run of a parallel sweep failed.

    Carries enough context to reproduce the failure serially:
    ``index`` and ``label`` identify the run within the sweep, and
    ``cause`` is the underlying exception (possibly re-raised from a
    worker process).
    """

    def __init__(self, index: int, label: object, cause: BaseException) -> None:
        self.index = index
        self.label = label
        self.cause = cause
        super().__init__(
            f"sweep run #{index} ({label!r}) failed: "
            f"{type(cause).__name__}: {cause}"
        )


@dataclass
class RunSpec:
    """One independent simulation of a sweep, ready to ship to a worker.

    ``config`` already carries the swept parameter values; ``workload``
    is called with the config in the worker to build the threads (so
    thread objects themselves never cross the process boundary).
    """

    config: SimulationConfig
    workload: Callable[[SimulationConfig], object]
    max_time_ns: Optional[int] = None
    #: Position within the sweep; results are reassembled by this index.
    index: int = 0
    #: Human-readable identity (the parameter value / grid cell) used in
    #: error messages and progress callbacks.
    label: object = None

    def execute(self) -> SimulationResult:
        """Run this spec in the current process."""
        simulation = Simulation(self.config)
        for entry in self.workload(self.config):
            if isinstance(entry, tuple):
                thread, depends_on = entry
                simulation.add_thread(thread, depends_on=depends_on)
            else:
                simulation.add_thread(entry)
        return simulation.run(max_time_ns=self.max_time_ns)


def _execute_spec(spec: RunSpec) -> SimulationResult:
    """Module-level worker entry point (picklable under every start
    method)."""
    return spec.execute()


def default_workers() -> int:
    """A sensible worker count for "use all cores": the CPU count."""
    return os.cpu_count() or 1


class SweepExecutor:
    """Runs the independent simulations of a sweep, serially or across a
    process pool.

    ::

        executor = SweepExecutor(workers=4)
        results = executor.map(specs)          # sweep order preserved

    ``workers=1`` executes in-process with no pickling, byte-for-byte
    the historical serial path.  With ``workers > 1`` each spec is
    pickled to a worker process; results stream back and are delivered
    in spec order, so progress callbacks and result lists are
    deterministic regardless of which worker finishes first.
    """

    def __init__(self, workers: int = 1) -> None:
        if workers is None:
            workers = default_workers()
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        self.workers = workers

    def map(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[Callable[[RunSpec, SimulationResult], None]] = None,
    ) -> list[SimulationResult]:
        """Execute every spec; return results in spec order.

        ``progress`` is invoked in sweep order as each run's result
        becomes available.  Any failing run aborts the sweep with a
        :class:`SweepRunError` identifying it (outstanding runs are
        cancelled where possible).
        """
        return list(self.imap(specs, progress=progress))

    def imap(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[Callable[[RunSpec, SimulationResult], None]] = None,
    ) -> Iterator[SimulationResult]:
        """Like :meth:`map` but yields results lazily, in spec order."""
        specs = list(specs)
        if self.workers == 1 or len(specs) <= 1:
            yield from self._run_serial(specs, progress)
        else:
            yield from self._run_parallel(specs, progress)

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _run_serial(
        self, specs: Sequence[RunSpec], progress: Optional[Callable[[int, int], None]]
    ) -> Iterator[SimulationResult]:
        for spec in specs:
            try:
                result = spec.execute()
            except Exception as error:
                raise SweepRunError(spec.index, spec.label, error) from error
            if progress is not None:
                progress(spec, result)
            yield result

    def _run_parallel(
        self, specs: Sequence[RunSpec], progress: Optional[Callable[[int, int], None]]
    ) -> Iterator[SimulationResult]:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.workers, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_execute_spec, spec) for spec in specs]
            try:
                # Deliver strictly in sweep order: waiting on futures in
                # submission order keeps results and progress callbacks
                # deterministic while the pool completes out of order
                # behind the scenes.
                for spec, future in zip(specs, futures):
                    try:
                        result = future.result()
                    except Exception as error:
                        # A worker crash (BrokenProcessPool) or a
                        # pickling failure lands here too: name the run
                        # instead of hanging or dying anonymously.
                        raise SweepRunError(spec.index, spec.label, error) from error
                    if progress is not None:
                        progress(spec, result)
                    yield result
            finally:
                for future in futures:
                    future.cancel()
