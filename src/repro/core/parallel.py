"""Parallel sweep execution.

The paper's whole point (Section 2.1) is making design-space
explorations of "hundreds of experiments" tractable.  Every run of a
sweep is an independent simulation -- same code, different
configuration -- so the sweep is embarrassingly parallel across
processes.  This module provides the machinery:

* :class:`RunSpec` -- one picklable unit of work: a fully-prepared
  configuration, a reference to the workload factory, and the time
  limit.  The parameter values have already been applied to the config
  by the experiment template, so workers never see ``Parameter`` objects
  (whose ``setter`` may be an unpicklable lambda).
* :class:`SweepExecutor` -- fans specs out over a
  :class:`concurrent.futures.ProcessPoolExecutor` and reassembles the
  :class:`~repro.core.simulation.SimulationResult` objects in
  deterministic sweep order, regardless of completion order.
  ``workers=1`` (the default) runs every spec in-process, exactly like
  the historical serial path.

Picklability rules (see docs/GUIDE.md "Running sweeps in parallel"):
the workload factory must be an importable module-level callable (or a
``functools.partial`` of one); closures and lambdas only work with
``workers=1``.  A worker failure is surfaced as a :class:`SweepRunError`
naming the failing run -- never as a hung sweep.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Iterator,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Union,
)

from repro.core.canonical import canonical_value, canonical_workload, content_hash
from repro.core.config import SimulationConfig
from repro.core.simulation import Simulation, SimulationResult

#: ``workers`` as accepted by sweeps: a positive int, ``"auto"`` (one
#: worker per CPU) or ``None`` (same as ``"auto"``).
WorkerCount = Union[int, str, None]


class ResultSource(Protocol):
    """What :class:`SweepExecutor` needs from a result cache.

    Implemented by :class:`repro.service.cache.ResultCache`; defined
    here as a protocol so the core never imports the service layer.
    ``lookup`` returns a previously stored result for an equivalent spec
    (or ``None``, including for specs it refuses to key); ``store``
    persists a fresh result (and may decline silently).
    """

    def lookup(self, spec: "RunSpec") -> Optional[SimulationResult]: ...

    def store(self, spec: "RunSpec", result: SimulationResult) -> None: ...


class SweepJournalSource(Protocol):
    """What :class:`SweepExecutor` needs from a sweep journal.

    Implemented by :class:`repro.service.journal.SweepJournal`; defined
    here as a protocol so the core never imports the service layer.
    ``replay`` returns every already-completed cell of a sweep keyed by
    spec *position* (raising when the given specs are not the grid the
    journal was written for); ``record`` durably appends one freshly
    completed cell so a later ``replay`` can skip it.
    """

    def replay(
        self, specs: Sequence["RunSpec"]
    ) -> Mapping[int, SimulationResult]: ...

    def record(
        self, position: int, spec: "RunSpec", result: SimulationResult
    ) -> None: ...


class WorkerStalledError(RuntimeError):
    """A worker stopped making progress: hung, not merely slow.

    Raised by the supervised hardened path when a run's heartbeat --
    the engine's processed-event counter, sampled in the worker and
    piped back to the parent -- froze for ``stall_timeout`` seconds.  A
    *straggler* (slow but still advancing) never trips this; it is
    bounded only by the wall-clock ``timeout``.
    """

    def __init__(self, label: object, stall_timeout: float) -> None:
        self.label = label
        self.stall_timeout = stall_timeout
        super().__init__(
            f"run {label!r} made no progress for {stall_timeout:g}s "
            "(hung, not merely slow)"
        )


class SweepRunError(RuntimeError):
    """One run of a parallel sweep failed (its retry budget included).

    Carries enough context to reproduce the failure serially --
    ``index`` and ``label`` identify the run within the sweep, ``cause``
    is the underlying exception (possibly re-raised from a worker
    process) -- plus ``partial_results``: every run that *did* complete
    before the sweep aborted, keyed by spec index, so hours of finished
    simulations survive one bad grid cell.
    """

    def __init__(
        self,
        index: int,
        label: object,
        cause: BaseException,
        partial_results: Optional[dict[int, SimulationResult]] = None,
    ) -> None:
        self.index = index
        self.label = label
        self.cause = cause
        self.partial_results: dict[int, SimulationResult] = dict(
            partial_results or {}
        )
        salvage = (
            f" ({len(self.partial_results)} completed runs salvaged in"
            " partial_results)"
            if self.partial_results
            else ""
        )
        super().__init__(
            f"sweep run #{index} ({label!r}) failed: "
            f"{type(cause).__name__}: {cause}{salvage}"
        )


@dataclass
class RunSpec:
    """One independent simulation of a sweep, ready to ship to a worker.

    ``config`` already carries the swept parameter values; ``workload``
    is called with the config in the worker to build the threads (so
    thread objects themselves never cross the process boundary).
    """

    config: SimulationConfig
    workload: Callable[[SimulationConfig], object]
    max_time_ns: Optional[int] = None
    #: Position within the sweep; results are reassembled by this index.
    index: int = 0
    #: Human-readable identity (the parameter value / grid cell) used in
    #: error messages and progress callbacks.
    label: object = None

    def build(self) -> Simulation:
        """Materialise this spec's simulation without running it."""
        simulation = Simulation(self.config)
        for entry in self.workload(self.config):
            if isinstance(entry, tuple):
                thread, depends_on = entry
                simulation.add_thread(thread, depends_on=depends_on)
            else:
                simulation.add_thread(entry)
        return simulation

    def execute(self) -> SimulationResult:
        """Run this spec in the current process."""
        return self.build().run(max_time_ns=self.max_time_ns)

    def canonical(self) -> dict[str, object]:
        """The deterministic content description this spec is keyed by.

        Covers everything that determines the simulation's *results*:
        the fully materialised configuration, the workload factory's
        stable identity (with any ``functools.partial`` arguments) and
        the time limit.  ``index`` and ``label`` are bookkeeping --
        where a run sits within a sweep cannot change its numbers -- so
        they are deliberately excluded: the same cell reached from two
        different grids shares one key.  Raises
        :class:`~repro.core.canonical.UncacheableWorkloadError` when the
        workload has no stable identity (lambda/closure/``__main__``).
        """
        return {
            "config": canonical_value(self.config),
            "workload": canonical_workload(self.workload),
            "max_time_ns": self.max_time_ns,
        }

    def cache_key(self, fingerprint: str = "") -> str:
        """SHA-256 content key of this spec under ``fingerprint``.

        ``fingerprint`` is mixed into the hash (the service passes
        :func:`repro.core.canonical.code_fingerprint`), so results
        computed by different simulator versions never collide.
        """
        return content_hash({"fingerprint": fingerprint, "spec": self.canonical()})


def _execute_spec(spec: RunSpec) -> SimulationResult:
    """Module-level worker entry point (picklable under every start
    method)."""
    return spec.execute()


def _execute_spec_beating(
    spec: RunSpec, beats: Any, interval: float
) -> SimulationResult:
    """Worker entry point that publishes progress heartbeats.

    ``beats`` is a manager-backed mapping shared with the parent.  A
    daemon thread samples the engine's processed-event counter every
    ``interval`` seconds into ``beats[spec.index]``; the parent watches
    for the value to *change*, so a hung run (counter frozen inside one
    event, or stuck building its workload at the ``-1`` sentinel) is
    distinguishable from a straggler (counter advancing) without
    touching the simulation hot path.
    """
    import threading

    beats[spec.index] = -1  # started; still building the simulation
    holder: dict[str, Optional[Simulation]] = {"simulation": None}
    stop = threading.Event()

    def pulse() -> None:
        while not stop.wait(interval):
            simulation = holder["simulation"]
            value = -1 if simulation is None else simulation.sim.processed_events
            try:
                beats[spec.index] = value
            except Exception:  # parent gone; run on unsupervised
                return

    monitor = threading.Thread(target=pulse, name="sweep-heartbeat", daemon=True)
    monitor.start()
    try:
        simulation = spec.build()
        holder["simulation"] = simulation
        return simulation.run(max_time_ns=spec.max_time_ns)
    finally:
        stop.set()
        monitor.join()


def default_workers() -> int:
    """A sensible worker count for "use all cores": the CPU count."""
    return os.cpu_count() or 1


def resolve_workers(workers: WorkerCount) -> int:
    """Normalise a ``workers`` argument to a concrete positive count.

    ``"auto"`` (or ``None``) selects :func:`default_workers` -- one
    worker per CPU, which the executor further caps at the number of
    specs.  On a single-CPU box ``"auto"`` therefore resolves to 1 and
    takes the exact historical serial path (BENCH_sweep.json documents
    that fan-out only pays off with real cores).  Sweep *ordering* is
    unaffected either way: results always come back in spec order.
    """
    if workers is None:
        return default_workers()
    if isinstance(workers, str):
        if workers == "auto":
            return default_workers()
        raise ValueError(f"workers must be a positive int or 'auto' (got {workers!r})")
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise TypeError(f"workers must be a positive int or 'auto' (got {workers!r})")
    if workers < 1:
        raise ValueError(f"workers must be >= 1 (got {workers})")
    return workers


class SweepExecutor:
    """Runs the independent simulations of a sweep, serially or across a
    process pool.

    ::

        executor = SweepExecutor(workers=4)
        results = executor.map(specs)          # sweep order preserved

    ``workers=1`` executes in-process with no pickling, byte-for-byte
    the historical serial path.  With ``workers > 1`` each spec is
    pickled to a worker process; results stream back and are delivered
    in spec order, so progress callbacks and result lists are
    deterministic regardless of which worker finishes first.

    Hardening (long unattended sweeps, see E19):

    * ``timeout`` -- per-run wall-clock limit in seconds.  A run that
      exceeds it counts as failed; its worker process is killed and the
      pool recycled, so one hung simulation cannot wedge the sweep.
      Only enforced with ``workers > 1`` (a single process cannot
      preempt itself).
    * ``retries`` -- how many times a failed run (crashed worker,
      timeout, or raised exception) is re-executed before the sweep
      gives up.  Retries back off exponentially: attempt *n* waits
      ``retry_backoff * 2**(n-1)`` seconds.  Runs that were innocently
      interrupted by another run's crash are re-queued without being
      charged a retry.
    * ``stall_timeout`` -- supervision: workers pipe progress
      heartbeats (the engine's processed-event counter) back to the
      parent, and a run whose heartbeat freezes for this many seconds
      is killed as *hung* (:class:`WorkerStalledError`) -- long before
      a generous wall-clock ``timeout`` would fire -- while a straggler
      whose counter still advances is left alone.  Only enforced with
      ``workers > 1``, like ``timeout``.
    * When the budget is exhausted the raised :class:`SweepRunError`
      carries ``partial_results`` -- every completed
      :class:`SimulationResult` so far, keyed by spec index.

    Crash-safety (surviving the *orchestrator* dying, see the service
    layer): ``map``/``imap`` accept a ``journal`` -- completed cells
    recorded there by an earlier, killed process are replayed instead
    of re-run, and every fresh completion is appended durably.

    With the default ``timeout=None, retries=0, stall_timeout=None``
    the executor behaves exactly as it always has (streaming results
    lazily in spec order); the hardened path buffers a pass before
    yielding.
    """

    def __init__(
        self,
        workers: WorkerCount = 1,
        *,
        timeout: Optional[float] = None,
        retries: int = 0,
        retry_backoff: float = 0.5,
        stall_timeout: Optional[float] = None,
        heartbeat_interval: float = 0.25,
    ) -> None:
        workers = resolve_workers(workers)
        if workers < 1:
            raise ValueError(f"workers must be >= 1 (got {workers})")
        if timeout is not None and timeout <= 0:
            raise ValueError(f"timeout must be positive (got {timeout})")
        if retries < 0:
            raise ValueError(f"retries must be >= 0 (got {retries})")
        if retry_backoff < 0:
            raise ValueError(f"retry_backoff must be >= 0 (got {retry_backoff})")
        if stall_timeout is not None and stall_timeout <= 0:
            raise ValueError(f"stall_timeout must be positive (got {stall_timeout})")
        if heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be positive (got {heartbeat_interval})"
            )
        self.workers = workers
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self.stall_timeout = stall_timeout
        self.heartbeat_interval = heartbeat_interval

    def map(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[Callable[[RunSpec, SimulationResult], None]] = None,
        cache: Optional[ResultSource] = None,
        journal: Optional[SweepJournalSource] = None,
    ) -> list[SimulationResult]:
        """Execute every spec; return results in spec order.

        ``progress`` is invoked in sweep order as each run's result
        becomes available.  Any failing run aborts the sweep with a
        :class:`SweepRunError` identifying it (outstanding runs are
        cancelled where possible).  With a ``cache``, previously stored
        results are served without re-running and fresh results are
        stored back (see :meth:`imap`).  With a ``journal``, cells a
        previous (killed) process already completed are replayed and
        fresh completions are appended durably.
        """
        return list(self.imap(specs, progress=progress, cache=cache, journal=journal))

    def imap(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[Callable[[RunSpec, SimulationResult], None]] = None,
        cache: Optional[ResultSource] = None,
        journal: Optional[SweepJournalSource] = None,
    ) -> Iterator[SimulationResult]:
        """Like :meth:`map` but yields results lazily, in spec order."""
        specs = list(specs)
        if journal is not None:
            yield from self._run_journaled(specs, progress, cache, journal)
        elif cache is not None:
            yield from self._run_cached(specs, progress, cache)
        elif self.workers == 1 or len(specs) <= 1:
            yield from self._run_serial(specs, progress)
        elif (
            self.timeout is None
            and self.retries == 0
            and self.stall_timeout is None
        ):
            yield from self._run_parallel(specs, progress)
        else:
            yield from self._run_hardened(specs, progress)

    # ------------------------------------------------------------------
    # Execution strategies
    # ------------------------------------------------------------------
    def _run_journaled(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[Callable[[RunSpec, SimulationResult], None]],
        cache: Optional[ResultSource],
        journal: SweepJournalSource,
    ) -> Iterator[SimulationResult]:
        """Replay journaled cells, run the rest, append each fresh
        completion before yielding it.

        The journal is the crash-consistency layer: by the time a
        result is delivered downstream it is already durable, so a
        process killed at *any* instant loses at most the cell in
        flight.  Replay happens up front (the journal validates that
        the specs are the grid it was written for); the remaining cells
        flow through the normal cache/serial/parallel strategies.
        """
        replayed = journal.replay(specs)
        pending = [
            spec for position, spec in enumerate(specs) if position not in replayed
        ]
        fresh = self.imap(pending, cache=cache) if pending else iter(())
        try:
            for position, spec in enumerate(specs):
                if position in replayed:
                    result = replayed[position]
                else:
                    result = next(fresh)
                    journal.record(position, spec, result)
                if progress is not None:
                    progress(spec, result)
                yield result
        finally:
            close = getattr(fresh, "close", None)
            if close is not None:
                close()

    def _run_cached(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[Callable[[RunSpec, SimulationResult], None]],
        cache: ResultSource,
    ) -> Iterator[SimulationResult]:
        """Serve cache hits, execute the misses through the normal
        strategies, deliver everything lazily in spec order.

        Hits resolve up front; the misses keep their relative order, so
        the recursive :meth:`imap` over them streams back exactly the
        results the walk below needs next -- no buffering, and one hung
        miss never delays a hit that precedes it in spec order.
        """
        hits: dict[int, SimulationResult] = {}
        misses: list[RunSpec] = []
        for position, spec in enumerate(specs):
            found = cache.lookup(spec)
            if found is None:
                misses.append(spec)
            else:
                hits[position] = found
        fresh = self.imap(misses) if misses else iter(())
        try:
            for position, spec in enumerate(specs):
                if position in hits:
                    result = hits[position]
                else:
                    result = next(fresh)
                    cache.store(spec, result)
                if progress is not None:
                    progress(spec, result)
                yield result
        finally:
            close = getattr(fresh, "close", None)
            if close is not None:
                close()

    def _run_serial(
        self, specs: Sequence[RunSpec], progress: Optional[Callable[[int, int], None]]
    ) -> Iterator[SimulationResult]:
        completed: dict[int, SimulationResult] = {}
        for spec in specs:
            failures = 0
            while True:
                try:
                    result = spec.execute()
                    break
                except Exception as error:
                    failures += 1
                    if failures > self.retries:
                        raise SweepRunError(
                            spec.index, spec.label, error, partial_results=completed
                        ) from error
                    time.sleep(self.retry_backoff * (2 ** (failures - 1)))
            completed[spec.index] = result
            if progress is not None:
                progress(spec, result)
            yield result

    def _run_parallel(
        self, specs: Sequence[RunSpec], progress: Optional[Callable[[int, int], None]]
    ) -> Iterator[SimulationResult]:
        from concurrent.futures import ProcessPoolExecutor

        workers = min(self.workers, len(specs))
        completed: dict[int, SimulationResult] = {}
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_execute_spec, spec) for spec in specs]
            try:
                # Deliver strictly in sweep order: waiting on futures in
                # submission order keeps results and progress callbacks
                # deterministic while the pool completes out of order
                # behind the scenes.
                for spec, future in zip(specs, futures):
                    try:
                        result = future.result()
                    except Exception as error:
                        # A worker crash (BrokenProcessPool) or a
                        # pickling failure lands here too: name the run
                        # instead of hanging or dying anonymously, and
                        # hand back everything that did finish.
                        raise SweepRunError(
                            spec.index, spec.label, error, partial_results=completed
                        ) from error
                    completed[spec.index] = result
                    if progress is not None:
                        progress(spec, result)
                    yield result
            finally:
                for future in futures:
                    future.cancel()

    def _run_hardened(
        self, specs: Sequence[RunSpec], progress: Optional[Callable[[int, int], None]]
    ) -> Iterator[SimulationResult]:
        """Parallel execution with timeout enforcement, heartbeat
        supervision and bounded retries.  Runs in passes: each pass
        submits every still-pending spec to a fresh pool; a hung or
        crashed worker aborts the pass (finished runs are salvaged,
        innocents re-queued uncharged) and the culprit is charged one
        failure.  A spec that exhausts ``retries`` raises
        :class:`SweepRunError` with every completed result attached."""
        manager: Optional[Any] = None
        beats: Optional[Any] = None
        if self.stall_timeout is not None:
            import multiprocessing

            # Heartbeats flow worker -> parent through a manager dict
            # keyed by spec index; a run whose entry stops *changing*
            # is hung, one whose entry keeps advancing is a straggler.
            manager = multiprocessing.Manager()
            beats = manager.dict()
        try:
            yield from self._run_hardened_passes(specs, progress, beats)
        finally:
            if manager is not None:
                manager.shutdown()

    def _run_hardened_passes(
        self,
        specs: Sequence[RunSpec],
        progress: Optional[Callable[[int, int], None]],
        beats: Optional[Any],
    ) -> Iterator[SimulationResult]:
        from concurrent.futures import ProcessPoolExecutor
        from concurrent.futures import TimeoutError as FutureTimeoutError
        from concurrent.futures.process import BrokenProcessPool

        results: dict[int, SimulationResult] = {}
        failures: dict[int, int] = {spec.index: 0 for spec in specs}
        pending: list[RunSpec] = list(specs)
        while pending:
            pool = ProcessPoolExecutor(max_workers=min(self.workers, len(pending)))
            if beats is None:
                futures = [
                    (spec, pool.submit(_execute_spec, spec)) for spec in pending
                ]
            else:
                futures = [
                    (
                        spec,
                        pool.submit(
                            _execute_spec_beating,
                            spec,
                            beats,
                            self.heartbeat_interval,
                        ),
                    )
                    for spec in pending
                ]
            requeue: list[RunSpec] = []
            abort = False
            try:
                for spec, future in futures:
                    if abort:
                        # The pool is compromised; salvage runs that
                        # already finished, re-queue the rest without
                        # charging them a retry.
                        if future.done() and not future.cancelled():
                            try:
                                results[spec.index] = future.result()
                                continue
                            except Exception:
                                pass
                        requeue.append(spec)
                        continue
                    try:
                        results[spec.index] = self._await(spec, future, beats)
                    except FutureTimeoutError:
                        abort = True
                        cause: BaseException = TimeoutError(
                            f"run exceeded the {self.timeout:g}s"
                            " wall-clock limit"
                        )
                        self._charge(spec, cause, failures, requeue, results)
                    except WorkerStalledError as error:
                        abort = True
                        self._charge(spec, error, failures, requeue, results)
                    except BrokenProcessPool as error:
                        abort = True
                        self._charge(spec, error, failures, requeue, results)
                    except Exception as error:
                        self._charge(spec, error, failures, requeue, results)
            finally:
                self._teardown_pool(pool, abort)
            if requeue:
                charged = max(failures[spec.index] for spec in requeue)
                if charged:
                    time.sleep(self.retry_backoff * (2 ** (charged - 1)))
            pending = requeue
        for spec in specs:
            result = results[spec.index]
            if progress is not None:
                progress(spec, result)
            yield result

    def _await(
        self, spec: RunSpec, future: Any, beats: Optional[Any]
    ) -> SimulationResult:
        """Wait for one run, enforcing the wall-clock limit and -- when
        supervision is on -- the heartbeat stall limit.

        The stall clock starts at the worker's first beat (a queued run
        that has not started yet cannot be "hung") and resets whenever
        the beat value changes; it measures frozen *progress*, not
        elapsed time.  Raises ``concurrent.futures.TimeoutError`` at
        the wall-clock deadline and :class:`WorkerStalledError` when
        the heartbeat froze for ``stall_timeout`` seconds.
        """
        from concurrent.futures import TimeoutError as FutureTimeoutError

        if beats is None:
            result: SimulationResult = future.result(timeout=self.timeout)
            return result
        assert self.stall_timeout is not None
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        poll = max(min(self.stall_timeout / 4.0, 1.0), 0.05)
        last_beat: Optional[int] = None
        last_change: Optional[float] = None
        while True:
            now = time.monotonic()
            if deadline is not None and now >= deadline:
                raise FutureTimeoutError()
            wait = poll if deadline is None else min(poll, max(deadline - now, 0.01))
            try:
                supervised: SimulationResult = future.result(timeout=wait)
                return supervised
            except FutureTimeoutError:
                pass
            try:
                value = beats.get(spec.index)
            except Exception:  # manager hiccup: wall-clock only this poll
                value = None
            now = time.monotonic()
            if value is None:
                continue  # not started yet: queued behind other runs
            if last_beat is None or value != last_beat:
                last_beat = value
                last_change = now
            elif last_change is not None and now - last_change >= self.stall_timeout:
                raise WorkerStalledError(spec.label, self.stall_timeout)

    def _charge(
        self,
        spec: RunSpec,
        cause: BaseException,
        failures: dict[int, int],
        requeue: list[RunSpec],
        results: dict[int, SimulationResult],
    ) -> None:
        """Record one failure of ``spec``; re-queue it while budget
        remains, abort the sweep (with partial results) otherwise."""
        failures[spec.index] += 1
        if failures[spec.index] > self.retries:
            raise SweepRunError(
                spec.index, spec.label, cause, partial_results=results
            ) from cause
        requeue.append(spec)

    @staticmethod
    def _teardown_pool(pool: object, abort: bool) -> None:
        """Dispose of a pass's pool.  On abort the pool may hold a hung
        worker: don't wait for it, kill its processes outright so an
        unresponsive simulation cannot survive the sweep."""
        from concurrent.futures.process import ProcessPoolExecutor

        assert isinstance(pool, ProcessPoolExecutor)
        if not abort:
            pool.shutdown(wait=True, cancel_futures=True)
            return
        pool.shutdown(wait=False, cancel_futures=True)
        processes = getattr(pool, "_processes", None) or {}
        for pid in sorted(processes):
            try:
                processes[pid].kill()
            except Exception:  # pragma: no cover - process already gone
                pass
