"""Statistics gathering (paper Section 2.3).

EagleTree produces "graphs showing how performance metrics (e.g.,
throughput, latency, latency variability) evolved with respect to the
given parameter or policy, as well as graphs showing how various metrics
evolved across time".  It also allows attaching "statistics gathering
objects to an individual thread to measure its performance".

This module provides both:

* :class:`LatencyRecorder` -- streaming latency statistics with exact
  percentiles computed on demand.
* :class:`TimeSeries` -- counts bucketed over virtual time, for the
  metrics-over-time graphs.
* :class:`StatisticsGatherer` -- the aggregate attached to the whole
  simulation and, separately, to individual threads.
"""

from __future__ import annotations

import json
import numbers
from collections import Counter
from typing import Mapping, Optional, Union

import numpy as np

from repro.core import units
from repro.core.events import IoRequest, IoType


class LatencyRecorder:
    """Streaming collection of latency samples (integer nanoseconds).

    Samples live in a preallocated ``int64`` reservoir (grown by
    doubling) rather than a list of boxed Python integers: recording is
    one array store, memory is 8 bytes per sample, and the derived
    statistics (stddev, percentiles) run vectorised over the filled
    slice.  The summary dictionary is cached until the next sample
    arrives, because experiment tables ask for it once per metric.
    """

    __slots__ = ("_reservoir", "_count", "_sum", "_min", "_max", "_summary")

    #: Initial reservoir capacity (samples); doubles as needed.
    _INITIAL_CAPACITY = 512

    def __init__(self) -> None:
        self._reservoir: Optional[np.ndarray] = None
        self._count = 0
        self._sum = 0
        self._min: Optional[int] = None
        self._max: Optional[int] = None
        self._summary: Optional[dict[str, float]] = None

    def record(self, latency_ns: int) -> None:
        if latency_ns < 0:
            raise ValueError(f"negative latency {latency_ns}")
        reservoir = self._reservoir
        count = self._count
        if reservoir is None:
            self._reservoir = reservoir = np.empty(self._INITIAL_CAPACITY, dtype=np.int64)
        elif count == len(reservoir):
            grown = np.empty(len(reservoir) * 2, dtype=np.int64)
            grown[:count] = reservoir
            self._reservoir = reservoir = grown
        reservoir[count] = latency_ns
        self._count = count + 1
        self._sum += latency_ns
        if self._min is None or latency_ns < self._min:
            self._min = latency_ns
        if self._max is None or latency_ns > self._max:
            self._max = latency_ns
        self._summary = None

    def _view(self) -> np.ndarray:
        """The filled slice of the reservoir (no copy)."""
        if self._reservoir is None:
            return np.empty(0, dtype=np.int64)
        return self._reservoir[: self._count]

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        if not self._count:
            return 0.0
        return self._sum / self._count

    @property
    def minimum(self) -> int:
        return self._min or 0

    @property
    def maximum(self) -> int:
        return self._max or 0

    @property
    def stddev(self) -> float:
        """Population standard deviation -- the paper's "latency
        variability" metric."""
        if self._count < 2:
            return 0.0
        return float(np.std(self._view()))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0..100) of recorded samples."""
        if not self._count:
            return 0.0
        return float(np.percentile(self._view(), q))

    def samples(self) -> list[int]:
        """A copy of the raw samples (for histograms and plots)."""
        return self._view().tolist()

    def merge(self, other: "LatencyRecorder") -> None:
        """Fold ``other``'s samples into this recorder."""
        if not other._count:
            return
        theirs = other._view()
        count = self._count
        needed = count + other._count
        reservoir = self._reservoir
        if reservoir is None or needed > len(reservoir):
            capacity = max(self._INITIAL_CAPACITY, len(reservoir) if reservoir is not None else 0)
            while capacity < needed:
                capacity *= 2
            grown = np.empty(capacity, dtype=np.int64)
            if reservoir is not None:
                grown[:count] = reservoir[:count]
            self._reservoir = reservoir = grown
        reservoir[count:needed] = theirs
        self._count = needed
        self._sum += other._sum
        if self._min is None or other._min < self._min:
            self._min = other._min
        if self._max is None or other._max > self._max:
            self._max = other._max
        self._summary = None

    def summary(self) -> dict[str, float]:
        if self._summary is None:
            self._summary = {
                "count": self.count,
                "mean_ns": self.mean,
                "stddev_ns": self.stddev,
                "min_ns": float(self.minimum),
                "p50_ns": self.percentile(50),
                "p95_ns": self.percentile(95),
                "p99_ns": self.percentile(99),
                "max_ns": float(self.maximum),
            }
        return dict(self._summary)

    def describe(self) -> str:
        if not self._count:
            return "no samples"
        return (
            f"n={self.count} mean={units.format_time(round(self.mean))} "
            f"p50={units.format_time(round(self.percentile(50)))} "
            f"p99={units.format_time(round(self.percentile(99)))} "
            f"max={units.format_time(self.maximum)} "
            f"sd={units.format_time(round(self.stddev))}"
        )


class TimeSeries:
    """Event counts bucketed over virtual time.

    Used for the "metrics across time" graphs: completions per window,
    GC activity per window, and so on.
    """

    def __init__(self, bucket_ns: int = 10 * units.MILLISECOND) -> None:
        if bucket_ns <= 0:
            raise ValueError("bucket_ns must be positive")
        self.bucket_ns = bucket_ns
        self._buckets: Counter[int] = Counter()
        self._last_time = 0

    def add(self, time_ns: int, amount: float = 1.0) -> None:
        self._buckets[time_ns // self.bucket_ns] += amount
        if time_ns > self._last_time:
            self._last_time = time_ns

    def series(self) -> list[tuple[int, float]]:
        """Dense ``(bucket_start_ns, count)`` pairs from 0 to the last
        recorded bucket."""
        if not self._buckets:
            return []
        last_bucket = max(self._buckets)
        return [
            (bucket * self.bucket_ns, self._buckets.get(bucket, 0.0))
            for bucket in range(0, last_bucket + 1)
        ]

    def rate_per_second(self) -> list[tuple[int, float]]:
        """Like :meth:`series` but scaled to events per second."""
        scale = units.SECOND / self.bucket_ns
        return [(t, v * scale) for t, v in self.series()]


class StatisticsGatherer:
    """Aggregated per-simulation (or per-thread) statistics.

    One gatherer is attached to the whole simulation; additional gatherers
    may be attached to individual threads (Section 2.3) and receive only
    that thread's IO completions.
    """

    def __init__(self, name: str = "global", bucket_ns: int = 10 * units.MILLISECOND) -> None:
        self.name = name
        #: End-to-end latency by IO type.
        self.latency: dict[IoType, LatencyRecorder] = {t: LatencyRecorder() for t in IoType}
        #: Device-internal latency by IO type.
        self.device_latency: dict[IoType, LatencyRecorder] = {
            t: LatencyRecorder() for t in IoType
        }
        #: OS queueing time by IO type.
        self.os_wait: dict[IoType, LatencyRecorder] = {t: LatencyRecorder() for t in IoType}
        #: Completions over time, by IO type.
        self.completions_over_time: dict[IoType, TimeSeries] = {
            t: TimeSeries(bucket_ns) for t in IoType
        }
        #: Latency-over-time (mean per bucket is recovered by dividing).
        self.latency_sum_over_time: dict[IoType, TimeSeries] = {
            t: TimeSeries(bucket_ns) for t in IoType
        }
        #: Flash command counts keyed by (source_name, kind_name).
        self.flash_commands: Counter[tuple[str, str]] = Counter()
        #: GC activity over time (pages relocated).
        self.gc_activity_over_time = TimeSeries(bucket_ns)
        #: Reliability events (corrected reads, retries, rebuilds,
        #: retirements, ...) keyed by event kind.
        self.reliability_events: Counter[str] = Counter()
        #: Reliability events over time (all kinds pooled).
        self.reliability_over_time = TimeSeries(bucket_ns)
        self.first_completion_ns: Optional[int] = None
        self.last_completion_ns: Optional[int] = None
        self._completed = 0
        #: Cached :meth:`summary` dict; recording anything invalidates it.
        self._summary_cache: Optional[dict[str, float]] = None

    # ------------------------------------------------------------------
    # Recording hooks
    # ------------------------------------------------------------------
    def record_io(self, io: IoRequest) -> None:
        """Record a completed logical IO."""
        if io.complete_time is None:
            raise ValueError(f"{io!r} has not completed")
        self._completed += 1
        self._summary_cache = None
        if self.first_completion_ns is None:
            self.first_completion_ns = io.complete_time
        self.last_completion_ns = io.complete_time
        latency = io.latency
        if latency is not None:
            self.latency[io.io_type].record(latency)
            self.latency_sum_over_time[io.io_type].add(io.complete_time, latency)
        if io.device_latency is not None:
            self.device_latency[io.io_type].record(io.device_latency)
        if io.os_wait is not None:
            self.os_wait[io.io_type].record(io.os_wait)
        self.completions_over_time[io.io_type].add(io.complete_time)

    def record_flash_command(self, source_name: str, kind_name: str, time_ns: int) -> None:
        """Record a completed flash command (controller layer hook)."""
        self.flash_commands[(source_name, kind_name)] += 1
        self._summary_cache = None
        if source_name in ("GC", "WEAR_LEVELING") and kind_name in ("PROGRAM", "COPYBACK"):
            self.gc_activity_over_time.add(time_ns)

    def record_reliability_event(self, kind: str, time_ns: int) -> None:
        """Record a reliability-subsystem event (controller layer hook)."""
        self.reliability_events[kind] += 1
        self.reliability_over_time.add(time_ns)

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def completed_ios(self) -> int:
        return self._completed

    def completed(self, io_type: IoType) -> int:
        return self.latency[io_type].count

    def throughput_iops(self) -> float:
        """Completed IOs per second of virtual time over the measured span."""
        if (
            self.first_completion_ns is None
            or self.last_completion_ns is None
            or self.last_completion_ns <= self.first_completion_ns
        ):
            return 0.0
        span = self.last_completion_ns - self.first_completion_ns
        return self._completed * units.SECOND / span

    def write_amplification(self) -> float:
        """Total flash programs (incl. copybacks) / application programs."""
        app = self.flash_commands.get(("APPLICATION", "PROGRAM"), 0)
        if app == 0:
            return 0.0
        total = sum(
            count
            for (_, kind), count in self.flash_commands.items()
            if kind in ("PROGRAM", "COPYBACK")
        )
        return total / app

    def summary(self) -> dict[str, float]:
        """Flat metric dictionary -- the rows experiment tables report."""
        if self._summary_cache is not None:
            return dict(self._summary_cache)
        reads = self.latency[IoType.READ]
        writes = self.latency[IoType.WRITE]
        self._summary_cache = {
            "completed_ios": float(self._completed),
            "completed_reads": float(reads.count),
            "completed_writes": float(writes.count),
            "throughput_iops": self.throughput_iops(),
            "read_mean_ns": reads.mean,
            "read_p99_ns": reads.percentile(99),
            "read_stddev_ns": reads.stddev,
            "write_mean_ns": writes.mean,
            "write_p99_ns": writes.percentile(99),
            "write_stddev_ns": writes.stddev,
            "read_device_mean_ns": self.device_latency[IoType.READ].mean,
            "write_device_mean_ns": self.device_latency[IoType.WRITE].mean,
            "write_amplification": self.write_amplification(),
            "erases": float(
                sum(c for (_, kind), c in self.flash_commands.items() if kind == "ERASE")
            ),
            "gc_programs": float(self.flash_commands.get(("GC", "PROGRAM"), 0))
            + float(self.flash_commands.get(("GC", "COPYBACK"), 0)),
            "mapping_ios": float(
                sum(c for (src, _), c in self.flash_commands.items() if src == "MAPPING")
            ),
        }
        return dict(self._summary_cache)

    def report(self) -> str:
        """Multi-line human-readable report (the demo's numeric panel)."""
        lines = [f"== statistics: {self.name} =="]
        lines.append(f"completed IOs : {self._completed}")
        lines.append(f"throughput    : {self.throughput_iops():,.0f} IOPS")
        for io_type in (IoType.READ, IoType.WRITE):
            recorder = self.latency[io_type]
            if recorder.count:
                lines.append(f"{io_type.value:<5} latency : {recorder.describe()}")
        waf = self.write_amplification()
        if waf:
            lines.append(f"write amp.    : {waf:.2f}")
        if self.flash_commands:
            per_source: Counter[str] = Counter()
            for (source, kind), count in sorted(self.flash_commands.items()):
                per_source[source] += count
                lines.append(f"flash {source.lower():<14}{kind.lower():<9}: {count}")
        if self.reliability_events:
            for kind, count in sorted(self.reliability_events.items()):
                lines.append(f"reliability {kind:<17}: {count}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Round-trippable summary serialization
# ----------------------------------------------------------------------
#
# The experiment service persists result summaries to an on-disk cache
# and promises that a cache hit is *bit-identical* to a fresh run.  That
# only holds if serialization is deterministic (sorted keys, one float
# encoding) and lossless (floats survive a round trip exactly).  JSON
# with shortest-round-trip float repr gives both; the helpers below are
# the single sanctioned encoding, shared by the cache, ``to_csv`` and
# the benchmarks.

#: Summary values are metric numbers; ``count`` style entries stay int.
SummaryValue = Union[int, float]


def plain_number(value: object) -> SummaryValue:
    """Normalise a metric value to a built-in ``int`` or ``float``.

    Numpy scalars (``np.int64``, ``np.float64``) leak out of vectorised
    statistics; they are not JSON-serializable and their ``str`` differs
    from the built-ins' under some numpy printoptions, so every summary
    value is funnelled through here before formatting or encoding.
    """
    if isinstance(value, bool):
        raise TypeError("summary values are numbers, not booleans")
    if isinstance(value, numbers.Integral):
        return int(value)
    if isinstance(value, numbers.Real):
        return float(value)
    raise TypeError(f"summary value {value!r} is not a number")


def stable_number_text(value: object) -> str:
    """The canonical text of one metric value.

    Integers print as integers; floats print with ``repr`` -- the
    shortest string that round-trips to the exact same IEEE-754 double,
    identical on every platform and process.
    """
    return repr(plain_number(value))


def serialize_summary(summary: Mapping[str, object]) -> str:
    """Encode a metric summary as canonical JSON: keys sorted, minimal
    separators, shortest-round-trip floats, no NaN/Infinity.  Two equal
    summaries always encode to identical bytes."""
    normalised = {key: plain_number(summary[key]) for key in summary}
    return json.dumps(
        normalised, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def deserialize_summary(text: str) -> dict[str, SummaryValue]:
    """Invert :func:`serialize_summary` exactly: every float comes back
    as the identical double, every int as an int."""
    decoded = json.loads(text)
    if not isinstance(decoded, dict):
        raise ValueError("serialized summary must decode to an object")
    return {str(key): plain_number(value) for key, value in decoded.items()}
