"""Time and size units used throughout the simulator.

All simulated time is kept as an integer number of **nanoseconds**.
Integer time makes event ordering exact and simulations perfectly
reproducible; nanosecond resolution is fine enough to express bus byte
cycles while keeping multi-second simulations inside 64-bit range.

All sizes are kept as integer **bytes**, and flash capacities as integer
numbers of **pages**.
"""

from __future__ import annotations

#: One nanosecond (the base unit -- present for symmetry and readability).
NANOSECOND = 1

#: One microsecond in nanoseconds.
MICROSECOND = 1_000

#: One millisecond in nanoseconds.
MILLISECOND = 1_000_000

#: One second in nanoseconds.
SECOND = 1_000_000_000

#: One kibibyte in bytes.
KIB = 1024

#: One mebibyte in bytes.
MIB = 1024 * 1024

#: One gibibyte in bytes.
GIB = 1024 * 1024 * 1024


def microseconds(value: float) -> int:
    """Convert ``value`` microseconds to integer nanoseconds."""
    return round(value * MICROSECOND)


def milliseconds(value: float) -> int:
    """Convert ``value`` milliseconds to integer nanoseconds."""
    return round(value * MILLISECOND)


def seconds(value: float) -> int:
    """Convert ``value`` seconds to integer nanoseconds."""
    return round(value * SECOND)


def to_microseconds(ns: int) -> float:
    """Convert integer nanoseconds to floating-point microseconds."""
    return ns / MICROSECOND


def to_milliseconds(ns: int) -> float:
    """Convert integer nanoseconds to floating-point milliseconds."""
    return ns / MILLISECOND


def to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to floating-point seconds."""
    return ns / SECOND


def format_time(ns: int) -> str:
    """Render a nanosecond timestamp with a human-friendly unit.

    >>> format_time(1_500)
    '1.500us'
    >>> format_time(2_000_000)
    '2.000ms'
    """
    if ns < MICROSECOND:
        return f"{ns}ns"
    if ns < MILLISECOND:
        return f"{ns / MICROSECOND:.3f}us"
    if ns < SECOND:
        return f"{ns / MILLISECOND:.3f}ms"
    return f"{ns / SECOND:.3f}s"


def format_bytes(size: int) -> str:
    """Render a byte size with a human-friendly unit.

    >>> format_bytes(4096)
    '4.0KiB'
    """
    if size < KIB:
        return f"{size}B"
    if size < MIB:
        return f"{size / KIB:.1f}KiB"
    if size < GIB:
        return f"{size / MIB:.1f}MiB"
    return f"{size / GIB:.1f}GiB"
