"""Core simulation infrastructure shared by every EagleTree layer.

The :mod:`repro.core` package contains the pieces that the paper describes
as "an entire system operating in virtual time" (Section 2.1):

* :mod:`repro.core.engine` -- the discrete-event simulator.
* :mod:`repro.core.units` -- time and size unit helpers.
* :mod:`repro.core.rng` -- deterministic, per-component random streams.
* :mod:`repro.core.events` -- logical IO request objects exchanged between
  the application, OS and SSD layers.
* :mod:`repro.core.config` -- the full configuration surface of the
  simulator, with predefined chip and SSD presets.
* :mod:`repro.core.statistics` -- statistics gathering objects that can be
  attached globally or to an individual thread (Section 2.3).
* :mod:`repro.core.tracing` -- the "massive visual traces" of Section 2.3,
  as structured trace records.
* :mod:`repro.core.simulation` -- the facade that wires all four layers
  together and runs a workload to completion.
* :mod:`repro.core.experiments` -- the experimental-suite API: experiment
  templates that vary one parameter or policy and report metric series.
"""

from repro.core.config import (
    ControllerConfig,
    HostConfig,
    SimulationConfig,
    SsdGeometry,
    ChipTimings,
)
from repro.core.engine import Simulator
from repro.core.events import IoRequest, IoType
from repro.core.experiments import (
    ExperimentResult,
    ExperimentTemplate,
    GridExperiment,
    GridResult,
    Parameter,
)
from repro.core.parallel import RunSpec, SweepExecutor, SweepRunError
from repro.core.sanitize import SanitizerError
from repro.core.simulation import Simulation, SimulationResult
from repro.core.statistics import StatisticsGatherer

__all__ = [
    "ChipTimings",
    "SanitizerError",
    "ControllerConfig",
    "ExperimentResult",
    "GridExperiment",
    "GridResult",
    "ExperimentTemplate",
    "HostConfig",
    "IoRequest",
    "IoType",
    "Parameter",
    "RunSpec",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    "Simulator",
    "SsdGeometry",
    "StatisticsGatherer",
    "SweepExecutor",
    "SweepRunError",
]
