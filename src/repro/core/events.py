"""Logical IO requests exchanged between the stack layers.

A thread (application layer) issues :class:`IoRequest` objects to the
operating system; the OS scheduler dispatches them to the SSD controller;
the controller translates them to flash commands and, once the hardware
completes, the OS interrupts the issuing thread's ``on_io_completed``.

The request carries timestamps stamped by each layer so that statistics
can attribute latency to queueing at the OS, queueing inside the SSD, and
flash service time, and it carries the open-interface *hints* of paper
Section 2.2 when the extended interface is enabled.
"""

from __future__ import annotations

import enum
import itertools
from typing import Optional, TypeAlias, TypedDict

#: Logical page number.  Mirrors :data:`repro.hardware.addresses.Lpn`
#: locally because the core layer must not import from the hardware
#: layer; simlint's SIM010 matches annotation *names*, so the two
#: aliases are interchangeable to the address-domain checker.
Lpn: TypeAlias = int


class IoType(enum.Enum):
    """The logical operation requested by a thread."""

    READ = "read"
    WRITE = "write"
    TRIM = "trim"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class IoStatus(enum.Enum):
    """Completion status of a logical IO.

    Everything is ``OK`` on the happy path.  The reliability subsystem
    (:mod:`repro.reliability`) introduces the two failure statuses: a
    device whose spare-block pool ran dry rejects writes with
    ``READ_ONLY`` instead of crashing the simulation, and a read whose
    data could not be recovered (ECC and parity both exhausted) completes
    with ``UNCORRECTABLE``.
    """

    OK = "ok"
    #: Write or trim rejected: the device degraded to read-only mode.
    READ_ONLY = "read_only"
    #: Read data lost: ECC failed and parity could not reconstruct it.
    UNCORRECTABLE = "uncorrectable"
    #: The IO was in flight when the device lost power; it completes with
    #: this status once the device is back (crash subsystem, PR 5).  The
    #: operation may or may not have reached flash -- standard storage
    #: ambiguity for unacknowledged requests.
    POWER_FAIL = "power_fail"
    #: Rejected by admission control: the host submission pool or the
    #: device queue is at its configured bound, or degraded mode shed
    #: the IO (overload subsystem).  Nothing reached flash; the host may
    #: retry after a backoff.
    BUSY = "busy"
    #: The IO's flash command sat queued past its timeout budget and was
    #: aborted before execution (overload subsystem).  Nothing reached
    #: flash; the host may retry within its deadline budget.
    TIMEOUT = "timeout"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Monotonically increasing request ids, unique within a process.
# simlint: disable=SIM006 -- ids are only compared within one run, where
# their relative order is deterministic; absolute values carry no meaning.
_io_ids = itertools.count(1)


class WriteHints(TypedDict, total=False):
    """Open-interface per-IO metadata (every key optional).

    The typed shape of the hint dictionaries built by
    :mod:`repro.host.interface` and the workload generators; the
    controller-side consumers (allocator, temperature model, FTLs,
    scheduler) key on exactly these fields.
    """

    #: OS/SSD scheduling priority; smaller is more urgent.
    priority: int
    #: Application temperature claim: ``"hot"`` or ``"cold"``.
    temperature: str
    #: Update-locality group for the LOCALITY allocation policy.
    locality: int


class IoRequest:
    """A single-page logical IO request.

    EagleTree operates at flash-page granularity; multi-page application
    operations are expressed as several requests (helpers on the thread
    base class do this).  ``lpn`` is the logical page number.

    Timestamps (all virtual nanoseconds, ``None`` until stamped):

    * ``issue_time``    -- the thread handed the request to the OS.
    * ``dispatch_time`` -- the OS submitted it to the SSD.
    * ``complete_time`` -- the SSD signalled completion.

    ``hints`` holds open-interface metadata (priority, temperature,
    locality group, deadline); the SSD only reads it when the open
    interface is enabled in the configuration.
    """

    __slots__ = (
        "id",
        "io_type",
        "lpn",
        "thread_name",
        "issue_time",
        "dispatch_time",
        "complete_time",
        "hints",
        "data",
        "status",
        "version",
        "attempts",
    )

    def __init__(
        self,
        io_type: IoType,
        lpn: Lpn,
        thread_name: str = "?",
        hints: Optional[WriteHints] = None,
    ) -> None:
        self.id = next(_io_ids)
        self.io_type = io_type
        self.lpn = lpn
        self.thread_name = thread_name
        self.issue_time: Optional[int] = None
        self.dispatch_time: Optional[int] = None
        self.complete_time: Optional[int] = None
        self.hints: WriteHints = hints or {}
        #: Payload returned by reads: the (lpn, version) token last written.
        #: Used by integrity checks; the simulator stores tokens, not bytes.
        self.data: Optional[tuple[int, int]] = None
        #: Completion status; only the reliability subsystem sets non-OK.
        self.status: IoStatus = IoStatus.OK
        #: Write version assigned by the FTL / write buffer when the
        #: request was accepted (None for reads and undispatched writes).
        #: The durability audit compares acknowledged versions against
        #: the recovered mapping after a power loss.
        self.version: Optional[int] = None
        #: Host-side retries performed for this IO (overload subsystem):
        #: 0 on the first attempt, incremented per re-submission after a
        #: BUSY/TIMEOUT completion.
        self.attempts: int = 0

    @property
    def is_read(self) -> bool:
        return self.io_type is IoType.READ

    @property
    def is_write(self) -> bool:
        return self.io_type is IoType.WRITE

    @property
    def latency(self) -> Optional[int]:
        """End-to-end latency (issue to completion), if completed."""
        if self.complete_time is None or self.issue_time is None:
            return None
        return self.complete_time - self.issue_time

    @property
    def device_latency(self) -> Optional[int]:
        """Latency inside the SSD (dispatch to completion), if completed."""
        if self.complete_time is None or self.dispatch_time is None:
            return None
        return self.complete_time - self.dispatch_time

    @property
    def os_wait(self) -> Optional[int]:
        """Time spent queued in the OS before dispatch, if dispatched."""
        if self.dispatch_time is None or self.issue_time is None:
            return None
        return self.dispatch_time - self.issue_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"IoRequest(#{self.id} {self.io_type} lpn={self.lpn}"
            f" thread={self.thread_name!r})"
        )
