"""The simulation facade: wire the four layers together and run.

:class:`Simulation` is the main entry point of the library::

    from repro import Simulation, small_config
    from repro.workloads import RandomWriterThread

    sim = Simulation(small_config())
    sim.add_thread(RandomWriterThread("writer", count=2000))
    result = sim.run()
    print(result.stats.report())

The simulation ends when the event queue drains (all threads finished
and every internal operation completed) or when ``max_time_ns`` is hit.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.controller import SsdController
from repro.core import units
from repro.core.config import SimulationConfig
from repro.core.engine import Simulator
from repro.core.power import CrashStats, PowerLossEvent
from repro.core.rng import RandomSource
from repro.core.statistics import StatisticsGatherer
from repro.core.tracing import TraceRecorder
from repro.host.operating_system import OperatingSystem
from repro.reliability.crash import PowerCycleCoordinator


class SimulationResult:
    """Everything measured in one run."""

    def __init__(self, simulation: "Simulation") -> None:
        self.config = simulation.config
        self.stats = simulation.stats
        self.tracer = simulation.tracer
        self.elapsed_ns = simulation.sim.now
        self.processed_events = simulation.sim.processed_events
        controller = simulation.controller
        self.thread_stats: dict[str, StatisticsGatherer] = {
            name: record.stats
            for name, record in simulation.os._records.items()
            if record.stats is not None
        }
        self.gc_collected_blocks = controller.gc.collected_blocks
        self.gc_relocated_pages = controller.gc.relocated_pages
        self.gc_copybacks = controller.gc.copyback_relocations
        self.wl_migrations = controller.wear_leveler.migrations_started
        self.wl_migrated_pages = controller.wear_leveler.migrated_pages
        self.wear = controller.wear_leveler.wear_statistics()
        self.retired_blocks = controller.array.retired_blocks
        reliability = controller.reliability
        self.corrected_reads = reliability.corrected_reads if reliability else 0
        self.uncorrectable_reads = reliability.uncorrectable_reads if reliability else 0
        self.read_retries = reliability.read_retries if reliability else 0
        self.parity_rebuilds = reliability.parity_rebuilds if reliability else 0
        self.program_fails = reliability.program_fail_count if reliability else 0
        self.erase_fails = reliability.erase_fail_count if reliability else 0
        self.runtime_retired_blocks = (
            reliability.runtime_retired_blocks if reliability else 0
        )
        self.writes_rejected = reliability.writes_rejected if reliability else 0
        #: Virtual time at which the device degraded to read-only mode;
        #: None when it never did (or reliability is disabled).
        self.read_only_entry_ns = reliability.read_only_entry_ns if reliability else None
        self.channel_utilisation = controller.array.channel_utilisation()
        self.lun_utilisation = controller.array.lun_utilisation()
        #: Overload robustness layer; all zero when disabled.  The queue
        #: high-watermarks are pure observers tracked unconditionally,
        #: so unbounded legacy configurations expose their runaway
        #: growth too (the E20 comparison depends on this).
        self.os_queue_high_watermark = simulation.os.os_queue_high_watermark
        self.device_queue_high_watermark = (
            controller.scheduler.max_queue_high_watermark()
        )
        self.host_rejections = simulation.os.host_rejections
        self.io_retries = simulation.os.retries_scheduled
        self.io_retries_exhausted = simulation.os.retries_exhausted
        self.busy_ios = simulation.os.busy_completions
        self.timeout_ios = simulation.os.timeout_completions
        overload = controller.overload
        self.device_busy_rejections = overload.busy_rejections if overload else 0
        self.shed_ios = overload.shed_ios if overload else 0
        self.throttled_ios = overload.throttled_ios if overload else 0
        self.command_timeouts = overload.command_timeouts if overload else 0
        self.degraded_entries = overload.degraded_entries if overload else 0
        self.time_degraded_ns = (
            overload.time_degraded_total(simulation.sim.now) if overload else 0
        )
        #: Bytes held by the array-backed device state: FTL mapping and
        #: version tables plus the flash-array bitmaps and per-block
        #: metadata (scale regressions show up in every run summary).
        self.device_memory_bytes = (
            controller.array.state.memory_bytes() + controller.ftl.table_memory_bytes()
        )
        #: Crash/recovery accounting; an all-zero CrashStats when no
        #: power loss was scheduled (pay-for-what-you-use).
        coordinator = simulation._coordinator
        crash = coordinator.stats if coordinator is not None else CrashStats()
        if controller.checkpointer is not None:
            crash.checkpoints_taken = controller.checkpointer.checkpoints_taken
            crash.checkpoint_pages_written = (
                controller.checkpointer.checkpoint_pages_written
            )
        self.crash_stats = crash
        self.mount_reports = crash.reports
        self.flash_commands = dict(controller.stats.flash_commands)
        #: True when the run ended with IOs still outstanding: either the
        #: time limit cut the workload short, or the system stalled.
        self.incomplete = simulation.os.outstanding > 0
        self.outstanding_at_end = simulation.os.outstanding
        #: Filled only when ``host.retain_completed_ios`` is set.
        self.completed_ios = simulation.os.completed_ios
        #: Cached :meth:`summary`; a result is immutable once built.
        self._summary_cache: Optional[dict[str, float]] = None

    def summary(self) -> dict[str, float]:
        """Flat metrics dictionary: statistics plus internal activity."""
        if self._summary_cache is not None:
            return dict(self._summary_cache)
        summary = self.stats.summary()
        summary.update(
            {
                "elapsed_ms": units.to_milliseconds(self.elapsed_ns),
                "gc_collected_blocks": float(self.gc_collected_blocks),
                "gc_relocated_pages": float(self.gc_relocated_pages),
                "wl_migrations": float(self.wl_migrations),
                "wear_spread": self.wear["spread"],
                "retired_blocks": float(self.retired_blocks),
                "mean_channel_utilisation": (
                    sum(self.channel_utilisation) / len(self.channel_utilisation)
                ),
                "device_memory_bytes": float(self.device_memory_bytes),
                # Reliability subsystem; all zero (and entry -1) when the
                # subsystem is disabled.
                "corrected_reads": float(self.corrected_reads),
                "uncorrectable_reads": float(self.uncorrectable_reads),
                "read_retries": float(self.read_retries),
                "parity_rebuilds": float(self.parity_rebuilds),
                "program_fails": float(self.program_fails),
                "erase_fails": float(self.erase_fails),
                "runtime_retired_blocks": float(self.runtime_retired_blocks),
                "writes_rejected": float(self.writes_rejected),
                "read_only_entry_ms": (
                    units.to_milliseconds(self.read_only_entry_ns)
                    if self.read_only_entry_ns is not None
                    else -1.0
                ),
                # Crash/recovery subsystem; all zero when no power loss
                # was scheduled.
                "power_losses": float(self.crash_stats.power_losses),
                "mount_time_ms": units.to_milliseconds(self.crash_stats.mount_time_ns),
                "recovery_scanned_pages": float(self.crash_stats.scanned_pages),
                "recovery_replayed_records": float(self.crash_stats.replayed_records),
                "lost_writes": float(self.crash_stats.lost_writes),
                "torn_pages": float(self.crash_stats.torn_pages),
                "checkpoints_taken": float(self.crash_stats.checkpoints_taken),
                "checkpoint_pages_written": float(
                    self.crash_stats.checkpoint_pages_written
                ),
                # Overload robustness layer; the watermarks are live for
                # every run, the counters are zero when disabled.
                "os_queue_high_watermark": float(self.os_queue_high_watermark),
                "device_queue_high_watermark": float(
                    self.device_queue_high_watermark
                ),
                "host_rejections": float(self.host_rejections),
                "device_busy_rejections": float(self.device_busy_rejections),
                "shed_ios": float(self.shed_ios),
                "throttled_ios": float(self.throttled_ios),
                "command_timeouts": float(self.command_timeouts),
                "io_retries": float(self.io_retries),
                "io_retries_exhausted": float(self.io_retries_exhausted),
                "busy_ios": float(self.busy_ios),
                "timeout_ios": float(self.timeout_ios),
                "degraded_entries": float(self.degraded_entries),
                "time_degraded_ms": units.to_milliseconds(self.time_degraded_ns),
            }
        )
        self._summary_cache = summary
        return dict(summary)

    def report(self) -> str:
        lines = [self.stats.report()]
        lines.append(
            f"virtual time  : {units.format_time(self.elapsed_ns)}"
            f" ({self.processed_events} events)"
        )
        lines.append(
            f"GC            : {self.gc_collected_blocks} blocks, "
            f"{self.gc_relocated_pages} pages relocated "
            f"({self.gc_copybacks} by copyback)"
        )
        lines.append(
            f"WL            : {self.wl_migrations} migrations, "
            f"wear spread {self.wear['spread']:.0f} "
            f"(sd {self.wear['stddev']:.2f})"
        )
        lines.append(
            "channel util  : "
            + " ".join(f"{u:.0%}" for u in self.channel_utilisation)
        )
        lines.append(
            f"device memory : {self.device_memory_bytes / (1 << 20):.1f} MiB "
            "(mapping tables + bitmaps + block metadata)"
        )
        if (
            self.corrected_reads
            or self.read_retries
            or self.parity_rebuilds
            or self.uncorrectable_reads
            or self.runtime_retired_blocks
        ):
            lines.append(
                f"reliability   : {self.corrected_reads} corrected, "
                f"{self.read_retries} retries, {self.parity_rebuilds} rebuilds, "
                f"{self.uncorrectable_reads} lost, "
                f"{self.runtime_retired_blocks} blocks retired"
            )
        if (
            self.host_rejections
            or self.device_busy_rejections
            or self.shed_ios
            or self.command_timeouts
            or self.io_retries
        ):
            lines.append(
                f"overload      : {self.host_rejections + self.device_busy_rejections} "
                f"rejected, {self.shed_ios} shed, {self.command_timeouts} timed out, "
                f"{self.io_retries} retries ({self.io_retries_exhausted} exhausted), "
                f"{units.format_time(self.time_degraded_ns)} degraded"
            )
        if self.crash_stats.power_losses:
            lines.append(
                f"crashes       : {self.crash_stats.power_losses} power losses, "
                f"{units.format_time(self.crash_stats.mount_time_ns)} mounting, "
                f"{self.crash_stats.scanned_pages} pages scanned, "
                f"{self.crash_stats.lost_writes} writes lost"
            )
        return "\n".join(lines)


class Simulation:
    """One configured system: engine + array + controller + OS + threads."""

    def __init__(self, config: SimulationConfig) -> None:
        config.validate()
        self.config = config
        self.sim = Simulator(sanitize=config.sanitize)
        self.rng = RandomSource(config.seed, sanitize=config.sanitize)
        self.tracer = TraceRecorder(enabled=config.trace_enabled)
        self.stats = StatisticsGatherer("global")
        #: Power losses scheduled by the fault plan (crash consistency is
        #: a baseline-device property: it does NOT need
        #: ``reliability.enabled``).  With none scheduled, nothing below
        #: is armed and runs are bit-identical to a crash-free simulator.
        plan = config.reliability.fault_plan
        self._power_losses: list[PowerLossEvent] = (
            sorted(plan.power_losses, key=lambda event: event.at_ns)
            if plan is not None
            else []
        )
        crash_armed = bool(self._power_losses)
        self.controller = SsdController(
            self.sim,
            config,
            rng=self.rng,
            tracer=self.tracer,
            stats=self.stats,
            crash_armed=crash_armed,
        )
        self.os = OperatingSystem(
            self.sim, config, self.controller, self.stats, self.tracer, self.rng
        )
        self._coordinator: Optional[PowerCycleCoordinator] = None
        if crash_armed:
            self._coordinator = PowerCycleCoordinator(self)
            self.os.track_inflight = True
            self.os.auditor = self._coordinator.auditor
        self._ran = False

    def add_thread(
        self, thread: object, depends_on: Iterable[str] = (), collect_stats: bool = True
    ) -> None:
        """Register a workload thread (see ``OperatingSystem.add_thread``)."""
        self.os.add_thread(thread, depends_on=depends_on, collect_stats=collect_stats)

    def add_threads(self, threads: Iterable) -> None:
        for thread in threads:
            self.add_thread(thread)

    def run(self, max_time_ns: Optional[int] = None) -> SimulationResult:
        """Run to completion (or to the time limit) and collect results."""
        if self._ran:
            raise RuntimeError("a Simulation instance runs once; build a new one")
        self._ran = True
        limit = max_time_ns if max_time_ns is not None else self.config.max_time_ns
        self.os.start()
        if self._coordinator is not None:
            # Segmented execution: run to each scheduled power loss, tear
            # the device down and remount it, then continue.  A loss that
            # lands while the device is still off/mounting from the
            # previous one fires immediately at the current instant.
            for loss in self._power_losses:
                if limit is not None and loss.at_ns >= limit:
                    break
                if loss.at_ns > self.sim.now:
                    self.sim.run(until=loss.at_ns)
                self._coordinator.power_cycle(loss)
        self.sim.run(until=limit)
        if self.config.sanitize:
            # At a drained queue every EventHandle must have fired or been
            # cancelled; anything else means engine bookkeeping diverged.
            self.sim.drain_check()
        return SimulationResult(self)
