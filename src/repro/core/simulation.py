"""The simulation facade: wire the four layers together and run.

:class:`Simulation` is the main entry point of the library::

    from repro import Simulation, small_config
    from repro.workloads import RandomWriterThread

    sim = Simulation(small_config())
    sim.add_thread(RandomWriterThread("writer", count=2000))
    result = sim.run()
    print(result.stats.report())

The simulation ends when the event queue drains (all threads finished
and every internal operation completed) or when ``max_time_ns`` is hit.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.controller import SsdController
from repro.core import units
from repro.core.config import SimulationConfig
from repro.core.engine import Simulator
from repro.core.rng import RandomSource
from repro.core.statistics import StatisticsGatherer
from repro.core.tracing import TraceRecorder
from repro.host.operating_system import OperatingSystem


class SimulationResult:
    """Everything measured in one run."""

    def __init__(self, simulation: "Simulation") -> None:
        self.config = simulation.config
        self.stats = simulation.stats
        self.tracer = simulation.tracer
        self.elapsed_ns = simulation.sim.now
        self.processed_events = simulation.sim.processed_events
        controller = simulation.controller
        self.thread_stats: dict[str, StatisticsGatherer] = {
            name: record.stats
            for name, record in simulation.os._records.items()
            if record.stats is not None
        }
        self.gc_collected_blocks = controller.gc.collected_blocks
        self.gc_relocated_pages = controller.gc.relocated_pages
        self.gc_copybacks = controller.gc.copyback_relocations
        self.wl_migrations = controller.wear_leveler.migrations_started
        self.wl_migrated_pages = controller.wear_leveler.migrated_pages
        self.wear = controller.wear_leveler.wear_statistics()
        self.retired_blocks = controller.array.retired_blocks
        reliability = controller.reliability
        self.corrected_reads = reliability.corrected_reads if reliability else 0
        self.uncorrectable_reads = reliability.uncorrectable_reads if reliability else 0
        self.read_retries = reliability.read_retries if reliability else 0
        self.parity_rebuilds = reliability.parity_rebuilds if reliability else 0
        self.program_fails = reliability.program_fail_count if reliability else 0
        self.erase_fails = reliability.erase_fail_count if reliability else 0
        self.runtime_retired_blocks = (
            reliability.runtime_retired_blocks if reliability else 0
        )
        self.writes_rejected = reliability.writes_rejected if reliability else 0
        #: Virtual time at which the device degraded to read-only mode;
        #: None when it never did (or reliability is disabled).
        self.read_only_entry_ns = reliability.read_only_entry_ns if reliability else None
        self.channel_utilisation = controller.array.channel_utilisation()
        self.lun_utilisation = controller.array.lun_utilisation()
        self.flash_commands = dict(controller.stats.flash_commands)
        #: True when the run ended with IOs still outstanding: either the
        #: time limit cut the workload short, or the system stalled.
        self.incomplete = simulation.os.outstanding > 0
        self.outstanding_at_end = simulation.os.outstanding
        #: Filled only when ``host.retain_completed_ios`` is set.
        self.completed_ios = simulation.os.completed_ios
        #: Cached :meth:`summary`; a result is immutable once built.
        self._summary_cache: Optional[dict[str, float]] = None

    def summary(self) -> dict[str, float]:
        """Flat metrics dictionary: statistics plus internal activity."""
        if self._summary_cache is not None:
            return dict(self._summary_cache)
        summary = self.stats.summary()
        summary.update(
            {
                "elapsed_ms": units.to_milliseconds(self.elapsed_ns),
                "gc_collected_blocks": float(self.gc_collected_blocks),
                "gc_relocated_pages": float(self.gc_relocated_pages),
                "wl_migrations": float(self.wl_migrations),
                "wear_spread": self.wear["spread"],
                "retired_blocks": float(self.retired_blocks),
                "mean_channel_utilisation": (
                    sum(self.channel_utilisation) / len(self.channel_utilisation)
                ),
                # Reliability subsystem; all zero (and entry -1) when the
                # subsystem is disabled.
                "corrected_reads": float(self.corrected_reads),
                "uncorrectable_reads": float(self.uncorrectable_reads),
                "read_retries": float(self.read_retries),
                "parity_rebuilds": float(self.parity_rebuilds),
                "program_fails": float(self.program_fails),
                "erase_fails": float(self.erase_fails),
                "runtime_retired_blocks": float(self.runtime_retired_blocks),
                "writes_rejected": float(self.writes_rejected),
                "read_only_entry_ms": (
                    units.to_milliseconds(self.read_only_entry_ns)
                    if self.read_only_entry_ns is not None
                    else -1.0
                ),
            }
        )
        self._summary_cache = summary
        return dict(summary)

    def report(self) -> str:
        lines = [self.stats.report()]
        lines.append(
            f"virtual time  : {units.format_time(self.elapsed_ns)}"
            f" ({self.processed_events} events)"
        )
        lines.append(
            f"GC            : {self.gc_collected_blocks} blocks, "
            f"{self.gc_relocated_pages} pages relocated "
            f"({self.gc_copybacks} by copyback)"
        )
        lines.append(
            f"WL            : {self.wl_migrations} migrations, "
            f"wear spread {self.wear['spread']:.0f} "
            f"(sd {self.wear['stddev']:.2f})"
        )
        lines.append(
            "channel util  : "
            + " ".join(f"{u:.0%}" for u in self.channel_utilisation)
        )
        if (
            self.corrected_reads
            or self.read_retries
            or self.parity_rebuilds
            or self.uncorrectable_reads
            or self.runtime_retired_blocks
        ):
            lines.append(
                f"reliability   : {self.corrected_reads} corrected, "
                f"{self.read_retries} retries, {self.parity_rebuilds} rebuilds, "
                f"{self.uncorrectable_reads} lost, "
                f"{self.runtime_retired_blocks} blocks retired"
            )
        return "\n".join(lines)


class Simulation:
    """One configured system: engine + array + controller + OS + threads."""

    def __init__(self, config: SimulationConfig) -> None:
        config.validate()
        self.config = config
        self.sim = Simulator(sanitize=config.sanitize)
        self.rng = RandomSource(config.seed, sanitize=config.sanitize)
        self.tracer = TraceRecorder(enabled=config.trace_enabled)
        self.stats = StatisticsGatherer("global")
        self.controller = SsdController(
            self.sim, config, rng=self.rng, tracer=self.tracer, stats=self.stats
        )
        self.os = OperatingSystem(
            self.sim, config, self.controller, self.stats, self.tracer, self.rng
        )
        self._ran = False

    def add_thread(
        self, thread: object, depends_on: Iterable[str] = (), collect_stats: bool = True
    ) -> None:
        """Register a workload thread (see ``OperatingSystem.add_thread``)."""
        self.os.add_thread(thread, depends_on=depends_on, collect_stats=collect_stats)

    def add_threads(self, threads: Iterable) -> None:
        for thread in threads:
            self.add_thread(thread)

    def run(self, max_time_ns: Optional[int] = None) -> SimulationResult:
        """Run to completion (or to the time limit) and collect results."""
        if self._ran:
            raise RuntimeError("a Simulation instance runs once; build a new one")
        self._ran = True
        limit = max_time_ns if max_time_ns is not None else self.config.max_time_ns
        self.os.start()
        self.sim.run(until=limit)
        if self.config.sanitize:
            # At a drained queue every EventHandle must have fired or been
            # cancelled; anything else means engine bookkeeping diverged.
            self.sim.drain_check()
        return SimulationResult(self)
