"""The experimental-suite API (paper Section 2.3).

"EagleTree contains an experimental suite API, which consists of
experiment templates.  An experiment template takes (1) an SSD parameter
or policy (2) a strategy for how to vary it in an experiment, and (3) a
workload definition.  It runs an experiment and produces a comprehensive
amount of visual statistical output."

:class:`ExperimentTemplate` is exactly that: a base configuration, a
:class:`Parameter` (a dotted configuration path or a custom setter), the
values to sweep, and a workload factory.  It runs one simulation per
value and returns an :class:`ExperimentResult` that yields metric series
over the parameter, per-run metric-over-time series, and formatted
tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.core.config import SimulationConfig, set_by_path
from repro.core.parallel import ResultSource, RunSpec, SweepExecutor, WorkerCount
from repro.core.simulation import SimulationResult
from repro.core.statistics import stable_number_text


def _resolve_cache(cache: "object") -> Optional[ResultSource]:
    """Accept a ready-made cache object or a directory path.

    A string/``os.PathLike`` constructs a
    :class:`repro.service.cache.ResultCache` rooted there (imported
    lazily: the core never depends on the service layer unless a cache
    is actually requested).  Anything exposing ``lookup``/``store`` is
    used as-is.
    """
    if cache is None:
        return None
    if hasattr(cache, "lookup") and hasattr(cache, "store"):
        return cache  # type: ignore[return-value]
    import os

    if isinstance(cache, (str, os.PathLike)):
        from repro.service.cache import ResultCache

        return ResultCache(cache)
    raise TypeError(
        f"cache must be a ResultCache, a directory path or None (got {cache!r})"
    )

#: Builds the threads of the workload for one run.  Receives the run's
#: configuration so it can size itself to the logical space; returns
#: either threads or (thread, depends_on) pairs.
WorkloadFactory = Callable[[SimulationConfig], Iterable]


@dataclass(frozen=True)
class Parameter:
    """The swept parameter: a name plus how to apply a value.

    ``path`` is a dotted configuration path (e.g.
    ``"controller.gc_greediness"``); alternatively ``setter`` receives
    the config and the value for parameters that are not a single field
    (e.g. "channels, keeping total LUNs constant").
    """

    name: str
    path: Optional[str] = None
    setter: Optional[Callable[[SimulationConfig, object], None]] = None

    def apply(self, config: SimulationConfig, value: object) -> None:
        if self.setter is not None:
            self.setter(config, value)
        elif self.path is not None:
            set_by_path(config, self.path, value)
        else:
            raise ValueError(f"parameter {self.name!r} has neither path nor setter")


class ExperimentRun:
    """One point of the sweep: the value and its simulation result."""

    def __init__(self, value: object, config: SimulationConfig, result: SimulationResult) -> None:
        self.value = value
        self.config = config
        self.result = result

    def metric(self, name: str) -> float:
        summary = self.result.summary()
        if name not in summary:
            raise KeyError(
                f"unknown metric {name!r}; available: {sorted(summary)}"
            )
        return summary[name]


class ExperimentResult:
    """The collected sweep, with series/table accessors."""

    def __init__(self, name: str, parameter: Parameter, runs: "list[ExperimentRun]") -> None:
        self.name = name
        self.parameter = parameter
        self.runs = runs

    def values(self) -> list:
        return [run.value for run in self.runs]

    def series(self, metric: str) -> list[tuple[object, float]]:
        """``(parameter value, metric)`` pairs across the sweep."""
        return [(run.value, run.metric(metric)) for run in self.runs]

    def metrics(self, metric: str) -> list[float]:
        return [run.metric(metric) for run in self.runs]

    def best(self, metric: str, maximize: bool = True) -> ExperimentRun:
        chooser = max if maximize else min
        return chooser(self.runs, key=lambda run: run.metric(metric))

    def table(self, metrics: Sequence[str]) -> str:
        """A formatted table: one row per parameter value."""
        from repro.analysis.reporting import format_table

        headers = [self.parameter.name] + list(metrics)
        rows = [
            [run.value] + [run.metric(metric) for metric in metrics]
            for run in self.runs
        ]
        return format_table(headers, rows, title=self.name)

    def to_csv(self, path: str, metrics: Optional[Sequence[str]] = None) -> None:
        """Export the sweep to CSV (all summary metrics by default)."""
        import csv

        if metrics is None:
            metrics = sorted(self.runs[0].result.summary()) if self.runs else []
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([self.parameter.name] + list(metrics))
            for run in self.runs:
                # Metric cells go through the canonical number formatter
                # so exports are byte-stable across runs and platforms
                # (cache hits must reproduce a cold export exactly).
                writer.writerow(
                    [run.value]
                    + [stable_number_text(run.metric(metric)) for metric in metrics]
                )


class GridRun:
    """One cell of a multi-parameter grid."""

    def __init__(self, values: tuple, config: SimulationConfig, result: SimulationResult) -> None:
        self.values = values
        self.config = config
        self.result = result

    def metric(self, name: str) -> float:
        summary = self.result.summary()
        if name not in summary:
            raise KeyError(f"unknown metric {name!r}; available: {sorted(summary)}")
        return summary[name]


class GridResult:
    """A full factorial sweep over several parameters."""

    def __init__(self, name: str, parameters: Sequence[Parameter], runs: "list[GridRun]") -> None:
        self.name = name
        self.parameters = list(parameters)
        self.runs = runs

    def best(self, metric: str, maximize: bool = True) -> GridRun:
        chooser = max if maximize else min
        return chooser(self.runs, key=lambda run: run.metric(metric))

    def slice(self, parameter_name: str, value: object) -> "list[GridRun]":
        """Runs where the named parameter took ``value``."""
        index = self._index_of(parameter_name)
        return [run for run in self.runs if run.values[index] == value]

    def series(self, metric: str) -> list[tuple[tuple, float]]:
        return [(run.values, run.metric(metric)) for run in self.runs]

    def table(self, metrics: Sequence[str]) -> str:
        from repro.analysis.reporting import format_table

        headers = [p.name for p in self.parameters] + list(metrics)
        rows = [
            list(run.values) + [run.metric(metric) for metric in metrics]
            for run in self.runs
        ]
        return format_table(headers, rows, title=self.name)

    def _index_of(self, parameter_name: str) -> int:
        for index, parameter in enumerate(self.parameters):
            if parameter.name == parameter_name:
                return index
        raise KeyError(f"no parameter named {parameter_name!r}")

    def to_csv(self, path: str, metrics: Optional[Sequence[str]] = None) -> None:
        """Export the grid to CSV (all summary metrics by default)."""
        import csv

        if metrics is None:
            metrics = sorted(self.runs[0].result.summary()) if self.runs else []
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([p.name for p in self.parameters] + list(metrics))
            for run in self.runs:
                writer.writerow(
                    list(run.values)
                    + [stable_number_text(run.metric(metric)) for metric in metrics]
                )


class GridExperiment:
    """Full factorial sweep over several parameters -- the exhaustive
    design-space exploration mode ("hundreds of experiments, in a
    tractable way", paper Section 2.1)."""

    def __init__(
        self,
        name: str,
        base_config: SimulationConfig,
        parameters: Sequence[Parameter],
        values: Sequence[Sequence],
        workload: WorkloadFactory,
        max_time_ns: Optional[int] = None,
    ) -> None:
        if len(parameters) != len(values):
            raise ValueError("one value list per parameter required")
        if not parameters:
            raise ValueError("at least one parameter required")
        self.name = name
        self.base_config = base_config
        self.parameters = list(parameters)
        self.values = [list(axis) for axis in values]
        self.workload = workload
        self.max_time_ns = max_time_ns

    def combinations(self) -> list[tuple]:
        import itertools

        return list(itertools.product(*self.values))

    def specs(self) -> list[RunSpec]:
        """The grid materialised as one :class:`RunSpec` per cell, in
        grid order -- the unit the executor, the cache and the
        experiment service all operate on."""
        specs = []
        for index, combination in enumerate(self.combinations()):
            config = self.base_config.copy()
            for parameter, value in zip(self.parameters, combination):
                parameter.apply(config, value)
            specs.append(
                RunSpec(
                    config=config,
                    workload=self.workload,
                    max_time_ns=self.max_time_ns,
                    index=index,
                    label=combination,
                )
            )
        return specs

    def run(
        self,
        progress: Optional[Callable[[tuple, SimulationResult], None]] = None,
        workers: WorkerCount = 1,
        cache: Optional[object] = None,
    ) -> GridResult:
        """Run one simulation per grid cell.

        ``workers > 1`` fans the cells out over a process pool (see
        :class:`repro.core.parallel.SweepExecutor`); ``workers="auto"``
        uses one worker per CPU (so a 1-CPU box falls back to the exact
        serial path).  Results come back in grid order either way, and
        ``progress`` fires in grid order.  ``cache`` -- a
        :class:`repro.service.cache.ResultCache` or a cache-directory
        path -- serves previously computed cells from the on-disk store
        and persists fresh ones, so re-running a grid only simulates
        invalidated cells.
        """
        specs = self.specs()
        executor = SweepExecutor(workers=workers)
        results = executor.map(
            specs,
            progress=(
                None
                if progress is None
                else lambda spec, result: progress(spec.label, result)
            ),
            cache=_resolve_cache(cache),
        )
        runs = [
            GridRun(spec.label, spec.config, result)
            for spec, result in zip(specs, results)
        ]
        return GridResult(self.name, self.parameters, runs)


class ExperimentTemplate:
    """Vary one parameter or policy over a workload; collect metrics."""

    def __init__(
        self,
        name: str,
        base_config: SimulationConfig,
        parameter: Parameter,
        values: Sequence,
        workload: WorkloadFactory,
        max_time_ns: Optional[int] = None,
    ) -> None:
        self.name = name
        self.base_config = base_config
        self.parameter = parameter
        self.values = list(values)
        self.workload = workload
        self.max_time_ns = max_time_ns

    def specs(self) -> list[RunSpec]:
        """The sweep materialised as one :class:`RunSpec` per value, in
        sweep order."""
        specs = []
        for index, value in enumerate(self.values):
            config = self.base_config.copy()
            self.parameter.apply(config, value)
            specs.append(
                RunSpec(
                    config=config,
                    workload=self.workload,
                    max_time_ns=self.max_time_ns,
                    index=index,
                    label=value,
                )
            )
        return specs

    def run(
        self,
        progress: Optional[Callable[[object, SimulationResult], None]] = None,
        workers: WorkerCount = 1,
        cache: Optional[object] = None,
    ) -> ExperimentResult:
        """Run one simulation per parameter value.

        ``progress``, if given, is called after each run (live output in
        the demo spirit); it fires in sweep order even when
        ``workers > 1`` (or ``workers="auto"``, one per CPU) distributes
        the runs over a process pool.  ``cache`` -- a
        :class:`repro.service.cache.ResultCache` or a cache-directory
        path -- transparently reuses previously computed runs.
        """
        specs = self.specs()
        executor = SweepExecutor(workers=workers)
        results = executor.map(
            specs,
            progress=(
                None
                if progress is None
                else lambda spec, result: progress(spec.label, result)
            ),
            cache=_resolve_cache(cache),
        )
        runs = [
            ExperimentRun(spec.label, spec.config, result)
            for spec, result in zip(specs, results)
        ]
        return ExperimentResult(self.name, self.parameter, runs)

    def _run_one(self, config: SimulationConfig) -> SimulationResult:
        return RunSpec(
            config=config, workload=self.workload, max_time_ns=self.max_time_ns
        ).execute()
