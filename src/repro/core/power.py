"""Power-loss and power-restore events (crash-consistency subsystem).

Real SSD robustness engineering is dominated by sudden power loss: all
volatile controller state (write buffer, cached mapping entries,
in-flight array operations) vanishes, while flash contents -- including
the out-of-band (lpn, version) tokens every programmed page carries --
survive.  This module defines the schedulable event pair and the
per-mount/aggregate reports; the orchestration lives in
:mod:`repro.reliability.crash`, the recovery strategies in
:mod:`repro.reliability.recovery`.

A power loss is scheduled through a fault plan::

    plan = FaultPlan().power_loss(at_ns=5_000_000, off_ns=2_000_000)
    config.reliability.fault_plan = plan

The simulation then runs in segments: virtual time advances to the loss
instant, the device-side world is torn down, the restore event fires
``off_ns`` later, the configured recovery strategy rebuilds the mapping
(charging its mount time), and the host resumes against the remounted
device.  With no power loss scheduled, none of this machinery is armed
and runs are bit-identical to a simulator without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PowerRestoreEvent:
    """Power returns at ``at_ns``; the device begins its mount sequence."""

    at_ns: int


@dataclass(frozen=True)
class PowerLossEvent:
    """Power is cut at ``at_ns``; volatile device state is destroyed.

    Always paired with the :class:`PowerRestoreEvent` that follows it --
    a loss without a restore would simply end the experiment.
    """

    at_ns: int
    restore: PowerRestoreEvent

    @property
    def off_ns(self) -> int:
        """Length of the outage (loss to power return, excluding mount)."""
        return self.restore.at_ns - self.at_ns


@dataclass
class MountReport:
    """What one recovery (one mount after one power loss) did and cost."""

    #: Recovery strategy name (``RecoveryStrategy`` value).
    strategy: str
    #: Virtual time of the power loss.
    loss_ns: int
    #: Virtual time power returned (mount starts here).
    restore_ns: int
    #: Total mount duration: scan/replay plus mount-time cleanup.
    mount_time_ns: int
    #: Flash pages read while scanning (OOB scan: every programmed page;
    #: checkpoint+journal: the checkpoint pages).
    scanned_pages: int
    #: Journal records replayed (checkpoint+journal only).
    replayed_records: int
    #: Writes destroyed by the loss: volatile buffered pages plus torn
    #: (partially-programmed) in-flight pages.  Never includes an
    #: acknowledged write -- the durability audit enforces that.
    lost_writes: int
    #: Pages left partially programmed by in-flight programs.
    torn_pages: int
    #: Logical mapping entries recovered at mount.
    recovered_entries: int
    #: Fully-dead blocks erased during mount cleanup.
    cleanup_erases: int
    #: True when the recovered mapping is version-identical to the
    #: pre-crash durable (committed) mapping.  Always True -- a mismatch
    #: raises ``SanitizerError`` -- but kept on the report so tests and
    #: experiments can assert it explicitly.
    mapping_matches: bool = True

    @property
    def ready_ns(self) -> int:
        """Virtual time the device accepts IO again."""
        return self.restore_ns + self.mount_time_ns


@dataclass
class CrashStats:
    """Aggregate crash/recovery accounting across a whole simulation."""

    power_losses: int = 0
    mount_time_ns: int = 0
    scanned_pages: int = 0
    replayed_records: int = 0
    lost_writes: int = 0
    torn_pages: int = 0
    checkpoints_taken: int = 0
    checkpoint_pages_written: int = 0
    reports: list[MountReport] = field(default_factory=list)

    def add(self, report: MountReport) -> None:
        self.power_losses += 1
        self.mount_time_ns += report.mount_time_ns
        self.scanned_pages += report.scanned_pages
        self.replayed_records += report.replayed_records
        self.lost_writes += report.lost_writes
        self.torn_pages += report.torn_pages
        self.reports.append(report)
