"""The discrete-event simulation engine.

EagleTree's defining trait (paper Section 2.1) is that the *entire* IO
stack -- application threads, operating system, SSD controller and flash
array -- runs in virtual time, so that design-space explorations with
hundreds of experiments remain tractable.  This module provides that
virtual clock.

The engine is a classic calendar queue built on :mod:`heapq`:

* Events are scheduled at an absolute virtual time (integer nanoseconds).
* Events scheduled for the same instant fire in FIFO order of scheduling,
  which makes every simulation fully deterministic.
* Events may be cancelled; cancelled events are dropped lazily when they
  reach the head of the queue, and the queue is compacted when cancelled
  entries start to dominate it.

Because every simulated nanosecond flows through this queue, the hot
path is kept allocation-light: the heap stores plain tuples
``(time, seq, fn, args, handle)`` whose ordering is resolved by fast
C-level tuple comparison on the unique ``(time, seq)`` prefix -- the
comparison never reaches the callable.  Fire-and-forget callers use
:meth:`Simulator.post`, which skips the :class:`EventHandle` entirely;
cancellation is tracked in a set of sequence numbers so that
:attr:`Simulator.pending_events` stays O(1) via a live counter.

The engine knows nothing about SSDs; the layers above register plain
callables.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

from repro.core.sanitize import SanitizerError

#: Compact the heap only once this many cancelled entries linger in it
#: (and they outnumber the live entries) -- small queues never pay.
_COMPACT_MIN_CANCELLED = 1024


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class EventHandle:
    """A scheduled event, returned by :meth:`Simulator.schedule`.

    Holding on to the handle allows the caller to :meth:`cancel` the event
    before it fires.  Handles are single-use: once fired or cancelled they
    stay inert.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired", "_sim")

    def __init__(
        self,
        time: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if self.cancelled or self.fired:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._cancel(self.seq)

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and may still fire."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"EventHandle(t={self.time}, seq={self.seq}, {state}, fn={self.fn!r})"


class Simulator:
    """A deterministic discrete-event simulator with an integer clock.

    Typical use::

        sim = Simulator()
        sim.schedule(100, lambda: print("fires at t=100"))
        sim.run()
    """

    __slots__ = (
        "_now",
        "_seq",
        "_queue",
        "_processed",
        "_live",
        "_cancelled",
        "_sanitize",
        "_handles",
    )

    def __init__(self, sanitize: bool = False) -> None:
        self._now = 0
        self._seq = 0
        #: Heap entries: (time, seq, fn, args, handle-or-None).
        self._queue: list[tuple] = []
        self._processed = 0
        #: Count of queued, non-cancelled entries (O(1) pending_events).
        self._live = 0
        #: Sequence numbers cancelled while still sitting in the heap.
        self._cancelled: set[int] = set()
        #: Sanitizer mode (:mod:`repro.core.sanitize`): verify virtual-time
        #: monotonicity on every fire and track outstanding EventHandles so
        #: :meth:`drain_check` can detect leaked handles.  Checks are pure
        #: observers -- a sanitized run is bit-identical to a plain one.
        self._sanitize = sanitize
        #: seq -> EventHandle for every handle that is still pending
        #: (sanitize mode only; stays empty otherwise).
        self._handles: dict[int, EventHandle] = {}

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled, not-cancelled events still queued."""
        return self._live

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` nanoseconds from now.

        ``delay`` must be non-negative; a zero delay fires after all
        callbacks already queued for the current instant.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(time, seq, fn, args, self)
        heapq.heappush(self._queue, (time, seq, fn, args, handle))
        self._live += 1
        if self._sanitize:
            self._handles[seq] = handle
        return handle

    def post(self, delay: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`EventHandle`.

        The hot path of the layers above -- flash phase completions, OS
        dispatches, thread timers -- never cancels its events, so it can
        skip the handle allocation entirely.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (self._now + delay, seq, fn, args, None))
        self._live += 1

    def post_at(self, time: int, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`: no :class:`EventHandle`."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._queue, (time, seq, fn, args, None))
        self._live += 1

    def peek_time(self) -> Optional[int]:
        """Virtual time of the next pending event, or None if none remain."""
        queue = self._queue
        cancelled = self._cancelled
        while queue:
            entry = queue[0]
            if entry[1] in cancelled:
                heapq.heappop(queue)
                cancelled.discard(entry[1])
                continue
            return entry[0]
        return None

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        queue = self._queue
        cancelled = self._cancelled
        while queue:
            time, seq, fn, args, handle = heapq.heappop(queue)
            if seq in cancelled:
                cancelled.discard(seq)
                continue
            if self._sanitize:
                self._check_monotonic(time, seq, fn)
            self._now = time
            self._live -= 1
            self._processed += 1
            if handle is not None:
                handle.fired = True
                self._handles.pop(seq, None)
            fn(*args)
            return True
        return False

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        ``until`` is an absolute virtual time; events scheduled exactly at
        ``until`` still fire, later ones do not (and the clock is advanced
        to ``until``).  Returns the number of events fired by this call.
        """
        # One tight loop instead of peek_time()+step() per event: the head
        # entry is examined exactly once, and the heap/cancellation state
        # is touched through locals.  Callbacks may reschedule or cancel
        # freely -- the queue list and cancelled set are mutated in place.
        queue = self._queue
        cancelled = self._cancelled
        heappop = heapq.heappop
        sanitize = self._sanitize
        fired = 0
        while queue:
            if max_events is not None and fired >= max_events:
                break
            entry = queue[0]
            if entry[1] in cancelled:
                heappop(queue)
                cancelled.discard(entry[1])
                continue
            time = entry[0]
            if until is not None and time > until:
                self._now = until
                break
            heappop(queue)
            if sanitize:
                self._check_monotonic(time, entry[1], entry[2])
            self._now = time
            self._live -= 1
            self._processed += 1
            handle = entry[4]
            if handle is not None:
                handle.fired = True
                if sanitize:
                    self._handles.pop(entry[1], None)
            entry[2](*entry[3])
            fired += 1
        if until is not None and self._live == 0 and self._now < until:
            self._now = until
        return fired

    def advance_to(self, time: int) -> None:
        """Advance the clock to ``time`` without firing events.

        Only valid when no pending event lies at or before ``time``; used
        by components that account for idle periods.
        """
        if time < self._now:
            raise ValueError(f"cannot move clock backwards (time={time}, now={self._now})")
        next_time = self.peek_time()
        if next_time is not None and next_time <= time:
            raise SimulationError(
                f"advance_to({time}) would skip a pending event at t={next_time}"
            )
        self._now = time

    def _check_monotonic(self, time: int, seq: int, fn: Callable[..., Any]) -> None:
        """Sanitize mode: an event about to fire must not lie in the past."""
        if time < self._now:
            raise SanitizerError(
                "virtual-time-monotonicity",
                "event would fire in the past",
                {
                    "event_time": time,
                    "now": self._now,
                    "seq": seq,
                    "fn": getattr(fn, "__qualname__", repr(fn)),
                },
            )

    def drain_check(self) -> None:
        """Sanitize mode: verify engine bookkeeping at a drained queue.

        Call after :meth:`run` returned with no pending events.  Raises
        :class:`~repro.core.sanitize.SanitizerError` when an
        :class:`EventHandle` is still outstanding (it never fired and was
        never cancelled even though the heap is empty -- the heap and the
        handle accounting diverged), when the live counter disagrees with
        the heap, or when cancelled sequence numbers outlived their heap
        entries.
        """
        if not self._sanitize:
            return
        live_in_queue = sum(
            1 for entry in self._queue if entry[1] not in self._cancelled
        )
        if live_in_queue != self._live:
            raise SanitizerError(
                "event-accounting",
                "live-event counter disagrees with the heap",
                {"counter": self._live, "heap": live_in_queue},
            )
        if self._queue:
            return  # not drained: pending events legitimately remain
        leaked = [
            self._handles[seq]
            for seq in sorted(self._handles)
            if self._handles[seq].pending
        ]
        if leaked:
            sample = leaked[0]
            raise SanitizerError(
                "event-handle-leak",
                f"{len(leaked)} handle(s) neither fired nor cancelled at drain",
                {
                    "first_seq": sample.seq,
                    "first_time": sample.time,
                    "first_fn": getattr(sample.fn, "__qualname__", repr(sample.fn)),
                },
            )
        if self._cancelled:
            raise SanitizerError(
                "event-accounting",
                "cancelled sequence numbers outlived their heap entries",
                {"count": len(self._cancelled)},
            )

    def power_cycle_purge(
        self, device_prefixes: tuple[str, ...], shift_ns: int
    ) -> tuple[int, int]:
        """Crash-consistency support: drop device events, delay host events.

        A power loss destroys all device-side state, including every
        scheduled continuation of the controller, flash array and
        reliability layers; host-side events (thread timers, OS restarts)
        survive but cannot make progress until the device has remounted.
        Classification is by the ``__module__`` of the event callable --
        closures and bound methods both carry their defining module.

        Entries whose callable's module starts with one of
        ``device_prefixes`` are discarded; every other live entry is
        shifted ``shift_ns`` into the future (the outage plus mount
        window).  Cancelled entries are physically removed.  Returns
        ``(dropped, shifted)`` counts.
        """
        if shift_ns < 0:
            raise ValueError(f"shift_ns must be >= 0 (got {shift_ns})")
        dropped = 0
        survivors: list[tuple] = []
        for entry in self._queue:
            time, seq, fn, args, handle = entry
            if seq in self._cancelled:
                continue  # physically drop stale cancelled entries
            module = getattr(fn, "__module__", "") or ""
            if module.startswith(device_prefixes):
                dropped += 1
                if handle is not None:
                    handle.cancelled = True
                    if self._sanitize:
                        self._handles.pop(seq, None)
                continue
            if handle is not None:
                handle.time = time + shift_ns
            survivors.append((time + shift_ns, seq, fn, args, handle))
        self._cancelled.clear()
        self._live = len(survivors)
        heapq.heapify(survivors)
        self._queue[:] = survivors
        return dropped, self._live

    def _cancel(self, seq: int) -> None:
        """Mark a queued entry cancelled (called by EventHandle.cancel)."""
        self._cancelled.add(seq)
        self._live -= 1
        if self._sanitize:
            self._handles.pop(seq, None)
        if (
            len(self._cancelled) >= _COMPACT_MIN_CANCELLED
            and len(self._cancelled) * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Physically remove cancelled entries once they dominate the heap.

        Mutates the queue list in place: :meth:`run` holds a reference to
        it across callbacks, so it must stay the same object.
        """
        cancelled = self._cancelled
        self._queue[:] = [entry for entry in self._queue if entry[1] not in cancelled]
        heapq.heapify(self._queue)
        cancelled.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self._now}, pending={self.pending_events})"
