"""The discrete-event simulation engine.

EagleTree's defining trait (paper Section 2.1) is that the *entire* IO
stack -- application threads, operating system, SSD controller and flash
array -- runs in virtual time, so that design-space explorations with
hundreds of experiments remain tractable.  This module provides that
virtual clock.

The engine is a classic calendar queue built on :mod:`heapq`:

* Events are scheduled at an absolute virtual time (integer nanoseconds).
* Events scheduled for the same instant fire in FIFO order of scheduling,
  which makes every simulation fully deterministic.
* Events may be cancelled; cancelled events are dropped lazily when they
  reach the head of the queue.

The engine knows nothing about SSDs; the layers above register plain
callables.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class EventHandle:
    """A scheduled event, returned by :meth:`Simulator.schedule`.

    Holding on to the handle allows the caller to :meth:`cancel` the event
    before it fires.  Handles are single-use: once fired or cancelled they
    stay inert.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "fired")

    def __init__(self, time: int, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        """True while the event is scheduled and may still fire."""
        return not self.cancelled and not self.fired

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else ("fired" if self.fired else "pending")
        return f"EventHandle(t={self.time}, seq={self.seq}, {state}, fn={self.fn!r})"


class Simulator:
    """A deterministic discrete-event simulator with an integer clock.

    Typical use::

        sim = Simulator()
        sim.schedule(100, lambda: print("fires at t=100"))
        sim.run()
    """

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: list[EventHandle] = []
        self._processed = 0

    @property
    def now(self) -> int:
        """Current virtual time in nanoseconds."""
        return self._now

    @property
    def processed_events(self) -> int:
        """Number of events that have fired so far."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of scheduled (possibly cancelled) events still queued."""
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` nanoseconds from now.

        ``delay`` must be non-negative; a zero delay fires after all
        callbacks already queued for the current instant.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., Any], *args: Any) -> EventHandle:
        """Schedule ``fn(*args)`` at the absolute virtual ``time``."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (time={time}, now={self._now})"
            )
        event = EventHandle(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def peek_time(self) -> Optional[int]:
        """Virtual time of the next pending event, or None if none remain."""
        self._drop_cancelled()
        if not self._queue:
            return None
        return self._queue[0].time

    def step(self) -> bool:
        """Fire the next pending event.  Returns False if none remain."""
        self._drop_cancelled()
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now = event.time
        event.fired = True
        self._processed += 1
        event.fn(*event.args)
        return True

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have fired.

        ``until`` is an absolute virtual time; events scheduled exactly at
        ``until`` still fire, later ones do not (and the clock is advanced
        to ``until``).  Returns the number of events fired by this call.
        """
        fired = 0
        while True:
            if max_events is not None and fired >= max_events:
                break
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            self.step()
            fired += 1
        if until is not None and self._now < until and self.peek_time() is None:
            self._now = until
        return fired

    def advance_to(self, time: int) -> None:
        """Advance the clock to ``time`` without firing events.

        Only valid when no pending event lies at or before ``time``; used
        by components that account for idle periods.
        """
        if time < self._now:
            raise ValueError(f"cannot move clock backwards (time={time}, now={self._now})")
        next_time = self.peek_time()
        if next_time is not None and next_time <= time:
            raise SimulationError(
                f"advance_to({time}) would skip a pending event at t={next_time}"
            )
        self._now = time

    def _drop_cancelled(self) -> None:
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Simulator(now={self._now}, pending={self.pending_events})"
