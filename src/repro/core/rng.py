"""Deterministic random-number streams.

Every stochastic component of the simulator (workload generators, random
victim selection, ...) draws from its own named stream derived from the
single experiment seed.  Components therefore never perturb each other's
randomness: adding a new consumer of random numbers does not change the
sequence another component observes, which keeps design-space sweeps
comparable run-to-run (paper Section 2.3: "controlled, repeatable
experiments").

With ``sanitize=True`` (see :mod:`repro.core.sanitize`) every stream
additionally guards its own integrity: a stream may only advance through
its drawing methods, so re-seeding a live stream or perturbing its
internal state from outside (one component contaminating another's
stream) raises :class:`~repro.core.sanitize.SanitizerError`.  The guard
never changes the drawn values -- a sanitized run is bit-identical.
"""

from __future__ import annotations

import hashlib
import random  # simlint: disable=SIM001 -- this module IS the sanctioned wrapper around stdlib random
from typing import Any, Sequence

from repro.core.sanitize import SanitizerError


class RandomStream(random.Random):
    """A named, seeded random stream.

    Subclasses :class:`random.Random` so that all the usual drawing
    methods (``randrange``, ``random``, ``choice``, ...) are available.
    """

    def __init__(self, seed: int, name: str) -> None:
        self.name = name
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        super().__init__(int.from_bytes(digest[:8], "big"))

    def zipf_index(self, n: int, theta: float) -> int:
        """Draw an index in ``[0, n)`` from a Zipf-like distribution.

        ``theta`` in ``(0, 1]`` controls skew; ``theta`` close to 1 gives a
        heavily skewed distribution where low indexes dominate.  Uses the
        classic inverse-CDF approximation over a truncated harmonic series
        so that no O(n) table is required per draw.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0.0 < theta <= 1.0:
            raise ValueError("theta must be in (0, 1]")
        # Quick-and-cheap two-level draw: pick a rank from a power-law and
        # clamp.  This matches the shape used by YCSB-style generators
        # closely enough for scheduling/GC studies while staying O(1).
        u = self.random()
        rank = int(n ** (u ** (1.0 / (1.0 - theta * 0.999))))
        if rank >= n:
            rank = n - 1
        return rank


class SanitizedRandomStream(RandomStream):
    """A :class:`RandomStream` with runtime integrity guards.

    All drawing ultimately funnels through :meth:`random` and
    :meth:`getrandbits`; both verify that the generator state still
    matches the snapshot taken after the previous guarded draw.  A
    mismatch means some code advanced, re-seeded or overwrote this
    stream without going through its own API -- the cross-contamination
    the per-stream design exists to rule out.  Draw counts are kept for
    diagnostics (:meth:`RandomSource.draw_counts`).

    The guard compares full Mersenne-Twister state tuples, which costs a
    few microseconds per draw -- acceptable for an opt-in sanitizer mode
    (see docs/GUIDE.md "Determinism rules & static analysis").
    """

    def __init__(self, seed: int, name: str) -> None:
        self._sealed = False
        self.draws = 0
        super().__init__(seed, name)
        self._sealed = True
        self._expected_state = super().getstate()

    def _guard(self) -> None:
        if super().getstate() != self._expected_state:
            raise SanitizerError(
                "rng-stream-integrity",
                "stream state changed outside its own drawing methods",
                {"stream": self.name, "draws": self.draws},
            )

    def _note_draw(self) -> None:
        self.draws += 1
        self._expected_state = super().getstate()

    def random(self) -> float:
        if self._sealed:
            self._guard()
        value = super().random()
        if self._sealed:
            self._note_draw()
        return value

    def getrandbits(self, k: int) -> int:
        if self._sealed:
            self._guard()
        value = super().getrandbits(k)
        if self._sealed:
            self._note_draw()
        return value

    def seed(self, *args: Any, **kwargs: Any) -> None:
        if getattr(self, "_sealed", False):
            raise SanitizerError(
                "rng-stream-integrity",
                "re-seeding a live stream breaks run-to-run comparability",
                {"stream": self.name},
            )
        super().seed(*args, **kwargs)

    def setstate(self, state: Any) -> None:
        if getattr(self, "_sealed", False):
            raise SanitizerError(
                "rng-stream-integrity",
                "overwriting stream state breaks run-to-run comparability",
                {"stream": self.name},
            )
        super().setstate(state)


class RandomSource:
    """Factory for :class:`RandomStream` objects sharing one base seed.

    ``sanitize=True`` hands out :class:`SanitizedRandomStream` objects
    instead; the drawn values are identical, only integrity violations
    become loud.
    """

    def __init__(self, seed: int, sanitize: bool = False) -> None:
        self.seed = seed
        self.sanitize = sanitize
        self._streams: dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            factory = SanitizedRandomStream if self.sanitize else RandomStream
            self._streams[name] = factory(self.seed, name)
        return self._streams[name]

    def shuffled(self, name: str, items: Sequence) -> list:
        """Return a new list with ``items`` shuffled by stream ``name``."""
        result = list(items)
        self.stream(name).shuffle(result)
        return result

    def draw_counts(self) -> dict[str, int]:
        """Draws per sanitized stream (empty unless ``sanitize=True``).

        Useful when comparing two runs: identical workloads must show
        identical per-stream draw counts.
        """
        return {
            name: stream.draws
            for name, stream in sorted(self._streams.items())
            if isinstance(stream, SanitizedRandomStream)
        }
