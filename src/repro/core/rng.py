"""Deterministic random-number streams.

Every stochastic component of the simulator (workload generators, random
victim selection, ...) draws from its own named stream derived from the
single experiment seed.  Components therefore never perturb each other's
randomness: adding a new consumer of random numbers does not change the
sequence another component observes, which keeps design-space sweeps
comparable run-to-run (paper Section 2.3: "controlled, repeatable
experiments").
"""

from __future__ import annotations

import hashlib
import random
from typing import Sequence


class RandomStream(random.Random):
    """A named, seeded random stream.

    Subclasses :class:`random.Random` so that all the usual drawing
    methods (``randrange``, ``random``, ``choice``, ...) are available.
    """

    def __init__(self, seed: int, name: str):
        self.name = name
        digest = hashlib.sha256(f"{seed}:{name}".encode()).digest()
        super().__init__(int.from_bytes(digest[:8], "big"))

    def zipf_index(self, n: int, theta: float) -> int:
        """Draw an index in ``[0, n)`` from a Zipf-like distribution.

        ``theta`` in ``(0, 1]`` controls skew; ``theta`` close to 1 gives a
        heavily skewed distribution where low indexes dominate.  Uses the
        classic inverse-CDF approximation over a truncated harmonic series
        so that no O(n) table is required per draw.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0.0 < theta <= 1.0:
            raise ValueError("theta must be in (0, 1]")
        # Quick-and-cheap two-level draw: pick a rank from a power-law and
        # clamp.  This matches the shape used by YCSB-style generators
        # closely enough for scheduling/GC studies while staying O(1).
        u = self.random()
        rank = int(n ** (u ** (1.0 / (1.0 - theta * 0.999))))
        if rank >= n:
            rank = n - 1
        return rank


class RandomSource:
    """Factory for :class:`RandomStream` objects sharing one base seed."""

    def __init__(self, seed: int):
        self.seed = seed
        self._streams: dict[str, RandomStream] = {}

    def stream(self, name: str) -> RandomStream:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = RandomStream(self.seed, name)
        return self._streams[name]

    def shuffled(self, name: str, items: Sequence) -> list:
        """Return a new list with ``items`` shuffled by stream ``name``."""
        result = list(items)
        self.stream(name).shuffle(result)
        return result
