"""Structured IO traces (paper Section 2.3).

EagleTree's experiment suite emits "massive visual traces showing exactly
how every IO was handled throughout the simulator components".  This
module records one :class:`TraceRecord` per interesting event at every
layer, supports filtering, and renders a textual trace (the terminal
counterpart of the demo's visual trace panel) or a CSV export.

Tracing is off by default (``SimulationConfig.trace_enabled``) because
full traces are memory-heavy for long runs.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.core import units


@dataclass(frozen=True)
class TraceRecord:
    """One event in the life of an IO or internal operation."""

    time_ns: int
    layer: str  # "thread" | "os" | "controller" | "hardware" | "reliability"
    event: str  # e.g. "issue", "dispatch", "start", "complete"
    detail: str  # free-form, e.g. "read lpn=12 -> (c0,l1,b3,p7)"

    def format(self) -> str:
        return (
            f"{units.format_time(self.time_ns):>12}  "
            f"{self.layer:<10} {self.event:<10} {self.detail}"
        )


class TraceRecorder:
    """Collects :class:`TraceRecord` objects when enabled.

    The recorder is shared by all layers; each layer calls
    :meth:`record` with its layer name.  When disabled, recording is a
    no-op with negligible cost.
    """

    def __init__(self, enabled: bool = False, capacity: Optional[int] = None) -> None:
        self.enabled = enabled
        #: Optional cap on retained records; older records are dropped.
        self.capacity = capacity
        self._records: list[TraceRecord] = []
        self._dropped = 0

    def record(self, time_ns: int, layer: str, event: str, detail: str) -> None:
        if not self.enabled:
            return
        self._records.append(TraceRecord(time_ns, layer, event, detail))
        if self.capacity is not None and len(self._records) > self.capacity:
            overflow = len(self._records) - self.capacity
            del self._records[:overflow]
            self._dropped += overflow

    @property
    def records(self) -> list[TraceRecord]:
        return list(self._records)

    @property
    def dropped(self) -> int:
        """Records discarded due to the capacity cap."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._records)

    def filter(
        self,
        layer: Optional[str] = None,
        event: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> list[TraceRecord]:
        """Records matching the given layer/event/custom predicate."""
        result: Iterable[TraceRecord] = self._records
        if layer is not None:
            result = (r for r in result if r.layer == layer)
        if event is not None:
            result = (r for r in result if r.event == event)
        if predicate is not None:
            result = (r for r in result if predicate(r))
        return list(result)

    def render(self, limit: Optional[int] = None) -> str:
        """Human-readable trace text; ``limit`` keeps the last N records."""
        records = self._records if limit is None else self._records[-limit:]
        header = f"-- trace ({len(records)} of {len(self._records)} records) --"
        return "\n".join([header] + [record.format() for record in records])

    def to_csv(self, path: str) -> None:
        """Export all records to a CSV file."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["time_ns", "layer", "event", "detail"])
            for record in self._records:
                writer.writerow([record.time_ns, record.layer, record.event, record.detail])
