"""The runtime sanitizer: cheap invariant checks behind one switch.

``SimulationConfig(sanitize=True)`` arms extra machine checks in the
engine, the RNG streams and the flash state machines.  The checks are
pure observers -- a sanitized run is bit-identical to an unsanitized one
(same events, same virtual times, same random draws); they only convert
silent corruption into a loud :class:`SanitizerError` that names the
offending event or component.

What is guarded, and where:

* **virtual-time monotonicity** -- the engine verifies that no event
  fires before the current virtual time (``repro.core.engine``);
* **event-handle accounting** -- at queue drain, every
  :class:`~repro.core.engine.EventHandle` must have fired or been
  cancelled; a handle left dangling means the heap and the handle
  bookkeeping diverged (``Simulator.drain_check``);
* **erase-before-program page state machine** -- blocks verify their
  page states and live/dead counters stay consistent on every program,
  invalidate and erase (``repro.hardware.flash``);
* **per-stream RNG integrity** -- a named random stream may only
  advance through its own drawing methods; re-seeding or out-of-band
  state perturbation (one component contaminating another's stream)
  trips the guard (``repro.core.rng``).

The static companion of this module is :mod:`repro.lint`, which catches
the same classes of mistake at review time instead of run time.
"""

from __future__ import annotations

from typing import Any, Optional


class SanitizerError(RuntimeError):
    """A simulator invariant was violated while ``sanitize=True``.

    Carries the invariant name and whatever context the checking layer
    could attach (the offending event callable, virtual times, block
    identity, stream name, ...), so the failure is actionable without a
    debugger.
    """

    def __init__(self, invariant: str, message: str, context: Optional[dict[str, Any]] = None) -> None:
        self.invariant = invariant
        self.context = dict(context) if context else {}
        detail = ""
        if self.context:
            detail = " [" + ", ".join(
                f"{key}={value!r}" for key, value in sorted(self.context.items())
            ) + "]"
        super().__init__(f"{invariant}: {message}{detail}")
