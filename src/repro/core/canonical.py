"""Canonical serialization of configurations and run specs.

The experiment service (:mod:`repro.service`) keys its on-disk result
store by *content*: two sweeps that materialise the same configuration,
workload and time limit must produce the same key, in every process, on
every machine, forever.  That requires a serialization with none of the
usual Python ambiguities -- no dict insertion order, no ``repr`` of
objects carrying memory addresses, no set iteration order.  This module
defines it:

* :func:`canonical_value` -- reduce a configuration tree (dataclasses,
  enums, dicts, sequences, sets, numbers) to a deterministic structure
  of JSON-safe primitives with every ordering made explicit.
* :func:`canonical_workload` -- reduce a workload factory to a stable
  identity (``module:qualname``, recursing through
  ``functools.partial``).  Factories without a stable identity --
  lambdas, closures, ``__main__`` functions -- raise
  :class:`UncacheableWorkloadError` so callers can bypass the cache
  instead of silently serving wrong results.
* :func:`canonical_json` -- the one true byte encoding (sorted keys,
  minimal separators, shortest-round-trip floats).
* :func:`code_fingerprint` -- a SHA-256 over the simulator's source
  code, so a code change invalidates every cached result computed by
  the previous version.

The identity deliberately mirrors the pickling rules of
:class:`~repro.core.parallel.SweepExecutor` (docs/GUIDE.md "Running
sweeps in parallel"): whatever can be shipped to a worker process can
be hashed, and module-level state a factory reads behind the cache's
back is out of scope the same way it is for pickling.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import hashlib
import json
import math
from pathlib import Path
from typing import Callable

__all__ = [
    "UncacheableWorkloadError",
    "canonical_json",
    "canonical_value",
    "canonical_workload",
    "code_fingerprint",
    "content_hash",
]


class UncacheableWorkloadError(ValueError):
    """The workload has no stable cross-process identity (lambda,
    closure, ``__main__`` function, bound method or ad-hoc callable), so
    results computed from it must not be cached."""


def canonical_value(value: object) -> object:
    """Reduce ``value`` to a deterministic JSON-safe structure.

    Dataclasses become ``{"__type__": name, fields...}`` with fields in
    name order; enums become ``"EnumClass.MEMBER"``; mappings and sets
    are explicitly sorted; tuples and lists both become lists.  Objects
    that know how to describe themselves expose a ``canonical()``
    method (e.g. :class:`repro.reliability.inject.FaultPlan`), which is
    honoured before any generic rule.  Anything else -- and any
    non-finite float -- raises ``TypeError``/``ValueError`` so an
    unstable key can never be built silently.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"non-finite float {value!r} has no canonical form")
        return value
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    describe = getattr(value, "canonical", None)
    if callable(describe):
        return describe()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        record: dict[str, object] = {"__type__": type(value).__name__}
        for field in sorted(dataclasses.fields(value), key=lambda f: f.name):
            record[field.name] = canonical_value(getattr(value, field.name))
        return record
    if isinstance(value, dict):
        pairs = [
            [canonical_value(key), canonical_value(item)]
            for key, item in value.items()
        ]
        pairs.sort(key=lambda pair: canonical_json(pair[0]))
        return {"__mapping__": pairs}
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        items = [canonical_value(item) for item in value]
        items.sort(key=canonical_json)
        return {"__set__": items}
    raise TypeError(
        f"{type(value).__name__} has no canonical form; give it a "
        "canonical() method or keep it out of cache-keyed configuration"
    )


def canonical_workload(workload: Callable[..., object]) -> object:
    """A stable cross-process identity for a workload factory.

    Module-level functions reduce to ``"module:qualname"``;
    ``functools.partial`` recurses into its target and canonicalises the
    bound arguments.  Everything without an importable identity raises
    :class:`UncacheableWorkloadError` -- the same boundary as the
    executor's picklability rules, because an identity the worker cannot
    re-import is also an identity a cache key cannot trust.
    """
    if isinstance(workload, functools.partial):
        return {
            "__partial__": canonical_workload(workload.func),
            "args": [canonical_value(arg) for arg in workload.args],
            "kwargs": canonical_value(dict(workload.keywords)),
        }
    module = getattr(workload, "__module__", None)
    qualname = getattr(workload, "__qualname__", None)
    if not module or not qualname:
        raise UncacheableWorkloadError(
            f"workload {workload!r} has no module-level identity"
        )
    if getattr(workload, "__self__", None) is not None:
        raise UncacheableWorkloadError(
            f"bound method {qualname!r} carries instance state the cache "
            "key cannot see"
        )
    if "<lambda>" in qualname or "<locals>" in qualname:
        raise UncacheableWorkloadError(
            f"workload {qualname!r} is a lambda or closure; only "
            "module-level factories (or functools.partial of one) are "
            "cacheable"
        )
    if module == "__main__":
        raise UncacheableWorkloadError(
            f"workload {qualname!r} lives in __main__; its identity "
            "changes with the entry point, so results keyed on it would "
            "collide across scripts"
        )
    return f"{module}:{qualname}"


def canonical_json(value: object) -> str:
    """The one byte encoding of a canonical structure: sorted keys,
    minimal separators, no NaN/Infinity, shortest-round-trip floats."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def content_hash(value: object) -> str:
    """SHA-256 hex digest of ``value``'s canonical JSON."""
    encoded = canonical_json(canonical_value(value)).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


#: Subpackages whose source participates in the code fingerprint: the
#: ones that determine simulation *results*.  Reporting, linting and the
#: service itself are excluded so a dashboard tweak does not flush every
#: cached simulation.
_FINGERPRINTED_SUBPACKAGES = (
    "core",
    "hardware",
    "controller",
    "host",
    "workloads",
    "reliability",
)


@functools.lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """SHA-256 over the simulator's own source files.

    Covers every subpackage that can change simulation results (listed
    in ``_FINGERPRINTED_SUBPACKAGES``), file paths included, so renames
    invalidate too.  Cached per process: the source tree is assumed
    frozen for the life of the interpreter.
    """
    package_root = Path(__file__).resolve().parent.parent
    digest = hashlib.sha256()
    for subpackage in _FINGERPRINTED_SUBPACKAGES:
        for path in sorted((package_root / subpackage).rglob("*.py")):
            relative = path.relative_to(package_root).as_posix()
            digest.update(relative.encode("utf-8"))
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
    return digest.hexdigest()
