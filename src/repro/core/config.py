"""Configuration surface of the simulator.

Paper Section 2.2: "EagleTree allows users to set up every hardware
parameter of the simulated SSD [...] All these parameters are variables
that can be set, viewed and updated with ease.  Predefined configurations
are provided based on existing SSDs and flash chip datasheets."

Everything configurable in this reproduction lives here, as plain
dataclasses that experiments can copy and mutate (see
:mod:`repro.core.experiments`).  Policies are expressed as enums so that
configurations are printable, comparable and hashable for sweep keys.
"""

from __future__ import annotations

import copy
import dataclasses
import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.core import units


class ChipKind(enum.Enum):
    """Flash cell technology; determines the default timing preset."""

    SLC = "slc"
    MLC = "mlc"


class FtlKind(enum.Enum):
    """Mapping scheme run by the controller (paper Section 2.2 Mapping).

    The paper evaluates the two page-based schemes; HYBRID extends the
    design space with the classic block-mapped + log-block scheme the
    page-based FTL literature compares against.
    """

    #: Full page-level map kept entirely in controller RAM.
    PAGE = "page"
    #: DFTL: demand-paged mapping with a cached mapping table (CMT) in RAM
    #: and translation pages on flash (Gupta et al., ASPLOS 2009).
    DFTL = "dftl"
    #: FAST-style hybrid: block-level map plus page-mapped log blocks,
    #: reclaimed by full/switch merges.
    HYBRID = "hybrid"


class GcVictimPolicy(enum.Enum):
    """How the garbage collector picks victim blocks."""

    #: Fewest valid pages first (classic greedy).
    GREEDY = "greedy"
    #: Cost-benefit: weigh reclaimable space against block age.
    COST_BENEFIT = "cost_benefit"
    #: Uniform random among full blocks (baseline for comparisons).
    RANDOM = "random"
    #: Oldest written block first (FIFO / LRU-block).
    OLDEST = "oldest"


class SsdSchedulerPolicy(enum.Enum):
    """SSD-internal IO scheduling policy (paper Section 2.2 Scheduling)."""

    FIFO = "fifo"
    #: Static priorities over (source, type) with ageing.
    PRIORITY = "priority"
    #: Earliest-deadline-first with per-type deadlines.
    DEADLINE = "deadline"
    #: Round-robin fairness across sources.
    FAIR = "fair"


class OsSchedulerPolicy(enum.Enum):
    """OS IO scheduling strategy (paper: "e.g., FIFO, CFQ, priorities")."""

    FIFO = "fifo"
    PRIORITY = "priority"
    #: CFQ-like fair queueing: round-robin across threads.
    FAIR = "fair"
    DEADLINE = "deadline"


class AllocationPolicy(enum.Enum):
    """Which LUN an incoming write is bound to (the "where" decision)."""

    #: Rotate across LUNs globally.
    ROUND_ROBIN = "round_robin"
    #: LUN with the fewest queued flash commands.
    LEAST_QUEUED = "least_queued"
    #: Static striping by logical page number.
    STRIPE = "stripe"
    #: Like ROUND_ROBIN but hot and cold pages go to separate open blocks
    #: (requires a temperature source: detector or hints).
    TEMPERATURE = "temperature"
    #: Pages of the same locality group go to the same open block
    #: (requires update-locality hints through the open interface).
    LOCALITY = "locality"


class TemperatureDetector(enum.Enum):
    """Where page temperature information comes from (Section 2.2 WL)."""

    NONE = "none"
    #: Multiple bloom filters (Park & Du, MSST 2011).
    BLOOM = "bloom"
    #: Pages migrated by static wear leveling are cold, the rest hot.
    STATIC_WL = "static_wl"
    #: Temperatures communicated by the OS through the open interface.
    HINT = "hint"


class RecoveryStrategy(enum.Enum):
    """How the mapping table is reconstructed after a power loss
    (:mod:`repro.reliability.recovery`)."""

    #: Read every programmed page's out-of-band area and rebuild the map
    #: from the (lpn, version) tokens.  No runtime cost, long mount.
    OOB_SCAN = "oob_scan"
    #: Periodic mapping-table checkpoint plus a battery-backed journal of
    #: mapping commits; mount replays the journal tail.  Runtime write
    #: amplification for a short mount.
    CHECKPOINT_JOURNAL = "checkpoint_journal"


@dataclass
class ChipTimings:
    """Basic flash chip timings (paper: "to send a command, transfer data
    on a channel, read, write or erase").

    All times in integer nanoseconds; the channel is modelled by a
    per-byte transfer cost so page size changes propagate automatically.
    """

    #: Command-and-address handshake occupying the channel.
    t_cmd_ns: int = units.microseconds(1)
    #: Array read (page -> chip register).
    t_read_ns: int = units.microseconds(25)
    #: Array program (chip register -> page).
    t_prog_ns: int = units.microseconds(200)
    #: Block erase.
    t_erase_ns: int = units.milliseconds(1.5)
    #: Channel transfer cost per byte (e.g. 10ns/B == 100 MB/s bus).
    bus_ns_per_byte: int = 10
    #: Cell technology, for documentation and preset selection.
    kind: ChipKind = ChipKind.SLC
    #: Chip implements the copyback (internal data move) command.
    supports_copyback: bool = True
    #: Chip has a cache register enabling pipelining: a read's data-out
    #: may overlap the next array operation on the same LUN.
    supports_pipelining: bool = False
    #: Program/erase cycles a block endures before being retired as bad.
    #: ``None`` models an unlimited-endurance device (the default, so
    #: long experiments do not silently lose capacity).  Datasheet-like
    #: values: ~100k for SLC, ~3-10k for MLC.
    endurance_cycles: Optional[int] = None

    @classmethod
    def slc(cls) -> "ChipTimings":
        """SLC preset, modelled on large-block SLC datasheets
        (e.g. Samsung K9XXG08UXM family)."""
        return cls(
            t_cmd_ns=units.microseconds(1),
            t_read_ns=units.microseconds(25),
            t_prog_ns=units.microseconds(200),
            t_erase_ns=units.milliseconds(1.5),
            bus_ns_per_byte=10,
            kind=ChipKind.SLC,
            supports_copyback=True,
            supports_pipelining=True,
        )

    @classmethod
    def mlc(cls) -> "ChipTimings":
        """MLC preset: slower reads, much slower programs and erases."""
        return cls(
            t_cmd_ns=units.microseconds(1),
            t_read_ns=units.microseconds(50),
            t_prog_ns=units.microseconds(800),
            t_erase_ns=units.milliseconds(3),
            bus_ns_per_byte=10,
            kind=ChipKind.MLC,
        )

    def transfer_ns(self, num_bytes: int) -> int:
        """Channel occupancy to move ``num_bytes`` of data."""
        return num_bytes * self.bus_ns_per_byte

    def validate(self) -> None:
        for name in ("t_cmd_ns", "t_read_ns", "t_prog_ns", "t_erase_ns", "bus_ns_per_byte"):
            if getattr(self, name) <= 0:
                raise ValueError(f"ChipTimings.{name} must be positive")


@dataclass
class SsdGeometry:
    """Physical shape of the SSD: channels x LUNs x blocks x pages.

    Following the paper (footnote 1), the LUN -- the ONFI minimum
    granularity of parallelism -- abstracts away packages, chips and dies.
    """

    channels: int = 4
    luns_per_channel: int = 2
    blocks_per_lun: int = 64
    pages_per_block: int = 64
    page_size_bytes: int = 4096
    #: Fraction of blocks that are factory-bad (masked from use, never
    #: allocated; paper: WL "mask[s] bad blocks").  Chosen per LUN from
    #: the experiment seed, so runs stay reproducible.
    bad_block_rate: float = 0.0

    @property
    def total_luns(self) -> int:
        return self.channels * self.luns_per_channel

    @property
    def pages_per_lun(self) -> int:
        return self.blocks_per_lun * self.pages_per_block

    @property
    def total_blocks(self) -> int:
        return self.total_luns * self.blocks_per_lun

    @property
    def total_pages(self) -> int:
        return self.total_luns * self.pages_per_lun

    @property
    def capacity_bytes(self) -> int:
        return self.total_pages * self.page_size_bytes

    def validate(self) -> None:
        for name in (
            "channels",
            "luns_per_channel",
            "blocks_per_lun",
            "pages_per_block",
            "page_size_bytes",
        ):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ValueError(f"SsdGeometry.{name} must be a positive integer")
        if self.blocks_per_lun < 4:
            raise ValueError("blocks_per_lun must be at least 4 (GC headroom)")
        if not 0.0 <= self.bad_block_rate < 0.5:
            raise ValueError("bad_block_rate must be in [0, 0.5)")


@dataclass
class SchedulerConfig:
    """Knobs of the SSD-internal scheduler framework.

    The framework (paper Section 2.2) supports priorities by source and
    type, deadlines with configurable overdue handling, and ageing to
    avoid starvation.  Individual policies consume the subset they need.
    """

    policy: SsdSchedulerPolicy = SsdSchedulerPolicy.FIFO
    #: Lower number = higher priority.  Keys are CommandSource names.
    source_priorities: dict[str, int] = field(
        default_factory=lambda: {
            "APPLICATION": 0,
            "MAPPING": 0,
            "GC": 1,
            "WEAR_LEVELING": 2,
        }
    )
    #: Lower number = higher priority.  Keys are flash command kind names.
    type_priorities: dict[str, int] = field(
        default_factory=lambda: {"READ": 0, "PROGRAM": 0, "COPYBACK": 1, "ERASE": 2}
    )
    #: Deadline per command kind for the DEADLINE policy.
    read_deadline_ns: int = units.microseconds(500)
    write_deadline_ns: int = units.milliseconds(5)
    erase_deadline_ns: int = units.milliseconds(50)
    #: PRIORITY policy: a command waiting longer than this beats priority.
    starvation_age_ns: int = units.milliseconds(20)
    #: Honour open-interface priority hints carried on application IOs.
    use_priority_hints: bool = False

    def copy(self) -> "SchedulerConfig":
        return copy.deepcopy(self)


@dataclass
class WearLevelingConfig:
    """Static and dynamic wear-leveling knobs (paper Section 2.2 WL)."""

    enabled: bool = True
    #: Run the static-WL scan every N block erases.
    check_interval_erases: int = 32
    #: A block is "young and cold" when its erase count is below
    #: (average - threshold) and it has not been erased for longer than
    #: ``idle_factor`` times the average erase interval.
    erase_count_threshold: int = 8
    idle_factor: float = 4.0
    #: Cap concurrent static-WL migrations to bound interference.
    max_concurrent_migrations: int = 1
    #: Dynamic WL: hand young free blocks to hot streams and old free
    #: blocks to cold streams when the allocator asks for an open block.
    dynamic: bool = True


@dataclass
class TemperatureConfig:
    """Hot/cold page classification (paper Section 2.2 WL, option 2)."""

    detector: TemperatureDetector = TemperatureDetector.NONE
    #: Number of bloom filters in the Park & Du multi-filter scheme.
    num_filters: int = 4
    #: Bits per bloom filter.
    filter_bits: int = 4096
    #: Hash functions per filter.
    num_hashes: int = 2
    #: Rotate (decay) the oldest filter every N recorded writes.
    decay_writes: int = 4096
    #: A page whose weighted appearance count reaches this is "hot".
    hot_threshold: float = 1.5


@dataclass
class DftlConfig:
    """DFTL-specific parameters (only used when ``ftl == DFTL``)."""

    #: Cached-mapping-table capacity in entries.  ``None`` derives the
    #: capacity from the controller RAM budget.
    cmt_entries: Optional[int] = None
    #: Bytes per mapping entry used for RAM accounting.
    entry_bytes: int = 8
    #: Write back a batch of dirty entries belonging to the same
    #: translation page on eviction ("batch eviction" of the DFTL paper).
    batch_eviction: bool = True


@dataclass
class HybridConfig:
    """Hybrid-FTL parameters (only used when ``ftl == HYBRID``)."""

    #: Number of page-mapped log blocks (the update area).
    log_blocks: int = 8
    #: Recognise single-lbn, in-order log blocks and promote them to data
    #: blocks without copying (the classic switch merge).
    switch_merge: bool = True


@dataclass
class ControllerConfig:
    """Everything the SSD controller layer does (paper Section 2.2)."""

    ftl: FtlKind = FtlKind.PAGE
    #: Fraction of physical pages hidden from the logical address space.
    overprovisioning: float = 0.12
    #: GC Greediness (paper's own term): GC keeps at least this many
    #: *usable* free blocks on each LUN at all times, on top of the one
    #: block the allocator permanently reserves for GC relocations.
    gc_greediness: int = 2
    gc_victim_policy: GcVictimPolicy = GcVictimPolicy.GREEDY
    #: Relocate GC'd pages within the victim's LUN (preserves per-LUN free
    #: space and enables copyback) rather than anywhere.
    gc_same_lun: bool = True
    #: Proactive (idle-time) garbage collection: when a LUN has been idle
    #: for ``gc_idle_threshold_ns`` and holds reclaimable space, collect
    #: ahead of demand up to ``gc_idle_target`` free blocks per LUN --
    #: the demo's "scheduling internal operations as non-obtrusively as
    #: possible".  0 disables the feature.
    gc_idle_target: int = 0
    gc_idle_threshold_ns: int = units.milliseconds(1)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    allocation: AllocationPolicy = AllocationPolicy.ROUND_ROBIN
    #: Advanced commands (paper Section 2.2 Hardware).
    enable_copyback: bool = True
    enable_interleaving: bool = True
    #: Use the chips' cache registers (if present) to overlap a read's
    #: data-out with the next array operation on the same LUN.
    enable_pipelining: bool = False
    wear_leveling: WearLevelingConfig = field(default_factory=WearLevelingConfig)
    temperature: TemperatureConfig = field(default_factory=TemperatureConfig)
    dftl: DftlConfig = field(default_factory=DftlConfig)
    hybrid: HybridConfig = field(default_factory=HybridConfig)
    #: Pages of battery-backed RAM used by the write-buffer module
    #: (0 disables the module).
    write_buffer_pages: int = 0
    #: Write-buffer durability (paper E14's battery-backed mode).  True:
    #: the buffer lives in battery-backed RAM, writes are acknowledged at
    #: admission and buffered data survives power loss.  False: the
    #: buffer lives in plain RAM, acknowledgement is deferred until the
    #: buffered page is durably flushed, and power loss discards it.
    write_buffer_battery_backed: bool = True
    #: Controller RAM budget (mapping structures), bytes.
    ram_bytes: int = 32 * units.MIB
    #: Battery-backed RAM budget (write buffer), bytes.
    battery_ram_bytes: int = 1 * units.MIB

    def validate(self, geometry: SsdGeometry) -> None:
        if not 0.0 < self.overprovisioning < 0.9:
            raise ValueError("overprovisioning must be in (0, 0.9)")
        if self.gc_greediness < 1:
            raise ValueError("gc_greediness must be >= 1")
        if self.gc_greediness >= geometry.blocks_per_lun // 2:
            raise ValueError(
                "gc_greediness must leave at least half of each LUN usable"
            )
        if self.gc_idle_target < 0:
            raise ValueError("gc_idle_target must be >= 0")
        if self.gc_idle_target >= geometry.blocks_per_lun // 2:
            raise ValueError(
                "gc_idle_target must leave at least half of each LUN usable"
            )
        if self.gc_idle_target > 0 and self.gc_idle_threshold_ns <= 0:
            raise ValueError("gc_idle_threshold_ns must be positive")
        if self.write_buffer_pages < 0:
            raise ValueError("write_buffer_pages must be >= 0")
        buffer_bytes = self.write_buffer_pages * geometry.page_size_bytes
        if self.write_buffer_battery_backed and buffer_bytes > self.battery_ram_bytes:
            raise ValueError(
                "write buffer does not fit in battery-backed RAM "
                f"({buffer_bytes}B > {self.battery_ram_bytes}B)"
            )
        if not self.write_buffer_battery_backed and buffer_bytes > self.ram_bytes:
            raise ValueError(
                "volatile write buffer does not fit in controller RAM "
                f"({buffer_bytes}B > {self.ram_bytes}B)"
            )


@dataclass
class ReliabilityConfig:
    """Error injection, ECC, recovery and graceful degradation
    (:mod:`repro.reliability`).

    All rates default to zero and ``enabled`` defaults to ``False``, so a
    default configuration behaves bit-identically to a simulator without
    the reliability subsystem: no RNG stream is consumed and no event
    timing changes.

    The raw bit-error rate (RBER) of a read grows with the block's
    program/erase cycle count and with the retention age of its data:

    ``rber = base_rber * (1 + wear_coefficient * (pe/wear_reference)^wear_exponent)
                       * (1 + retention_coefficient * age/retention_reference)``

    ECC corrects up to ``ecc_correctable_bits`` bit errors per page; a
    read that exceeds the budget walks a retry ladder (each retry
    re-issues the flash read through the scheduler queues with the RBER
    scaled by ``retry_rber_scale``, modelling read-retry voltage shifts).
    Reads that remain uncorrectable are reconstructed from channel-stripe
    parity when ``parity`` is on.  Program/erase failures retire the
    block at runtime; once more blocks retired than the spare pool holds,
    the device degrades to read-only mode.
    """

    #: Master switch; off keeps every code path and RNG stream untouched.
    enabled: bool = False
    #: Raw bit-error probability per bit of a fresh, young page.
    base_rber: float = 0.0
    #: Wear sensitivity of the RBER (0 disables wear growth).
    wear_coefficient: float = 0.0
    #: P/E cycle count at which the wear term reaches ``wear_coefficient``.
    wear_reference_cycles: int = 3000
    #: Shape of the wear growth (1.0 = linear, 2.0 = quadratic).
    wear_exponent: float = 1.0
    #: Retention sensitivity of the RBER (0 disables retention growth).
    retention_coefficient: float = 0.0
    #: Data age at which the retention term reaches ``retention_coefficient``.
    retention_reference_ns: int = units.SECOND
    #: Bit errors per page the ECC can correct.
    ecc_correctable_bits: int = 8
    #: ECC decode latency added to every read, per correctable bit --
    #: the stronger the code, the longer the decode.
    ecc_decode_ns_per_bit: int = 50
    #: Read-retry ladder depth (0 disables retries).
    max_read_retries: int = 3
    #: Effective-RBER multiplier applied per retry step.
    retry_rber_scale: float = 0.5
    #: Probability that a completed program reports a program failure.
    program_fail_probability: float = 0.0
    #: Probability that a completed erase reports an erase failure.
    erase_fail_probability: float = 0.0
    #: Channel-stripe parity (RAISE-style): uncorrectable pages are
    #: rebuilt by reading the stripe's peers on the other channels.
    parity: bool = False
    #: Blocks per LUN set aside to absorb runtime retirements; once more
    #: blocks have retired than the pool holds, the device goes read-only.
    spare_blocks_per_lun: int = 0
    #: Deterministic fault-injection plan (see :mod:`repro.reliability.inject`).
    fault_plan: Optional[object] = None

    def validate(self, geometry: SsdGeometry) -> None:
        if not self.enabled:
            return
        for name in ("base_rber", "wear_coefficient", "retention_coefficient"):
            if getattr(self, name) < 0.0:
                raise ValueError(f"ReliabilityConfig.{name} must be >= 0")
        if not 0.0 <= self.base_rber < 0.1:
            raise ValueError("base_rber must be in [0, 0.1)")
        for name in ("wear_reference_cycles", "retention_reference_ns"):
            if getattr(self, name) <= 0:
                raise ValueError(f"ReliabilityConfig.{name} must be positive")
        if self.wear_exponent <= 0.0:
            raise ValueError("wear_exponent must be positive")
        if self.ecc_correctable_bits < 0 or self.ecc_decode_ns_per_bit < 0:
            raise ValueError("ECC parameters must be >= 0")
        if self.max_read_retries < 0:
            raise ValueError("max_read_retries must be >= 0")
        if not 0.0 < self.retry_rber_scale <= 1.0:
            raise ValueError("retry_rber_scale must be in (0, 1]")
        for name in ("program_fail_probability", "erase_fail_probability"):
            if not 0.0 <= getattr(self, name) <= 0.5:
                raise ValueError(
                    f"ReliabilityConfig.{name} must be in [0, 0.5] "
                    "(1.0 would retry forever)"
                )
        if self.parity and geometry.channels < 2:
            raise ValueError("channel-stripe parity needs at least 2 channels")
        if not 0 <= self.spare_blocks_per_lun < geometry.blocks_per_lun // 2:
            raise ValueError(
                "spare_blocks_per_lun must leave at least half of each LUN usable"
            )


@dataclass
class CrashConfig:
    """Crash-consistency parameters (power loss, recovery, mount).

    Only consulted when a :class:`~repro.reliability.inject.FaultPlan`
    schedules at least one power loss; otherwise the machinery is never
    armed and runs are bit-identical to a simulator without it.
    """

    #: Mapping reconstruction strategy used at every mount.
    strategy: RecoveryStrategy = RecoveryStrategy.OOB_SCAN
    #: CHECKPOINT_JOURNAL: virtual time between mapping-table checkpoints.
    checkpoint_interval_ns: int = units.milliseconds(50)
    #: CHECKPOINT_JOURNAL: battery-backed journal capacity in records;
    #: filling it forces an immediate checkpoint.
    journal_capacity_records: int = 4096
    #: Bytes per journal record (battery RAM accounting).
    journal_record_bytes: int = 16
    #: CHECKPOINT_JOURNAL: mount cost per replayed journal record.
    replay_ns_per_record: int = 50
    #: OOB_SCAN: out-of-band bytes read per scanned page.
    oob_bytes: int = 16
    #: Fixed mount overhead (controller boot, device identification).
    mount_base_ns: int = units.microseconds(100)

    def validate(self) -> None:
        for name in (
            "checkpoint_interval_ns",
            "journal_capacity_records",
            "journal_record_bytes",
            "oob_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"CrashConfig.{name} must be positive")
        for name in ("replay_ns_per_record", "mount_base_ns"):
            if getattr(self, name) < 0:
                raise ValueError(f"CrashConfig.{name} must be >= 0")


@dataclass
class OverloadConfig:
    """Overload robustness: bounded queues, admission control, command
    timeouts, host retries and graceful degradation.

    Everything defaults to off (``enabled=False``) and the layer is a
    pure opt-in: with the master switch off no code path, event or RNG
    stream changes, so default configurations stay bit-identical to a
    simulator without it.  The layer itself consumes no randomness at
    all (backoff is deterministic exponential), so enabling it never
    perturbs the RNG streams of unrelated subsystems either.

    Four cooperating mechanisms (see DESIGN.md section 9 for the state
    machine):

    * **Host admission** -- ``host_queue_bound`` caps the OS pending
      pool (an NVMe-style bounded submission queue).  A full pool
      rejects new IOs with :class:`~repro.core.events.IoStatus.BUSY`
      completions, or raises
      :class:`~repro.host.interface.QueueFullError` synchronously to
      the issuing thread when ``strict_admission`` is set.
    * **Device admission & degraded mode** -- ``device_queue_bound``
      caps total pending flash commands; past it the controller busies
      new IOs.  Crossing ``degraded_enter_pending`` queued commands or
      ``gc_debt_watermark`` concurrent GC jobs enters *degraded mode*,
      which sheds IOs whose priority hint exceeds
      ``shed_priority_threshold`` and enforces a minimum virtual-time
      gap of ``degraded_admission_gap_ns`` between admissions until the
      backlog falls to ``degraded_exit_pending``.
    * **Command timeouts** -- an *application* command still queued
      (not yet started) ``command_timeout_ns`` after enqueue is aborted
      and its IO completes with ``TIMEOUT``.  Only commands that
      reserved no device state at enqueue are abortable: reads, and
      late-binding programs (page/DFTL); the hybrid FTL's programs
      pre-reserve log slots and are exempt.
    * **Host retries** -- the OS retries ``BUSY``/``TIMEOUT``
      completions up to ``max_retries`` times with deterministic
      exponential backoff (``retry_backoff_ns`` *
      ``retry_backoff_multiplier`` ** attempt), as long as the next
      attempt still fits the per-IO budget ``io_deadline_ns`` measured
      from first issue.  An IO therefore succeeds within its budget or
      fails definitively, with the attempt count recorded on
      ``IoRequest.attempts``.
    """

    #: Master switch; off keeps every code path untouched.
    enabled: bool = False
    #: Max IOs in the OS pending pool; ``None`` leaves the pool unbounded.
    host_queue_bound: Optional[int] = None
    #: Raise ``QueueFullError`` to the issuing thread instead of
    #: completing rejected IOs with ``BUSY`` status.
    strict_admission: bool = False
    #: Max total pending flash commands before the device busies new IOs;
    #: ``None`` leaves the device queues unbounded.
    device_queue_bound: Optional[int] = None
    #: Queued-command age at which an application command is aborted and
    #: completed with ``TIMEOUT``; ``None`` disables timeouts.
    command_timeout_ns: Optional[int] = None
    #: Host-side retry attempts for BUSY/TIMEOUT completions (0 = none).
    max_retries: int = 0
    #: Backoff before the first retry; doubles (by the multiplier) after
    #: each further attempt.  Deterministic -- no RNG jitter by design.
    retry_backoff_ns: int = units.microseconds(100)
    retry_backoff_multiplier: float = 2.0
    #: Per-IO deadline budget measured from first issue; a retry that
    #: cannot complete its backoff within the budget is not attempted.
    #: ``None`` bounds retries by ``max_retries`` alone.
    io_deadline_ns: Optional[int] = None
    #: Pending flash commands at which the controller enters degraded
    #: mode; ``None`` disables the queue-depth trigger.
    degraded_enter_pending: Optional[int] = None
    #: Pending flash commands at which degraded mode exits; ``None``
    #: derives half of ``degraded_enter_pending``.
    degraded_exit_pending: Optional[int] = None
    #: Concurrent GC jobs at which the controller enters degraded mode
    #: (GC debt); ``None`` disables the GC trigger.
    gc_debt_watermark: Optional[int] = None
    #: Degraded mode: minimum virtual-time gap between admitted IOs
    #: (rate limiting); 0 disables the throttle.
    degraded_admission_gap_ns: int = 0
    #: Degraded mode: shed IOs whose ``priority`` hint exceeds this
    #: (larger hint = less urgent); ``None`` sheds nothing.
    shed_priority_threshold: Optional[int] = None

    def validate(self) -> None:
        if not self.enabled:
            return
        for name in ("host_queue_bound", "device_queue_bound"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"OverloadConfig.{name} must be >= 1")
        for name in ("command_timeout_ns", "io_deadline_ns"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"OverloadConfig.{name} must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_ns <= 0:
            raise ValueError("retry_backoff_ns must be positive")
        if self.retry_backoff_multiplier < 1.0:
            raise ValueError("retry_backoff_multiplier must be >= 1.0")
        if self.degraded_enter_pending is not None and self.degraded_enter_pending < 1:
            raise ValueError("degraded_enter_pending must be >= 1")
        if self.degraded_exit_pending is not None:
            if self.degraded_enter_pending is None:
                raise ValueError(
                    "degraded_exit_pending needs degraded_enter_pending"
                )
            if not 0 <= self.degraded_exit_pending <= self.degraded_enter_pending:
                raise ValueError(
                    "degraded_exit_pending must be in [0, degraded_enter_pending]"
                )
        if self.gc_debt_watermark is not None and self.gc_debt_watermark < 1:
            raise ValueError("gc_debt_watermark must be >= 1")
        if self.degraded_admission_gap_ns < 0:
            raise ValueError("degraded_admission_gap_ns must be >= 0")
        if self.shed_priority_threshold is not None and self.shed_priority_threshold < 0:
            raise ValueError("shed_priority_threshold must be >= 0")

    def exit_pending(self) -> int:
        """The effective degraded-mode exit watermark."""
        if self.degraded_exit_pending is not None:
            return self.degraded_exit_pending
        return (self.degraded_enter_pending or 0) // 2


@dataclass
class HostConfig:
    """Operating-system layer configuration (paper Section 2.2 OS)."""

    os_scheduler: OsSchedulerPolicy = OsSchedulerPolicy.FIFO
    #: Maximum IOs outstanding at the SSD at any moment (queue depth).
    max_outstanding: int = 32
    #: Enable the open interface: hint messages attached to IOs are
    #: forwarded to the SSD instead of being stripped at the block layer.
    open_interface: bool = False
    #: Deadlines used by the DEADLINE OS scheduler.
    read_deadline_ns: int = units.milliseconds(1)
    write_deadline_ns: int = units.milliseconds(10)
    #: Keep every completed IoRequest object on the result (memory-heavy
    #: for long runs; meant for tests and fine-grained analysis).
    retain_completed_ios: bool = False

    def validate(self) -> None:
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")


@dataclass
class SimulationConfig:
    """Top-level configuration: one object describes one simulated system."""

    geometry: SsdGeometry = field(default_factory=SsdGeometry)
    timings: ChipTimings = field(default_factory=ChipTimings.slc)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    host: HostConfig = field(default_factory=HostConfig)
    reliability: ReliabilityConfig = field(default_factory=ReliabilityConfig)
    crash: CrashConfig = field(default_factory=CrashConfig)
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    seed: int = 42
    #: Hard stop for the virtual clock; ``None`` runs until workloads end.
    max_time_ns: Optional[int] = None
    #: Record per-command trace events (memory-heavy; off by default).
    trace_enabled: bool = False
    #: Runtime sanitizer (:mod:`repro.core.sanitize`): arm virtual-time
    #: monotonicity, flash state-machine, event-handle-leak and RNG
    #: stream-integrity checks.  Results are bit-identical either way;
    #: invariant violations raise ``SanitizerError`` instead of silently
    #: corrupting the run.
    sanitize: bool = False

    @property
    def logical_pages(self) -> int:
        """Size of the logical address space exposed to the host."""
        return int(self.geometry.total_pages * (1.0 - self.controller.overprovisioning))

    def copy(self) -> "SimulationConfig":
        """Deep copy, for experiment sweeps mutating one parameter."""
        return copy.deepcopy(self)

    def validate(self) -> None:
        """Check cross-field consistency; raises ``ValueError`` on issues."""
        self.geometry.validate()
        self.timings.validate()
        self.controller.validate(self.geometry)
        self.host.validate()
        self.reliability.validate(self.geometry)
        self.crash.validate()
        self.overload.validate()
        if self.logical_pages < 1:
            raise ValueError("overprovisioning leaves no logical space")
        plan = self.reliability.fault_plan
        plan_has_media_faults = plan is not None and (
            getattr(plan, "erase_failures", None) or getattr(plan, "program_failures", None)
        )
        if (
            self.reliability.enabled
            and self.controller.ftl is FtlKind.HYBRID
            and (
                self.reliability.program_fail_probability > 0.0
                or self.reliability.erase_fail_probability > 0.0
                or plan_has_media_faults
            )
        ):
            raise ValueError(
                "program/erase fault injection needs the generic GC to drain "
                "condemned blocks; the hybrid FTL manages physical space itself"
            )
        # Feasibility: every LUN must be able to hold its share of live
        # data while keeping the GC watermark plus the GC reserve block
        # free, otherwise steady state deadlocks on an all-live device.
        # The reliability spare pool is reserved the same way: spares
        # absorb runtime retirements, so they must never be needed to
        # hold the logical space in the first place.
        spare_blocks = (
            self.reliability.spare_blocks_per_lun if self.reliability.enabled else 0
        )
        slack_blocks = self.controller.gc_greediness + 1 + spare_blocks
        expected_good = int(
            self.geometry.total_pages * (1.0 - self.geometry.bad_block_rate)
        )
        usable_pages = (
            expected_good
            - self.geometry.total_luns * slack_blocks * self.geometry.pages_per_block
        )
        if self.logical_pages > usable_pages:
            raise ValueError(
                f"infeasible configuration: logical space {self.logical_pages} pages "
                f"exceeds {usable_pages} usable pages once every LUN reserves "
                f"gc_greediness+1 = {self.controller.gc_greediness + 1} blocks plus "
                f"{spare_blocks} spare blocks; raise "
                "overprovisioning, lower gc_greediness, shrink the spare pool, "
                "or add blocks"
            )

    def describe(self) -> str:
        """One-paragraph human-readable summary of the configuration."""
        g = self.geometry
        return (
            f"SSD {g.channels}ch x {g.luns_per_channel} LUN, "
            f"{g.blocks_per_lun} blk/LUN x {g.pages_per_block} pg/blk x "
            f"{units.format_bytes(g.page_size_bytes)} "
            f"({units.format_bytes(g.capacity_bytes)} raw, "
            f"OP {self.controller.overprovisioning:.0%}), "
            f"{self.timings.kind.value.upper()} chips, "
            f"FTL {self.controller.ftl.value}, "
            f"GC greediness {self.controller.gc_greediness}, "
            f"SSD sched {self.controller.scheduler.policy.value}, "
            f"OS sched {self.host.os_scheduler.value}, "
            f"QD {self.host.max_outstanding}, "
            f"open interface {'on' if self.host.open_interface else 'off'}"
        )


def small_config(**overrides: object) -> SimulationConfig:
    """A tiny SSD for unit tests: fast to simulate, still parallel.

    Tiny LUNs make per-LUN slack proportionally expensive, so the
    overprovisioning is higher than the demo configuration's.
    """
    config = SimulationConfig(
        geometry=SsdGeometry(
            channels=2,
            luns_per_channel=2,
            blocks_per_lun=32,
            pages_per_block=16,
            page_size_bytes=2048,
        ),
    )
    config.controller.overprovisioning = 0.18
    return _apply_overrides(config, overrides)


def demo_config(**overrides: object) -> SimulationConfig:
    """The configuration used by the demonstration experiments."""
    config = SimulationConfig(
        geometry=SsdGeometry(
            channels=4,
            luns_per_channel=2,
            blocks_per_lun=64,
            pages_per_block=32,
            page_size_bytes=4096,
        ),
    )
    return _apply_overrides(config, overrides)


def _apply_overrides(config: SimulationConfig, overrides: dict) -> SimulationConfig:
    for key, value in overrides.items():
        if not hasattr(config, key):
            raise TypeError(f"unknown SimulationConfig field {key!r}")
        setattr(config, key, value)
    return config


def set_by_path(config: SimulationConfig, path: str, value: object) -> None:
    """Set a (possibly nested) configuration field by dotted path.

    Used by experiment templates: ``set_by_path(cfg,
    "controller.gc_greediness", 4)``.  Raises ``AttributeError`` for
    unknown paths so typos in sweeps fail fast.
    """
    parts = path.split(".")
    target = config
    for part in parts[:-1]:
        target = getattr(target, part)
    leaf = parts[-1]
    if dataclasses.is_dataclass(target) and leaf not in {
        f.name for f in dataclasses.fields(target)
    }:
        raise AttributeError(f"{type(target).__name__} has no field {leaf!r}")
    if not hasattr(target, leaf):
        raise AttributeError(f"{type(target).__name__} has no field {leaf!r}")
    setattr(target, leaf, value)


def get_by_path(config: SimulationConfig, path: str) -> object:
    """Read a (possibly nested) configuration field by dotted path."""
    target = config
    for part in path.split("."):
        target = getattr(target, part)
    return target
