"""Derived metrics used by the experiments.

The demo game (paper Section 3) scores configurations by "throughput
[...] while balancing mean latency and latency variability between
different types of IOs"; the helpers here quantify that balance, plus
the fairness question raised in the introduction ("application IOs also
interfere with each other, which raises issues of fairness").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.events import IoType
from repro.core.statistics import StatisticsGatherer


def fairness_index(values: Sequence[float]) -> float:
    """Jain's fairness index over per-thread (or per-type) throughputs.

    1.0 means perfectly equal shares; 1/n means one party got all.
    Empty or all-zero inputs yield 1.0 (vacuously fair).
    """
    values = [float(v) for v in values]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


def latency_balance(stats: StatisticsGatherer) -> float:
    """How balanced read and write mean latencies are, in (0, 1].

    1.0 means identical means; the metric is min/max of the two means.
    Degenerates to 1.0 when a type has no samples (nothing to balance).
    """
    read_mean = stats.latency[IoType.READ].mean
    write_mean = stats.latency[IoType.WRITE].mean
    if read_mean <= 0.0 or write_mean <= 0.0:
        return 1.0
    return min(read_mean, write_mean) / max(read_mean, write_mean)


def variability_balance(stats: StatisticsGatherer) -> float:
    """Like :func:`latency_balance` but over latency standard deviations
    (the paper's latency-variability metric)."""
    read_sd = stats.latency[IoType.READ].stddev
    write_sd = stats.latency[IoType.WRITE].stddev
    if read_sd <= 0.0 or write_sd <= 0.0:
        return 1.0
    return min(read_sd, write_sd) / max(read_sd, write_sd)


def game_score(stats: StatisticsGatherer) -> float:
    """The demonstration-game objective: throughput, discounted by
    imbalance in mean latency and in latency variability between reads
    and writes."""
    return stats.throughput_iops() * latency_balance(stats) * variability_balance(stats)


def mean_retries_per_read(summary: dict) -> float:
    """Average retry-ladder depth per completed application read.

    Feeds on a :meth:`~repro.core.simulation.SimulationResult.summary`
    dictionary; 0.0 when reads never retried (or reliability is off).
    """
    reads = summary.get("completed_reads", 0.0)
    if reads <= 0.0:
        return 0.0
    return summary.get("read_retries", 0.0) / reads


def unrecoverable_read_rate(summary: dict) -> float:
    """Fraction of completed application reads that lost data (ECC and
    parity both exhausted) -- the simulated device's UBER analogue."""
    reads = summary.get("completed_reads", 0.0)
    if reads <= 0.0:
        return 0.0
    return summary.get("uncorrectable_reads", 0.0) / reads


def coefficient_of_variation(values: Iterable[float]) -> float:
    """Standard deviation / mean; 0.0 for empty or zero-mean inputs."""
    values = [float(v) for v in values]
    if not values:
        return 0.0
    mean = sum(values) / len(values)
    if mean == 0.0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return variance**0.5 / mean
