"""Terminal tables and ASCII charts.

The experiment suite "produces a comprehensive amount of visual
statistical output" (Section 2.3); in this reproduction the output is
textual: aligned tables for parameter sweeps and horizontal-bar ASCII
charts for series over a parameter or over time.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core import units


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:,.2f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: Optional[str] = None
) -> str:
    """Render an aligned text table."""
    cells = [[_format_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), max((len(row[i]) for row in cells), default=0))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(f"== {title} ==")
    lines.append("  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append("  ".join(row[i].rjust(widths[i]) for i in range(len(row))))
    return "\n".join(lines)


def ascii_chart(
    series: Sequence[tuple[object, float]],
    title: Optional[str] = None,
    width: int = 50,
    unit: str = "",
) -> str:
    """A horizontal bar chart of ``(label, value)`` pairs."""
    if not series:
        return "(empty series)"
    peak = max(value for _, value in series)
    label_width = max(len(str(label)) for label, _ in series)
    lines = []
    if title:
        lines.append(f"== {title} ==")
    for label, value in series:
        bar_length = 0 if peak <= 0 else round(value / peak * width)
        bar = "#" * bar_length
        lines.append(
            f"{str(label).rjust(label_width)} | {bar} {_format_cell(float(value))}{unit}"
        )
    return "\n".join(lines)


def ascii_histogram(
    samples: Sequence[float],
    bins: int = 12,
    title: Optional[str] = None,
    width: int = 50,
    label_fn=None,
) -> str:
    """A latency-distribution histogram (the demo's per-IO view).

    ``label_fn`` formats the bin's lower edge (defaults to
    :func:`repro.core.units.format_time` on rounded values, which suits
    nanosecond latencies).
    """
    if not samples:
        return "(no samples)"
    if bins < 1:
        raise ValueError("bins must be >= 1")
    low, high = min(samples), max(samples)
    if label_fn is None:
        label_fn = lambda edge: units.format_time(round(edge))
    if high == low:
        return ascii_chart([(label_fn(low), float(len(samples)))], title=title, width=width)
    span = (high - low) / bins
    counts = [0] * bins
    for sample in samples:
        index = min(bins - 1, int((sample - low) / span))
        counts[index] += 1
    series = [
        (label_fn(low + index * span), float(count))
        for index, count in enumerate(counts)
    ]
    return ascii_chart(series, title=title, width=width)


def sparkline(values: Sequence[float], width: int = 24) -> str:
    """A one-line mini-chart of a metric series (the dashboard's
    per-cell trend view).  Down-samples by averaging when the series is
    longer than ``width``; scales to the series' own min..max."""
    if not values:
        return ""
    values = [float(v) for v in values]
    if len(values) > width:
        stride = -(-len(values) // width)
        values = [
            sum(values[start : start + stride]) / len(values[start : start + stride])
            for start in range(0, len(values), stride)
        ]
    low, high = min(values), max(values)
    ramp = "▁▂▃▄▅▆▇█"
    if high == low:
        return ramp[0] * len(values)
    span = high - low
    return "".join(
        ramp[min(len(ramp) - 1, int((value - low) / span * len(ramp)))]
        for value in values
    )


def format_event_log(
    events: Sequence[str], tail: Optional[int] = None, indent: str = "  "
) -> str:
    """Render a job's lifecycle event log (submitted / started /
    interrupted / resumed ...), optionally only the last ``tail``
    entries -- the dashboard's footer view."""
    shown = list(events if tail is None else events[-tail:])
    if not shown:
        return ""
    dropped = len(events) - len(shown)
    lines = [f"{indent}... {dropped} earlier events"] if dropped > 0 else []
    lines.extend(f"{indent}{line}" for line in shown)
    return "\n".join(lines)


class IncrementalTable:
    """A table that renders row-by-row as results stream in.

    :func:`format_table` needs every row up front to size its columns;
    a live dashboard gets rows one at a time and must not re-flow what
    is already on screen.  This table fixes column widths at
    construction (header width plus ``min_width``), so
    :meth:`header_lines` can be printed immediately and each
    :meth:`add_row` returns one already-aligned line to append.
    :meth:`render` re-renders everything seen so far (for full-screen
    refreshes and the HTML exporter).
    """

    def __init__(
        self,
        headers: Sequence[str],
        title: Optional[str] = None,
        min_width: int = 12,
    ) -> None:
        self.headers = [str(header) for header in headers]
        self.title = title
        self.widths = [max(len(header), min_width) for header in self.headers]
        self.rows: list[list[str]] = []

    def header_lines(self) -> list[str]:
        lines = []
        if self.title:
            lines.append(f"== {self.title} ==")
        lines.append(
            "  ".join(h.ljust(self.widths[i]) for i, h in enumerate(self.headers))
        )
        lines.append("  ".join("-" * width for width in self.widths))
        return lines

    def _format_row(self, row: Sequence) -> list[str]:
        cells = [_format_cell(value) for value in row]
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        return cells

    def add_row(self, row: Sequence) -> str:
        """Record ``row``; returns its rendered line.  Cells wider than
        the fixed column are left intact (the line bulges rather than
        losing data)."""
        cells = self._format_row(row)
        self.rows.append(cells)
        return self.render_row(cells)

    def render_row(self, cells: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(self.widths[i]) for i, cell in enumerate(cells)
        )

    def render(self) -> str:
        """The whole table so far (header + every added row)."""
        return "\n".join(
            self.header_lines() + [self.render_row(cells) for cells in self.rows]
        )


def ascii_timeline(
    series: Sequence[tuple[int, float]],
    title: Optional[str] = None,
    width: int = 50,
    max_rows: int = 40,
) -> str:
    """A bar chart over virtual time; down-samples long series by
    averaging adjacent buckets."""
    if not series:
        return "(empty series)"
    if len(series) > max_rows:
        stride = -(-len(series) // max_rows)
        compacted = []
        for start in range(0, len(series), stride):
            chunk = series[start : start + stride]
            mean = sum(v for _, v in chunk) / len(chunk)
            compacted.append((chunk[0][0], mean))
        series = compacted
    labelled = [(units.format_time(t), value) for t, value in series]
    return ascii_chart(labelled, title=title, width=width)
