"""Analysis and reporting: tables, ASCII charts and derived metrics.

The terminal counterpart of the demo GUI's "numerical performance
metrics, traces, and graphical outputs" panel.
"""

from repro.analysis.metrics import fairness_index, latency_balance
from repro.analysis.reporting import (
    ascii_chart,
    ascii_histogram,
    ascii_timeline,
    format_table,
)

__all__ = [
    "ascii_chart",
    "ascii_histogram",
    "ascii_timeline",
    "fairness_index",
    "format_table",
    "latency_balance",
]
