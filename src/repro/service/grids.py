"""Module-level grid and workload builders for the service entry points.

The CLI (``python -m repro.service``), the cache benchmark and the CI
smoke job all need workload factories that are (a) picklable for
``workers > 1`` and (b) *cacheable* -- carrying a stable
``module:qualname`` identity for :mod:`repro.core.canonical`.  Defining
them here (instead of inside ``__main__`` modules, whose name changes
with the entry point) gives every caller the same identities, so a grid
warmed by the benchmark is a cache hit for the CLI and vice versa.
"""

from __future__ import annotations

import functools
import itertools
from typing import Optional, Sequence

from repro.core.config import SimulationConfig, demo_config, set_by_path, small_config
from repro.core.parallel import RunSpec
from repro.host.interface import temperature_hint
from repro.workloads import (
    MixedWorkloadThread,
    RandomWriterThread,
    precondition_sequential,
)

__all__ = [
    "demo_workload",
    "grid_manifest",
    "grid_specs",
    "mixed_workload",
    "parse_axis",
    "specs_from_manifest",
]


def mixed_workload(
    config: SimulationConfig,
    ios: int = 2000,
    read_fraction: float = 0.5,
    depth: int = 16,
) -> list:
    """The canonical sweep workload: a mixed reader/writer, sized by
    ``functools.partial`` so the IO count is part of the cache key."""
    return [
        MixedWorkloadThread("mix", count=ios, read_fraction=read_fraction, depth=depth)
    ]


def demo_workload(
    config: SimulationConfig,
    kind: str = "mixed",
    ops: int = 20_000,
    depth: int = 16,
) -> list:
    """The demo console's workloads, service-shaped: preconditioned
    sequential fill, then the selected application thread.

    ``kind`` is one of ``mixed`` (50/50 read/write), ``writes`` (random
    writers) or ``hotcold`` (zipf-skewed writes, temperature-hinted when
    the open interface is on).  Closures created *inside* the factory
    are fine -- the factory body runs in the worker, only its identity
    and arguments are hashed/pickled.
    """
    prep = precondition_sequential(config.logical_pages)
    if kind == "mixed":
        app = MixedWorkloadThread("app", count=ops, read_fraction=0.5, depth=depth)
    elif kind == "writes":
        app = RandomWriterThread("app", count=ops, depth=depth)
    elif kind == "hotcold":
        hot_span = config.logical_pages // 10

        def hint_fn(io_type, lpn):
            return temperature_hint(lpn < hot_span)

        app = RandomWriterThread(
            "app", count=ops, depth=depth, zipf_theta=0.9, hint_fn=hint_fn
        )
    else:
        raise ValueError(f"unknown demo workload {kind!r}")
    return [prep, (app, [prep.name])]


def parse_axis(text: str) -> tuple[str, list]:
    """Parse one ``--axis path=v1,v2,...`` argument.

    Values parse as int, then float, then stay strings; the path is a
    dotted configuration path (``controller.gc_greediness``).
    """
    path, separator, tail = text.partition("=")
    if not separator or not path or not tail:
        raise ValueError(f"axis must look like path=v1,v2,... (got {text!r})")
    values: list = []
    for token in tail.split(","):
        token = token.strip()
        try:
            values.append(int(token))
            continue
        except ValueError:
            pass
        try:
            values.append(float(token))
            continue
        except ValueError:
            pass
        values.append(token)
    return path, values


def grid_manifest(
    axes: Sequence[tuple[str, Sequence]],
    *,
    ios: int = 2000,
    base: str = "small",
    seed: int = 42,
    max_time_ns: Optional[int] = None,
) -> dict:
    """A JSON-able description of a :func:`grid_specs` grid.

    Stored in the sweep journal manifest so ``python -m repro.service
    resume <job>`` can rebuild the exact spec list in a fresh process
    (see :func:`specs_from_manifest`).
    """
    return {
        "kind": "grid",
        "axes": [[path, list(values)] for path, values in axes],
        "ios": ios,
        "base": base,
        "seed": seed,
        "max_time_ns": max_time_ns,
    }


def specs_from_manifest(manifest: dict) -> list[RunSpec]:
    """Rebuild the spec list described by :func:`grid_manifest`.

    The round trip is exact: the journal's grid signature (computed
    over per-spec cache keys) is re-verified against the rebuilt specs
    before any cell is replayed, so drift here fails loudly rather
    than silently replaying the wrong experiment.
    """
    if manifest.get("kind") != "grid":
        raise ValueError(
            f"cannot rebuild specs from manifest kind {manifest.get('kind')!r}"
        )
    axes = [(str(path), list(values)) for path, values in manifest["axes"]]
    max_time_ns = manifest.get("max_time_ns")
    return grid_specs(
        axes,
        ios=int(manifest.get("ios", 2000)),
        base=str(manifest.get("base", "small")),
        seed=int(manifest.get("seed", 42)),
        max_time_ns=int(max_time_ns) if max_time_ns is not None else None,
    )


def grid_specs(
    axes: Sequence[tuple[str, Sequence]],
    *,
    ios: int = 2000,
    base: str = "small",
    seed: int = 42,
    max_time_ns: Optional[int] = None,
) -> list[RunSpec]:
    """Materialise a full-factorial grid over dotted config paths.

    ``axes`` is ``[(path, values), ...]``; the product is enumerated in
    axis-major order (itertools.product semantics), matching
    :class:`~repro.core.experiments.GridExperiment`.  The base
    configuration is ``small`` or ``demo``.
    """
    if not axes:
        raise ValueError("at least one axis required")
    base_config = small_config() if base == "small" else demo_config()
    base_config.seed = seed
    specs = []
    for index, combination in enumerate(itertools.product(*(values for _, values in axes))):
        config = base_config.copy()
        for (path, _), value in zip(axes, combination):
            set_by_path(config, path, value)
        specs.append(
            RunSpec(
                config=config,
                workload=functools.partial(mixed_workload, ios=ios),
                max_time_ns=max_time_ns,
                index=index,
                label=combination,
            )
        )
    return specs
