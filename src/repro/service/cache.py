"""The content-addressed result store.

Every materialised :class:`~repro.core.parallel.RunSpec` reduces to a
canonical description (:mod:`repro.core.canonical`) that is hashed --
together with a fingerprint of the simulator's own source code -- into a
SHA-256 key.  A completed run's summary is persisted under that key, so
an *equivalent* run submitted later (same config, same workload
identity, same time limit, same code version) is served from disk
instead of being simulated again.

Invalidation is entirely structural -- nothing expires by time:

* change any configuration field -> different canonical form -> new key
  (only the affected cells of a sweep re-run);
* change the simulator's code -> new fingerprint -> every old key is
  unreachable (stale entries linger on disk until ``clear(all_versions=
  True)``, but can never be served);
* ``clear()`` drops the current code version's entries explicitly.

Layout on disk (human-greppable JSON, one file per result)::

    <root>/<fingerprint[:16]>/<key>.json

The payload stores the spec's canonical description next to the summary
so entries are auditable, and files are written atomically (tmp +
``os.replace``) so concurrent sweeps sharing one cache directory never
observe a torn entry.  Payload bytes are deterministic: storing the same
result twice writes identical files.

Integrity (long campaigns trust this store for hours of work):

* every envelope carries a SHA-256 ``checksum`` over its own canonical
  bytes, verified on ``lookup`` -- a truncated, bit-rotted or
  hand-mangled entry counts as a miss (``corrupt_entries``), is moved
  to a ``quarantine/`` subdirectory for post-mortem, and the fresh
  result overwrites it;
* :meth:`ResultCache.verify` audits a whole directory without touching
  it, :meth:`ResultCache.repair` quarantines everything corrupt (the
  ``cache verify`` / ``cache repair`` CLI subcommands);
* mutations take an advisory ``.lock`` file per version directory, so
  concurrent sweeps sharing a store never interleave a publish with a
  quarantine sweep;
* stores check free disk space first and fail loudly
  (:class:`CacheWriteError`) instead of writing a torn entry, and stale
  ``*.tmp`` files left by a process killed mid-publish are reaped on
  open and on ``clear()``.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import tempfile
import time
from pathlib import Path
from typing import Iterator, Optional

from repro.core.canonical import (
    UncacheableWorkloadError,
    canonical_json,
    code_fingerprint,
)
from repro.core.parallel import RunSpec
from repro.core.simulation import SimulationResult
from repro.core.statistics import (
    SummaryValue,
    deserialize_summary,
    serialize_summary,
)

__all__ = [
    "CacheIntegrityError",
    "CacheWriteError",
    "CachedResult",
    "ResultCache",
    "default_cache_root",
    "ensure_headroom",
]

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Subdirectory (per version dir) corrupt entries are moved into.
QUARANTINE_DIR = "quarantine"

#: Stale ``*.tmp`` files older than this are reaped on cache open; the
#: age guard keeps a concurrent process's in-flight publish safe.
TMP_MAX_AGE_S = 3600.0

#: Free space demanded beyond the payload itself before writing.
STORE_HEADROOM_BYTES = 1 << 20


class CacheIntegrityError(ValueError):
    """A stored entry failed its structural or checksum validation."""


class CacheWriteError(OSError):
    """A store was refused up front (e.g. the disk is nearly full)
    instead of risking a torn entry."""


def _free_bytes(path: Path) -> int:
    """Free bytes on the filesystem holding ``path`` (monkeypatchable
    seam for tests)."""
    return shutil.disk_usage(path).free


def ensure_headroom(path: Path, payload_bytes: int) -> None:
    """Raise :class:`CacheWriteError` unless ``path``'s filesystem has
    room for ``payload_bytes`` plus :data:`STORE_HEADROOM_BYTES`."""
    needed = payload_bytes + STORE_HEADROOM_BYTES
    try:
        free = _free_bytes(path)
    except OSError:
        return  # cannot measure: let the write itself surface the error
    if free < needed:
        raise CacheWriteError(
            f"refusing to write {payload_bytes} bytes under {path}: "
            f"only {free} bytes free (< {needed} required headroom)"
        )


def envelope_checksum(envelope: dict) -> str:
    """SHA-256 over the envelope's canonical bytes, ``checksum`` field
    excluded -- the self-certifying seal every entry carries."""
    body = {key: value for key, value in envelope.items() if key != "checksum"}
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-results``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-results"


class CachedResult:
    """A result summary served from the store.

    Duck-types the slice of :class:`~repro.core.simulation.
    SimulationResult` the experiment layer consumes -- ``summary()``
    (bit-identical to the fresh run's, floats round-tripped exactly),
    ``elapsed_ns`` and ``processed_events`` -- but carries no
    time-series, traces or per-thread statistics: those are the price of
    a fresh run.
    """

    def __init__(
        self,
        summary: dict[str, SummaryValue],
        elapsed_ns: int,
        processed_events: int,
        key: str,
    ) -> None:
        self._summary = summary
        self.elapsed_ns = elapsed_ns
        self.processed_events = processed_events
        #: The content key this result was served under.
        self.key = key

    def summary(self) -> dict[str, SummaryValue]:
        return dict(self._summary)

    def report(self) -> str:
        lines = [f"== cached result {self.key[:16]} =="]
        for name in ("completed_ios", "throughput_iops", "write_amplification"):
            if name in self._summary:
                lines.append(f"{name:<20}: {self._summary[name]}")
        lines.append(f"{'virtual time ns':<20}: {self.elapsed_ns}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"CachedResult(key={self.key[:16]}..., metrics={len(self._summary)})"


class ResultCache:
    """Content-addressed, on-disk store of simulation result summaries.

    Implements the :class:`repro.core.parallel.ResultSource` protocol
    (``lookup``/``store``), so it plugs directly into
    ``SweepExecutor.map(specs, cache=...)``, ``ExperimentTemplate.run
    (cache=...)`` and the :class:`~repro.service.jobs.ExperimentService`.

    A spec whose workload has no stable identity (lambda, closure,
    ``__main__`` function) is *uncacheable*: ``lookup`` returns ``None``
    and ``store`` declines, both counting ``uncacheable`` -- the sweep
    still runs, it just never touches the store.

    Hit/miss/store counters accumulate over the cache object's lifetime
    and feed :meth:`stats` (the ``cache_stats`` report).
    """

    def __init__(
        self,
        root: "str | os.PathLike[str] | None" = None,
        *,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        #: Code-version fingerprint mixed into every key.  Overridable
        #: for tests; defaults to the hash of the simulator's sources.
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.uncacheable = 0
        #: Entries that failed decode/checksum validation on lookup
        #: (each was quarantined and counted as a miss).
        self.corrupt_entries = 0
        #: Stale ``*.tmp`` files removed by this object.
        self.tmp_reaped = 0
        # A process killed between NamedTemporaryFile and os.replace
        # leaves its tmp behind forever; sweep old ones on open.
        if self._version_dir().is_dir():
            self.reap_tmp(max_age_s=TMP_MAX_AGE_S)

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def key_for(self, spec: RunSpec) -> Optional[str]:
        """The spec's content key, or ``None`` when it is uncacheable."""
        try:
            return spec.cache_key(self.fingerprint)
        except UncacheableWorkloadError:
            return None

    def path_for(self, key: str) -> Path:
        return self.root / self.fingerprint[:16] / f"{key}.json"

    # ------------------------------------------------------------------
    # ResultSource protocol
    # ------------------------------------------------------------------
    def lookup(self, spec: RunSpec) -> Optional[CachedResult]:
        """The stored result for an equivalent spec, or ``None``."""
        key = self.key_for(spec)
        if key is None:
            self.uncacheable += 1
            return None
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            entry = self._decode(text, key)
        except (ValueError, KeyError, TypeError):
            # A torn or hand-edited entry must never poison a sweep:
            # treat it as a miss, move the evidence aside, and let the
            # fresh result overwrite it.
            self.corrupt_entries += 1
            self.misses += 1
            self._quarantine(path)
            return None
        self.hits += 1
        return entry

    def store(self, spec: RunSpec, result: SimulationResult) -> None:
        """Persist ``result``'s summary under the spec's content key.

        Raises :class:`CacheWriteError` (without touching the store)
        when the disk lacks headroom for the entry -- a full disk must
        fail one store loudly, not strand torn files.
        """
        if isinstance(result, CachedResult):
            return  # already on disk; a hit re-stored would be a no-op
        key = self.key_for(spec)
        if key is None:
            self.uncacheable += 1
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self._encode(spec, result, key)
        ensure_headroom(path.parent, len(payload.encode("utf-8")))
        # Atomic publish: a concurrent reader sees the old entry or the
        # new one, never a torn file.  The version-dir lock keeps a
        # concurrent repair/clear from sweeping the tmp mid-publish.
        with self._locked():
            handle = tempfile.NamedTemporaryFile(
                mode="w",
                encoding="utf-8",
                dir=path.parent,
                prefix=f".{key[:16]}.",
                suffix=".tmp",
                delete=False,
            )
            try:
                with handle:
                    handle.write(payload)
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(handle.name, path)
            except BaseException:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
        self.stores += 1

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(spec: RunSpec, result: SimulationResult, key: str) -> str:
        summary_text = serialize_summary(result.summary())
        envelope = {
            "version": 2,
            "key": key,
            "spec": spec.canonical(),
            "elapsed_ns": int(result.elapsed_ns),
            "processed_events": int(result.processed_events),
            # Stored pre-serialized so the summary's byte encoding is
            # exactly serialize_summary's, envelope formatting aside.
            "summary": summary_text,
        }
        envelope["checksum"] = envelope_checksum(envelope)
        return canonical_json(envelope) + "\n"

    @staticmethod
    def _decode(text: str, key: str) -> CachedResult:
        envelope = json.loads(text)
        if not isinstance(envelope, dict):
            raise CacheIntegrityError("entry is not a JSON object")
        if envelope.get("key") != key:
            raise CacheIntegrityError(f"entry key mismatch (expected {key})")
        if int(envelope.get("version", 0)) >= 2:
            # A version-2 entry vouches for its own bytes; any
            # truncation or bit flip breaks the checksum.
            stated = envelope.get("checksum")
            if stated != envelope_checksum(envelope):
                raise CacheIntegrityError("entry checksum mismatch")
        return CachedResult(
            summary=deserialize_summary(envelope["summary"]),
            elapsed_ns=int(envelope["elapsed_ns"]),
            processed_events=int(envelope["processed_events"]),
            key=key,
        )

    # ------------------------------------------------------------------
    # Maintenance and reporting
    # ------------------------------------------------------------------
    def _version_dir(self) -> Path:
        return self.root / self.fingerprint[:16]

    def _quarantine_dir(self) -> Path:
        return self._version_dir() / QUARANTINE_DIR

    @contextlib.contextmanager
    def _locked(self) -> Iterator[None]:
        """Advisory cross-process lock on the version directory.

        Mutations (publish, quarantine, repair, clear, tmp reap) hold
        it so two processes sharing one store never interleave; readers
        stay lock-free (``os.replace`` keeps them torn-proof).  On
        platforms without ``fcntl`` this degrades to a no-op.
        """
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX
            yield
            return
        version_dir = self._version_dir()
        version_dir.mkdir(parents=True, exist_ok=True)
        with open(version_dir / ".lock", "w") as handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _quarantine(self, path: Path) -> bool:
        """Move a corrupt entry into ``quarantine/`` (never deleted:
        it is evidence).  Best-effort; returns True when moved."""
        quarantine = self._quarantine_dir()
        try:
            with self._locked():
                quarantine.mkdir(parents=True, exist_ok=True)
                os.replace(path, quarantine / path.name)
            return True
        except OSError:
            return False

    def _entry_paths(self, all_versions: bool = False) -> list[Path]:
        """Live entry files, quarantine excluded, deterministic order."""
        if all_versions:
            roots = (
                sorted(child for child in self.root.iterdir() if child.is_dir())
                if self.root.is_dir()
                else []
            )
        else:
            roots = [self._version_dir()]
        paths: list[Path] = []
        for root in roots:
            if root.name == QUARANTINE_DIR or not root.is_dir():
                continue
            paths.extend(sorted(root.glob("*.json")))
        return paths

    def verify(self, *, all_versions: bool = False) -> dict[str, object]:
        """Audit the store without modifying it.

        Every entry is re-validated exactly as ``lookup`` would
        (decode, key-vs-filename, checksum); the report lists the
        corrupt files so ``repair`` -- or a human -- can act on them.
        """
        corrupt: list[str] = []
        checked = 0
        for path in self._entry_paths(all_versions):
            checked += 1
            try:
                self._decode(path.read_text(encoding="utf-8"), path.stem)
            except (OSError, ValueError, KeyError, TypeError):
                corrupt.append(str(path))
        return {
            "checked": checked,
            "ok": checked - len(corrupt),
            "corrupt": corrupt,
            "quarantined": self._quarantined_count(),
        }

    def repair(self, *, all_versions: bool = False) -> dict[str, object]:
        """Quarantine every corrupt entry; returns the audit report
        with a ``repaired`` count added.  After a clean ``repair``,
        ``verify`` reports zero corrupt entries."""
        report = self.verify(all_versions=all_versions)
        repaired = 0
        for text in list(report["corrupt"]):  # type: ignore[arg-type]
            if self._quarantine(Path(text)):
                repaired += 1
                self.corrupt_entries += 1
        report["repaired"] = repaired
        report["quarantined"] = self._quarantined_count()
        return report

    def reap_tmp(self, max_age_s: float = 0.0) -> int:
        """Remove stale ``*.tmp`` files (a process killed between
        ``NamedTemporaryFile`` and ``os.replace`` strands one per
        in-flight store).  Only files older than ``max_age_s`` are
        touched, so a live concurrent publish is never swept."""
        version_dir = self._version_dir()
        if not version_dir.is_dir():
            return 0
        cutoff = time.time() - max_age_s
        reaped = 0
        with self._locked():
            for path in sorted(version_dir.glob(".*.tmp")):
                try:
                    if path.stat().st_mtime <= cutoff:
                        path.unlink()
                        reaped += 1
                except OSError:
                    continue
        self.tmp_reaped += reaped
        return reaped

    def _quarantined_count(self) -> int:
        quarantine = self._quarantine_dir()
        if not quarantine.is_dir():
            return 0
        return sum(1 for _ in quarantine.glob("*.json"))

    def invalidate(self, spec: RunSpec) -> bool:
        """Drop the entry for one spec; True when something was removed."""
        key = self.key_for(spec)
        if key is None:
            return False
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def clear(self, *, all_versions: bool = False) -> int:
        """Remove stored entries; returns how many files were deleted.

        Default scope is the current code version; ``all_versions=True``
        also sweeps entries stranded by old fingerprints.  Quarantined
        entries and stale ``*.tmp`` leftovers (any age) go with them.
        """
        roots = [self.root] if all_versions else [self._version_dir()]
        removed = 0
        with self._locked():
            for root in roots:
                if not root.is_dir():
                    continue
                for path in sorted(root.rglob("*.json")):
                    try:
                        path.unlink()
                        removed += 1
                    except OSError:
                        pass
                for path in sorted(root.rglob(".*.tmp")):
                    try:
                        path.unlink()
                        self.tmp_reaped += 1
                    except OSError:
                        pass
        return removed

    def entries(self) -> int:
        """Stored results for the current code version."""
        version_dir = self._version_dir()
        if not version_dir.is_dir():
            return 0
        return sum(1 for _ in version_dir.glob("*.json"))

    def stats(self) -> dict[str, object]:
        """The ``cache_stats`` report: store shape plus this object's
        lifetime hit/miss counters."""
        version_dir = self._version_dir()
        entry_bytes = 0
        entry_count = 0
        stale = 0
        if self.root.is_dir():
            for child in self.root.iterdir():
                if not child.is_dir() or child.name == QUARANTINE_DIR:
                    continue
                count = sum(1 for _ in child.glob("*.json"))
                if child == version_dir:
                    entry_count = count
                    entry_bytes = sum(
                        path.stat().st_size for path in child.glob("*.json")
                    )
                else:
                    stale += count
        total = self.hits + self.misses
        return {
            "root": str(self.root),
            "fingerprint": self.fingerprint,
            "entries": entry_count,
            "entry_bytes": entry_bytes,
            "stale_entries": stale,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "uncacheable": self.uncacheable,
            "corrupt_entries": self.corrupt_entries,
            "quarantined": self._quarantined_count(),
            "tmp_reaped": self.tmp_reaped,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, "
            f"fingerprint={self.fingerprint[:16]}..., "
            f"hits={self.hits}, misses={self.misses})"
        )
