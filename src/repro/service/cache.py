"""The content-addressed result store.

Every materialised :class:`~repro.core.parallel.RunSpec` reduces to a
canonical description (:mod:`repro.core.canonical`) that is hashed --
together with a fingerprint of the simulator's own source code -- into a
SHA-256 key.  A completed run's summary is persisted under that key, so
an *equivalent* run submitted later (same config, same workload
identity, same time limit, same code version) is served from disk
instead of being simulated again.

Invalidation is entirely structural -- nothing expires by time:

* change any configuration field -> different canonical form -> new key
  (only the affected cells of a sweep re-run);
* change the simulator's code -> new fingerprint -> every old key is
  unreachable (stale entries linger on disk until ``clear(all_versions=
  True)``, but can never be served);
* ``clear()`` drops the current code version's entries explicitly.

Layout on disk (human-greppable JSON, one file per result)::

    <root>/<fingerprint[:16]>/<key>.json

The payload stores the spec's canonical description next to the summary
so entries are auditable, and files are written atomically (tmp +
``os.replace``) so concurrent sweeps sharing one cache directory never
observe a torn entry.  Payload bytes are deterministic: storing the same
result twice writes identical files.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.core.canonical import (
    UncacheableWorkloadError,
    canonical_json,
    code_fingerprint,
)
from repro.core.parallel import RunSpec
from repro.core.simulation import SimulationResult
from repro.core.statistics import (
    SummaryValue,
    deserialize_summary,
    serialize_summary,
)

__all__ = ["CachedResult", "ResultCache", "default_cache_root"]

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_root() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-results``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-results"


class CachedResult:
    """A result summary served from the store.

    Duck-types the slice of :class:`~repro.core.simulation.
    SimulationResult` the experiment layer consumes -- ``summary()``
    (bit-identical to the fresh run's, floats round-tripped exactly),
    ``elapsed_ns`` and ``processed_events`` -- but carries no
    time-series, traces or per-thread statistics: those are the price of
    a fresh run.
    """

    def __init__(
        self,
        summary: dict[str, SummaryValue],
        elapsed_ns: int,
        processed_events: int,
        key: str,
    ) -> None:
        self._summary = summary
        self.elapsed_ns = elapsed_ns
        self.processed_events = processed_events
        #: The content key this result was served under.
        self.key = key

    def summary(self) -> dict[str, SummaryValue]:
        return dict(self._summary)

    def report(self) -> str:
        lines = [f"== cached result {self.key[:16]} =="]
        for name in ("completed_ios", "throughput_iops", "write_amplification"):
            if name in self._summary:
                lines.append(f"{name:<20}: {self._summary[name]}")
        lines.append(f"{'virtual time ns':<20}: {self.elapsed_ns}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"CachedResult(key={self.key[:16]}..., metrics={len(self._summary)})"


class ResultCache:
    """Content-addressed, on-disk store of simulation result summaries.

    Implements the :class:`repro.core.parallel.ResultSource` protocol
    (``lookup``/``store``), so it plugs directly into
    ``SweepExecutor.map(specs, cache=...)``, ``ExperimentTemplate.run
    (cache=...)`` and the :class:`~repro.service.jobs.ExperimentService`.

    A spec whose workload has no stable identity (lambda, closure,
    ``__main__`` function) is *uncacheable*: ``lookup`` returns ``None``
    and ``store`` declines, both counting ``uncacheable`` -- the sweep
    still runs, it just never touches the store.

    Hit/miss/store counters accumulate over the cache object's lifetime
    and feed :meth:`stats` (the ``cache_stats`` report).
    """

    def __init__(
        self,
        root: "str | os.PathLike[str] | None" = None,
        *,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        #: Code-version fingerprint mixed into every key.  Overridable
        #: for tests; defaults to the hash of the simulator's sources.
        self.fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.uncacheable = 0

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    def key_for(self, spec: RunSpec) -> Optional[str]:
        """The spec's content key, or ``None`` when it is uncacheable."""
        try:
            return spec.cache_key(self.fingerprint)
        except UncacheableWorkloadError:
            return None

    def path_for(self, key: str) -> Path:
        return self.root / self.fingerprint[:16] / f"{key}.json"

    # ------------------------------------------------------------------
    # ResultSource protocol
    # ------------------------------------------------------------------
    def lookup(self, spec: RunSpec) -> Optional[CachedResult]:
        """The stored result for an equivalent spec, or ``None``."""
        key = self.key_for(spec)
        if key is None:
            self.uncacheable += 1
            return None
        path = self.path_for(key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            self.misses += 1
            return None
        try:
            entry = self._decode(text, key)
        except (ValueError, KeyError, TypeError):
            # A torn or hand-edited entry must never poison a sweep:
            # treat it as a miss and let the fresh result overwrite it.
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(self, spec: RunSpec, result: SimulationResult) -> None:
        """Persist ``result``'s summary under the spec's content key."""
        if isinstance(result, CachedResult):
            return  # already on disk; a hit re-stored would be a no-op
        key = self.key_for(spec)
        if key is None:
            self.uncacheable += 1
            return
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = self._encode(spec, result, key)
        # Atomic publish: a concurrent reader sees the old entry or the
        # new one, never a torn file.
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{key[:16]}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(payload)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self.stores += 1

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(spec: RunSpec, result: SimulationResult, key: str) -> str:
        summary_text = serialize_summary(result.summary())
        envelope = {
            "version": 1,
            "key": key,
            "spec": spec.canonical(),
            "elapsed_ns": int(result.elapsed_ns),
            "processed_events": int(result.processed_events),
            # Stored pre-serialized so the summary's byte encoding is
            # exactly serialize_summary's, envelope formatting aside.
            "summary": summary_text,
        }
        return canonical_json(envelope) + "\n"

    @staticmethod
    def _decode(text: str, key: str) -> CachedResult:
        import json

        envelope = json.loads(text)
        if envelope.get("key") != key:
            raise ValueError(f"entry key mismatch (expected {key})")
        return CachedResult(
            summary=deserialize_summary(envelope["summary"]),
            elapsed_ns=int(envelope["elapsed_ns"]),
            processed_events=int(envelope["processed_events"]),
            key=key,
        )

    # ------------------------------------------------------------------
    # Maintenance and reporting
    # ------------------------------------------------------------------
    def _version_dir(self) -> Path:
        return self.root / self.fingerprint[:16]

    def invalidate(self, spec: RunSpec) -> bool:
        """Drop the entry for one spec; True when something was removed."""
        key = self.key_for(spec)
        if key is None:
            return False
        try:
            self.path_for(key).unlink()
            return True
        except OSError:
            return False

    def clear(self, *, all_versions: bool = False) -> int:
        """Remove stored entries; returns how many files were deleted.

        Default scope is the current code version; ``all_versions=True``
        also sweeps entries stranded by old fingerprints.
        """
        roots = [self.root] if all_versions else [self._version_dir()]
        removed = 0
        for root in roots:
            if not root.is_dir():
                continue
            for path in sorted(root.rglob("*.json")):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def entries(self) -> int:
        """Stored results for the current code version."""
        version_dir = self._version_dir()
        if not version_dir.is_dir():
            return 0
        return sum(1 for _ in version_dir.glob("*.json"))

    def stats(self) -> dict[str, object]:
        """The ``cache_stats`` report: store shape plus this object's
        lifetime hit/miss counters."""
        version_dir = self._version_dir()
        entry_bytes = 0
        entry_count = 0
        stale = 0
        if self.root.is_dir():
            for child in self.root.iterdir():
                if not child.is_dir():
                    continue
                count = sum(1 for _ in child.glob("*.json"))
                if child == version_dir:
                    entry_count = count
                    entry_bytes = sum(
                        path.stat().st_size for path in child.glob("*.json")
                    )
                else:
                    stale += count
        total = self.hits + self.misses
        return {
            "root": str(self.root),
            "fingerprint": self.fingerprint,
            "entries": entry_count,
            "entry_bytes": entry_bytes,
            "stale_entries": stale,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "uncacheable": self.uncacheable,
            "hit_rate": (self.hits / total) if total else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, "
            f"fingerprint={self.fingerprint[:16]}..., "
            f"hits={self.hits}, misses={self.misses})"
        )
