"""Crash-safe sweep journals: checkpoint/resume for long campaigns.

A design-space campaign is hours of independent cells; the processes
driving it die to OOM kills, preemption and ctrl-C.  The
:class:`~repro.service.cache.ResultCache` already makes *finished*
cells cheap to recover, but nothing recorded which cells belonged to
the interrupted job, whether the grid being resumed is really the same
grid, or where an uncacheable cell's result went.  The journal is that
record: an append-only JSONL file, one per job, written durably enough
that a SIGKILL at any instant loses at most the cell in flight.

Layout (one file per job, ``<journal_root>/<job_id>.jsonl``)::

    {"type": "manifest", "version": 1, "job_id": ..., "cells": N,
     "fingerprint": ..., "grid_signature": ..., "grid": {...}|null,
     "checksum": sha256}
    {"type": "cell", "index": 0, "key": ..., "label": ..., "summary":
     "<serialize_summary bytes>", "elapsed_ns": ..., "processed_events":
     ..., "checksum": sha256}
    ...
    {"type": "state", "state": "done"|"interrupted"|"failed",
     "completed": k, "checksum": sha256}

Durability discipline:

* the manifest line is published with the :mod:`repro.service.cache`
  idiom -- tmp file, ``fsync``, ``os.replace`` -- so the journal exists
  fully formed or not at all;
* each subsequent record is appended, flushed and ``fsync``\\ ed before
  the result is surfaced downstream;
* every record carries a SHA-256 checksum over its own canonical
  bytes.  On load, the first undecodable or checksum-failing line ends
  the journal (the torn tail of a kill mid-append); everything before
  it replays.

Replay is *positional* under a grid signature: the manifest records a
content hash over every spec's cache key (or an explicit positional
marker for uncacheable specs), and :meth:`SweepJournal.replay` refuses
(:class:`JournalMismatchError`) unless the specs presented hash to the
same grid -- so a journaled cell can never be replayed into a different
experiment, and a resumed sweep finishes bit-identically to an
uninterrupted one.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import IO, Mapping, Optional, Sequence

from repro.core.canonical import (
    UncacheableWorkloadError,
    canonical_json,
    code_fingerprint,
    content_hash,
)
from repro.core.parallel import RunSpec
from repro.core.simulation import SimulationResult
from repro.core.statistics import deserialize_summary, serialize_summary
from repro.service.cache import CachedResult, ensure_headroom

__all__ = [
    "JournalError",
    "JournalMismatchError",
    "ReplayedResult",
    "SweepJournal",
    "default_journal_root",
    "grid_signature",
]

#: Environment variable overriding the default journal directory.
JOURNAL_DIR_ENV = "REPRO_JOURNAL_DIR"

JOURNAL_VERSION = 1


def default_journal_root() -> Path:
    """``$REPRO_JOURNAL_DIR`` if set, else ``~/.cache/repro-journals``."""
    override = os.environ.get(JOURNAL_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-journals"


class JournalError(RuntimeError):
    """The journal file is unusable (missing, empty, or its manifest is
    torn)."""


class JournalMismatchError(JournalError):
    """The journal exists but does not belong to the work presented:
    different grid, different cell count, or a different code version
    than it was written under."""


class ReplayedResult(CachedResult):
    """A cell summary replayed from a sweep journal -- the cell was
    completed by an earlier (killed or interrupted) process and is
    served without re-running or even touching the result cache."""


def _record_checksum(record: Mapping[str, object]) -> str:
    body = {key: value for key, value in record.items() if key != "checksum"}
    return hashlib.sha256(canonical_json(body).encode("utf-8")).hexdigest()


def _sealed(record: dict) -> dict:
    record["checksum"] = _record_checksum(record)
    return record


def spec_journal_key(spec: RunSpec, position: int, fingerprint: str) -> str:
    """A spec's identity within a journal: its cache key when it has
    one, an explicit positional marker otherwise (a lambda/closure
    workload still resumes correctly -- against the same grid)."""
    try:
        return spec.cache_key(fingerprint)
    except UncacheableWorkloadError:
        return f"position:{position}"


def grid_signature(specs: Sequence[RunSpec], fingerprint: str) -> str:
    """Content hash of the whole grid: cell order, count and identity."""
    return content_hash(
        [
            spec_journal_key(spec, position, fingerprint)
            for position, spec in enumerate(specs)
        ]
    )


class SweepJournal:
    """Append-only, crash-safe record of one sweep's completed cells.

    Satisfies :class:`repro.core.parallel.SweepJournalSource`: the
    executor calls :meth:`replay` once up front and :meth:`record` as
    each fresh cell completes.  :meth:`mark` appends job-state
    transitions (``interrupted``/``done``/``failed``) so a later
    process -- or a human with ``grep`` -- can tell a finished campaign
    from a torn one.
    """

    def __init__(self, path: "str | os.PathLike[str]") -> None:
        self.path = Path(path)
        self.manifest: dict = {}
        self._cells: dict[int, dict] = {}
        #: Last state marker seen on load (``None`` while running).
        self.state: Optional[str] = None
        #: Records dropped on load because they were torn or failed
        #: their checksum (the tail of a mid-append kill).
        self.torn_records = 0
        self._handle: Optional[IO[str]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        path: "str | os.PathLike[str]",
        *,
        job_id: str,
        name: str,
        specs: Sequence[RunSpec],
        fingerprint: Optional[str] = None,
        grid: Optional[dict] = None,
    ) -> "SweepJournal":
        """Start a journal for a fresh job (overwrites any previous
        journal at ``path`` -- the caller owns id uniqueness).

        ``grid`` is an optional JSON-able description from which the
        specs can be rebuilt (see :func:`repro.service.grids.
        specs_from_manifest`); with it, ``resume`` needs nothing but
        the job id.
        """
        fingerprint = fingerprint if fingerprint is not None else code_fingerprint()
        manifest = _sealed(
            {
                "type": "manifest",
                "version": JOURNAL_VERSION,
                "job_id": job_id,
                "name": name,
                "cells": len(specs),
                "fingerprint": fingerprint,
                "grid_signature": grid_signature(specs, fingerprint),
                "grid": grid,
            }
        )
        payload = canonical_json(manifest) + "\n"
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        ensure_headroom(target.parent, len(payload.encode("utf-8")))
        # The cache.py publish idiom: the journal appears fully formed
        # (manifest line, fsynced) or not at all.
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=target.parent,
            prefix=f".{target.stem}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(handle.name, target)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        journal = cls(target)
        journal.manifest = manifest
        return journal

    @classmethod
    def open(cls, path: "str | os.PathLike[str]") -> "SweepJournal":
        """Load an existing journal (manifest + every intact record)."""
        journal = cls(path)
        journal._load()
        return journal

    def _load(self) -> None:
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError as error:
            raise JournalError(f"cannot read journal {self.path}: {error}") from error
        records: list[dict] = []
        lines = text.split("\n")
        for position, line in enumerate(lines):
            if not line:
                continue
            try:
                record = json.loads(line)
                if not isinstance(record, dict):
                    raise ValueError("record is not an object")
                if record.get("checksum") != _record_checksum(record):
                    raise ValueError("record checksum mismatch")
            except (ValueError, TypeError):
                # A torn or corrupt line ends the journal: everything
                # after it is untrusted (appends are strictly ordered).
                self.torn_records += len(
                    [tail for tail in lines[position:] if tail]
                )
                break
            records.append(record)
        if not records or records[0].get("type") != "manifest":
            raise JournalError(f"journal {self.path} has no intact manifest")
        self.manifest = records[0]
        for record in records[1:]:
            if record.get("type") == "cell":
                self._cells[int(record["index"])] = record
            elif record.get("type") == "state":
                self.state = str(record.get("state"))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        return str(self.manifest.get("fingerprint", ""))

    @property
    def cells(self) -> int:
        return int(self.manifest.get("cells", 0))

    @property
    def completed(self) -> int:
        """Cells durably recorded so far."""
        return len(self._cells)

    def grid_manifest(self) -> Optional[dict]:
        """The rebuildable grid description, when one was recorded."""
        grid = self.manifest.get("grid")
        return dict(grid) if isinstance(grid, dict) else None

    # ------------------------------------------------------------------
    # SweepJournalSource protocol
    # ------------------------------------------------------------------
    def validate(self, specs: Sequence[RunSpec]) -> None:
        """Raise :class:`JournalMismatchError` unless ``specs`` is the
        grid this journal was written for."""
        if len(specs) != self.cells:
            raise JournalMismatchError(
                f"journal {self.path.name} covers {self.cells} cells, "
                f"got {len(specs)} specs"
            )
        signature = grid_signature(specs, self.fingerprint)
        if signature != self.manifest.get("grid_signature"):
            raise JournalMismatchError(
                f"journal {self.path.name} was written for a different grid "
                "(cell identities do not match)"
            )

    def replay(self, specs: Sequence[RunSpec]) -> dict[int, SimulationResult]:
        """Every journaled cell as a :class:`ReplayedResult`, keyed by
        spec position.  Summaries round-trip bit-identically
        (``serialize_summary`` bytes are stored verbatim)."""
        self.validate(specs)
        replayed: dict[int, SimulationResult] = {}
        for position, record in self._cells.items():
            if not 0 <= position < len(specs):
                raise JournalMismatchError(
                    f"journal {self.path.name} records cell #{position} "
                    f"outside the {len(specs)}-cell grid"
                )
            replayed[position] = ReplayedResult(
                summary=deserialize_summary(str(record["summary"])),
                elapsed_ns=int(record["elapsed_ns"]),
                processed_events=int(record["processed_events"]),
                key=str(record["key"]),
            )
        return replayed

    def record(self, position: int, spec: RunSpec, result: SimulationResult) -> None:
        """Durably append one completed cell (flush + fsync before the
        caller may surface the result)."""
        record = _sealed(
            {
                "type": "cell",
                "index": int(position),
                "key": spec_journal_key(spec, position, self.fingerprint),
                "label": str(spec.label),
                "elapsed_ns": int(result.elapsed_ns),
                "processed_events": int(result.processed_events),
                "summary": serialize_summary(result.summary()),
            }
        )
        self._append(record)
        self._cells[int(position)] = record

    def mark(self, state: str, completed: Optional[int] = None) -> None:
        """Append a job-state transition (``interrupted``, ``done``,
        ``failed``) so dashboards and resumers see a terminal marker
        instead of inferring one from silence."""
        self._append(
            _sealed(
                {
                    "type": "state",
                    "state": state,
                    "completed": (
                        self.completed if completed is None else int(completed)
                    ),
                }
            )
        )
        self.state = state

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        payload = canonical_json(record) + "\n"
        ensure_headroom(self.path.parent, len(payload.encode("utf-8")))
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(payload)
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"SweepJournal(path={str(self.path)!r}, cells={self.cells}, "
            f"completed={self.completed}, state={self.state!r})"
        )
