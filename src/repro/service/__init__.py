"""The experiment service: the paper's live demo, production-grade.

EagleTree's headline artifact (Figure 2) is a demo that runs
configurations and graphs metrics live.  This subsystem is the
server-side version of that loop -- the first serving-shaped layer on
the road from batch sweeps to continuous experiment traffic:

* :mod:`repro.service.cache` -- a content-addressed result store: each
  materialised :class:`~repro.core.parallel.RunSpec` hashes (with a
  code-version fingerprint) to a SHA-256 key under which its summary is
  persisted, so repeated sweep cells are served from disk and a config
  or code change re-runs only the invalidated cells.
* :mod:`repro.service.jobs` -- :class:`ExperimentService`, the async
  runner: ``submit(specs | grid) -> job_id``, ``status``, ``results``,
  ``cancel``, with PR 5's timeout/retry hardening underneath.
* :mod:`repro.service.journal` -- crash-safe per-job sweep journals:
  every completed cell is durably appended, so a killed campaign
  resumes bit-identically (``resume(job_id)`` replays the journal and
  runs only the remainder).
* :mod:`repro.service.dashboard` -- live terminal and static-HTML views
  of a running job.
* ``python -m repro.service`` -- submit a grid from the command line,
  watch it, resume interrupted jobs, and warm/inspect/verify/repair the
  cache.
"""

from repro.service.cache import (
    CachedResult,
    CacheIntegrityError,
    CacheWriteError,
    ResultCache,
    default_cache_root,
)
from repro.service.dashboard import render_job, render_job_html, watch, write_html
from repro.service.jobs import (
    CellState,
    CellStatus,
    ExperimentService,
    JobFailedError,
    JobState,
    JobStatus,
    UnknownJobError,
    run_to_completion,
)
from repro.service.journal import (
    JournalError,
    JournalMismatchError,
    ReplayedResult,
    SweepJournal,
    default_journal_root,
)

__all__ = [
    "CacheIntegrityError",
    "CacheWriteError",
    "CachedResult",
    "CellState",
    "CellStatus",
    "ExperimentService",
    "JobFailedError",
    "JobState",
    "JobStatus",
    "JournalError",
    "JournalMismatchError",
    "ReplayedResult",
    "ResultCache",
    "SweepJournal",
    "UnknownJobError",
    "default_cache_root",
    "default_journal_root",
    "render_job",
    "render_job_html",
    "run_to_completion",
    "watch",
    "write_html",
]
