"""``python -m repro.service``: the experiment service from a shell.

Submit a full-factorial grid to the :class:`~repro.service.jobs.
ExperimentService`, watch it live, and manage the content-addressed
result cache.  Re-running the same command is (almost) free: every cell
already in the cache is served from disk.

Examples::

    # 16-cell grid, live dashboard, results cached under ~/.cache
    python -m repro.service run \\
        --axis controller.gc_greediness=1,2,3,4 \\
        --axis host.max_outstanding=4,8,16,32 --ios 2000

    # same grid again: all cells served from cache, near-instant
    python -m repro.service run \\
        --axis controller.gc_greediness=1,2,3,4 \\
        --axis host.max_outstanding=4,8,16,32 --ios 2000

    # inspect / clear the store
    python -m repro.service cache stats
    python -m repro.service cache clear

``--cache-dir`` (or ``$REPRO_CACHE_DIR``) relocates the store;
``--no-cache`` runs uncached.  ``--expect-min-hit-rate 0.9`` turns the
run into an assertion (CI's warm-pass gate).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.service.cache import ResultCache
from repro.service.dashboard import DEFAULT_METRICS, render_job, watch, write_html
from repro.service.grids import grid_specs, parse_axis
from repro.service.jobs import ExperimentService, JobState

#: The paper-demo default: GC greediness x host queue depth, 16 cells.
DEFAULT_AXES = (
    "controller.gc_greediness=1,2,3,4",
    "host.max_outstanding=4,8,16,32",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="submit a grid and watch it")
    run.add_argument(
        "--axis", action="append", default=None, metavar="PATH=V1,V2,...",
        help="swept configuration axis; repeatable "
             f"(default: {' + '.join(DEFAULT_AXES)})",
    )
    run.add_argument("--ios", type=int, default=2000, help="IOs per grid cell")
    run.add_argument(
        "--base", choices=["small", "demo"], default="small",
        help="base configuration preset",
    )
    run.add_argument("--seed", type=int, default=42)
    run.add_argument(
        "--workers", default="1",
        help="worker processes per job: a number or 'auto' (one per CPU)",
    )
    run.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock limit in seconds (workers > 1 only)",
    )
    run.add_argument("--retries", type=int, default=0, help="per-cell retry budget")
    run.add_argument("--cache-dir", default=None, help="result-store directory")
    run.add_argument(
        "--no-cache", action="store_true", help="run without the result store"
    )
    run.add_argument(
        "--no-watch", action="store_true",
        help="skip the live dashboard; print only the final panel",
    )
    run.add_argument("--interval", type=float, default=0.5, help="dashboard refresh (s)")
    run.add_argument("--html", default=None, metavar="FILE",
                     help="also write the static HTML dashboard here")
    run.add_argument("--json", default=None, metavar="FILE",
                     help="write a machine-readable job report here")
    run.add_argument(
        "--metrics", default=",".join(DEFAULT_METRICS),
        help="comma-separated summary metrics to display",
    )
    run.add_argument(
        "--expect-min-hit-rate", type=float, default=None, metavar="R",
        help="exit non-zero unless cache hits / cells >= R (CI gate)",
    )

    cache = commands.add_parser("cache", help="inspect or clear the result store")
    cache.add_argument("action", choices=["stats", "clear", "path"])
    cache.add_argument("--cache-dir", default=None, help="result-store directory")
    cache.add_argument(
        "--all-versions", action="store_true",
        help="clear: also drop entries from older code fingerprints",
    )
    return parser


def _workers(text: str) -> "int | str":
    return text if text == "auto" else int(text)


def cmd_run(args: argparse.Namespace) -> int:
    axes = [parse_axis(text) for text in (args.axis or list(DEFAULT_AXES))]
    specs = grid_specs(axes, ios=args.ios, base=args.base, seed=args.seed)
    metrics = [name.strip() for name in args.metrics.split(",") if name.strip()]
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    axis_names = " x ".join(path for path, _ in axes)
    print(f"grid {axis_names}: {len(specs)} cells, {args.ios} IOs each")
    if cache is not None:
        print(f"cache {cache.root} (version {cache.fingerprint[:16]})")

    service = ExperimentService(
        cache=cache,
        workers=_workers(args.workers),
        timeout=args.timeout,
        retries=args.retries,
    )
    with service:
        job_id = service.submit(specs, name=f"grid {axis_names}")
        if args.no_watch:
            status = service.wait(job_id)
            if args.html:
                write_html(status, args.html, metrics)
            print(render_job(status, metrics))
        else:
            status = watch(
                service, job_id, interval=args.interval,
                metrics=metrics, html_path=args.html,
            )

    if args.json:
        report = {
            "job_id": status.job_id,
            "name": status.name,
            "state": status.state.value,
            "total_cells": status.total_cells,
            "completed_cells": status.completed_cells,
            "cache_hits": status.cache_hits,
            "cache_misses": status.cache_misses,
            "elapsed_s": round(status.elapsed_s, 3),
            "cells": [
                {"label": cell.label, "state": cell.state.value, "summary": cell.summary}
                for cell in status.cells
            ],
            "cache": service.cache_stats(),
        }
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"-> {args.json}")

    if status.state is not JobState.DONE:
        print(f"job ended {status.state.value}: {status.error or ''}", file=sys.stderr)
        return 1
    if args.expect_min_hit_rate is not None:
        rate = status.cache_hits / status.total_cells if status.total_cells else 0.0
        if rate < args.expect_min_hit_rate:
            print(
                f"cache hit rate {rate:.0%} below required "
                f"{args.expect_min_hit_rate:.0%}",
                file=sys.stderr,
            )
            return 1
        print(f"cache hit rate {rate:.0%} (>= {args.expect_min_hit_rate:.0%})")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "path":
        print(cache.root)
        return 0
    if args.action == "clear":
        removed = cache.clear(all_versions=args.all_versions)
        scope = "all versions" if args.all_versions else f"version {cache.fingerprint[:16]}"
        print(f"removed {removed} entries ({scope})")
        return 0
    stats = cache.stats()
    width = max(len(key) for key in stats)
    for key in sorted(stats):
        print(f"{key:<{width}} : {stats[key]}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    return cmd_cache(args)


if __name__ == "__main__":
    raise SystemExit(main())
