"""``python -m repro.service``: the experiment service from a shell.

Submit a full-factorial grid to the :class:`~repro.service.jobs.
ExperimentService`, watch it live, and manage the content-addressed
result cache.  Re-running the same command is (almost) free: every cell
already in the cache is served from disk -- and every run is journalled,
so a run that dies (OOM kill, preemption, ctrl-C) is *resumable*: the
completed cells replay from the journal and only the remainder executes.

Examples::

    # 16-cell grid, live dashboard, results cached under ~/.cache
    python -m repro.service run \\
        --axis controller.gc_greediness=1,2,3,4 \\
        --axis host.max_outstanding=4,8,16,32 --ios 2000

    # the run above was killed?  finish it -- journalled cells are
    # replayed byte-identically, zero re-runs
    python -m repro.service resume job-0001

    # inspect / audit / heal the store
    python -m repro.service cache stats
    python -m repro.service cache verify     # exit 1 if corrupt entries
    python -m repro.service cache repair     # quarantine corrupt entries
    python -m repro.service cache clear

``--cache-dir`` (or ``$REPRO_CACHE_DIR``) relocates the store;
``--journal-dir`` (or ``$REPRO_JOURNAL_DIR``) relocates the journals;
``--no-cache`` runs uncached, ``--no-journal`` unjournalled.
``--expect-min-hit-rate 0.9`` turns the run into an assertion (CI's
warm-pass gate).  On SIGINT/SIGTERM the service checkpoints at the next
cell boundary and exits 130 with a resume hint; a second signal force
quits.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys

from repro.core.statistics import serialize_summary
from repro.service.cache import ResultCache
from repro.service.dashboard import DEFAULT_METRICS, render_job, watch, write_html
from repro.service.grids import grid_manifest, grid_specs, parse_axis
from repro.service.jobs import ExperimentService, JobState, JobStatus
from repro.service.journal import default_journal_root

#: The paper-demo default: GC greediness x host queue depth, 16 cells.
DEFAULT_AXES = (
    "controller.gc_greediness=1,2,3,4",
    "host.max_outstanding=4,8,16,32",
)


def _add_execution_arguments(command: argparse.ArgumentParser) -> None:
    """Flags shared by ``run`` and ``resume`` (how cells execute and
    how the job is displayed/reported)."""
    command.add_argument(
        "--workers", default="1",
        help="worker processes per job: a number or 'auto' (one per CPU)",
    )
    command.add_argument(
        "--timeout", type=float, default=None,
        help="per-cell wall-clock limit in seconds (workers > 1 only)",
    )
    command.add_argument("--retries", type=int, default=0, help="per-cell retry budget")
    command.add_argument(
        "--stall-timeout", type=float, default=None, metavar="S",
        help="kill a run whose event counter freezes for S seconds "
             "(hung, not merely slow; workers > 1 only)",
    )
    command.add_argument("--cache-dir", default=None, help="result-store directory")
    command.add_argument(
        "--no-cache", action="store_true", help="run without the result store"
    )
    command.add_argument(
        "--journal-dir", default=None,
        help="sweep-journal directory (default: $REPRO_JOURNAL_DIR or "
             "~/.cache/repro-journals)",
    )
    command.add_argument(
        "--no-journal", action="store_true",
        help="run without the crash-safe journal (job is not resumable)",
    )
    command.add_argument(
        "--no-watch", action="store_true",
        help="skip the live dashboard; print only the final panel",
    )
    command.add_argument("--interval", type=float, default=0.5,
                         help="dashboard refresh (s)")
    command.add_argument("--html", default=None, metavar="FILE",
                         help="also write the static HTML dashboard here")
    command.add_argument("--json", default=None, metavar="FILE",
                         help="write a machine-readable job report here")
    command.add_argument(
        "--metrics", default=",".join(DEFAULT_METRICS),
        help="comma-separated summary metrics to display",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="submit a grid and watch it")
    run.add_argument(
        "--axis", action="append", default=None, metavar="PATH=V1,V2,...",
        help="swept configuration axis; repeatable "
             f"(default: {' + '.join(DEFAULT_AXES)})",
    )
    run.add_argument("--ios", type=int, default=2000, help="IOs per grid cell")
    run.add_argument(
        "--base", choices=["small", "demo"], default="small",
        help="base configuration preset",
    )
    run.add_argument("--seed", type=int, default=42)
    _add_execution_arguments(run)
    run.add_argument(
        "--expect-min-hit-rate", type=float, default=None, metavar="R",
        help="exit non-zero unless cache hits / cells >= R (CI gate)",
    )

    resume = commands.add_parser(
        "resume", help="finish an interrupted job from its journal"
    )
    resume.add_argument("job_id", help="the job id printed by the killed run")
    _add_execution_arguments(resume)

    cache = commands.add_parser("cache", help="inspect or heal the result store")
    cache.add_argument("action", choices=["stats", "clear", "path", "verify", "repair"])
    cache.add_argument("--cache-dir", default=None, help="result-store directory")
    cache.add_argument(
        "--all-versions", action="store_true",
        help="clear/verify/repair: also entries from older code fingerprints",
    )
    return parser


def _workers(text: str) -> "int | str":
    return text if text == "auto" else int(text)


def _build_service(args: argparse.Namespace) -> ExperimentService:
    cache = None if args.no_cache else ResultCache(args.cache_dir)
    if cache is not None:
        print(f"cache {cache.root} (version {cache.fingerprint[:16]})")
    journal_dir = None
    if not args.no_journal:
        journal_dir = args.journal_dir or default_journal_root()
        print(f"journal {journal_dir}")
    return ExperimentService(
        cache=cache,
        workers=_workers(args.workers),
        timeout=args.timeout,
        retries=args.retries,
        journal_dir=journal_dir,
        stall_timeout=args.stall_timeout,
    )


def _install_signal_handlers(service: ExperimentService) -> None:
    """First SIGINT/SIGTERM: checkpoint at the next cell boundary and
    mark the job INTERRUPTED (resumable).  Second: force quit."""
    seen = {"count": 0}

    def handler(signum: int, frame: object) -> None:
        seen["count"] += 1
        if seen["count"] > 1:
            os._exit(130)
        name = signal.Signals(signum).name
        print(
            f"\n{name}: checkpointing at the next cell boundary "
            "(signal again to force quit)",
            file=sys.stderr,
        )
        service.interrupt(wait=False)

    signal.signal(signal.SIGINT, handler)
    signal.signal(signal.SIGTERM, handler)


def _drive(service: ExperimentService, job_id: str,
           args: argparse.Namespace, metrics: list[str]) -> JobStatus:
    """Watch (or silently wait for) the job; never re-raise on ctrl-C."""
    if args.no_watch:
        status = service.wait(job_id)
        if args.html:
            write_html(status, args.html, metrics)
        print(render_job(status, metrics))
        return status
    return watch(
        service, job_id, interval=args.interval,
        metrics=metrics, html_path=args.html,
    )


def _write_report(service: ExperimentService, status: JobStatus,
                  path: str) -> None:
    report = {
        "job_id": status.job_id,
        "name": status.name,
        "state": status.state.value,
        "total_cells": status.total_cells,
        "completed_cells": status.completed_cells,
        "cache_hits": status.cache_hits,
        "cache_misses": status.cache_misses,
        "resumed_cells": status.resumed_cells,
        "elapsed_s": round(status.elapsed_s, 3),
        "events": list(status.events),
        "cells": [
            {
                "label": cell.label,
                "state": cell.state.value,
                "summary": cell.summary,
                # Canonical bytes -- what resume bit-identity compares.
                "summary_text": (
                    serialize_summary(cell.summary) if cell.summary else None
                ),
            }
            for cell in status.cells
        ],
        "cache": service.cache_stats(),
    }
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"-> {path}")


def _epilogue(service: ExperimentService, status: JobStatus,
              args: argparse.Namespace) -> int:
    """Shared run/resume exit path: report, resume hint, exit code."""
    if args.json:
        _write_report(service, status, args.json)
    if status.state is JobState.INTERRUPTED:
        print(
            f"job {status.job_id} interrupted at "
            f"{status.completed_cells}/{status.total_cells} cells; "
            f"finish it with: python -m repro.service resume {status.job_id}",
            file=sys.stderr,
        )
        return 130
    if status.state is not JobState.DONE:
        print(f"job ended {status.state.value}: {status.error or ''}", file=sys.stderr)
        return 1
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    axes = [parse_axis(text) for text in (args.axis or list(DEFAULT_AXES))]
    specs = grid_specs(axes, ios=args.ios, base=args.base, seed=args.seed)
    metrics = [name.strip() for name in args.metrics.split(",") if name.strip()]

    axis_names = " x ".join(path for path, _ in axes)
    print(f"grid {axis_names}: {len(specs)} cells, {args.ios} IOs each")

    service = _build_service(args)
    _install_signal_handlers(service)
    with service:
        job_id = service.submit(
            specs,
            name=f"grid {axis_names}",
            grid=grid_manifest(axes, ios=args.ios, base=args.base, seed=args.seed),
        )
        print(f"job {job_id}")
        status = _drive(service, job_id, args, metrics)

    code = _epilogue(service, status, args)
    if code:
        return code
    if args.expect_min_hit_rate is not None:
        rate = status.cache_hits / status.total_cells if status.total_cells else 0.0
        if rate < args.expect_min_hit_rate:
            print(
                f"cache hit rate {rate:.0%} below required "
                f"{args.expect_min_hit_rate:.0%}",
                file=sys.stderr,
            )
            return 1
        print(f"cache hit rate {rate:.0%} (>= {args.expect_min_hit_rate:.0%})")
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    if args.no_journal:
        print("resume requires the journal (drop --no-journal)", file=sys.stderr)
        return 2
    metrics = [name.strip() for name in args.metrics.split(",") if name.strip()]
    service = _build_service(args)
    _install_signal_handlers(service)
    with service:
        job_id = service.resume(args.job_id)
        status = service.status(job_id)
        print(
            f"resuming {job_id}: "
            f"{status.total_cells} cells, journal replay in progress"
        )
        status = _drive(service, job_id, args, metrics)

    code = _epilogue(service, status, args)
    if code:
        return code
    print(
        f"resumed {status.resumed_cells} cells from the journal, "
        f"{status.cache_hits} from cache, {status.cache_misses} computed"
    )
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    cache = ResultCache(args.cache_dir)
    if args.action == "path":
        print(cache.root)
        return 0
    if args.action == "clear":
        removed = cache.clear(all_versions=args.all_versions)
        scope = "all versions" if args.all_versions else f"version {cache.fingerprint[:16]}"
        print(f"removed {removed} entries ({scope})")
        return 0
    if args.action in ("verify", "repair"):
        if args.action == "verify":
            report = cache.verify(all_versions=args.all_versions)
        else:
            report = cache.repair(all_versions=args.all_versions)
        for key in ("checked", "ok", "repaired", "quarantined"):
            if key in report:
                print(f"{key:<12}: {report[key]}")
        corrupt = report["corrupt"]
        for path in corrupt:
            print(f"corrupt     : {path}", file=sys.stderr)
        if args.action == "verify" and corrupt:
            print(
                f"{len(corrupt)} corrupt entries -- run "
                "'python -m repro.service cache repair' to quarantine them",
                file=sys.stderr,
            )
            return 1
        return 0
    stats = cache.stats()
    width = max(len(key) for key in stats)
    for key in sorted(stats):
        print(f"{key:<{width}} : {stats[key]}")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "resume":
        return cmd_resume(args)
    return cmd_cache(args)


if __name__ == "__main__":
    raise SystemExit(main())
