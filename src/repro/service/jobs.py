"""The long-lived experiment service: submit / status / results / cancel.

EagleTree's headline artifact is a live demo -- pick parameters, run,
watch the metrics move (paper Figure 2).  :class:`ExperimentService` is
the server-side version of that loop: experiments are *submitted* to a
long-lived object instead of scripted around the simulator, a background
worker drains the job queue through the hardened
:class:`~repro.core.parallel.SweepExecutor`, and every completed cell is
persisted to the content-addressed :class:`~repro.service.cache.
ResultCache` so repeated cells -- across jobs, processes and days -- are
served from disk.

::

    service = ExperimentService(cache=ResultCache(tmp), workers="auto")
    job_id = service.submit(grid)           # or a list[RunSpec]
    service.status(job_id)                  # queued/running/done + progress
    results = service.results(job_id)       # blocks until done, spec order
    service.cancel(job_id)                  # queued: dropped; running: stops
                                            # at the next cell boundary

Everything observable is a *snapshot*: :meth:`status` returns plain
dataclasses copied under the service lock, so dashboards may poll from
any thread while the worker mutates freely.
"""

from __future__ import annotations

import enum
import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

from repro.core.experiments import ExperimentTemplate, GridExperiment
from repro.core.parallel import (
    RunSpec,
    SweepExecutor,
    SweepRunError,
    WorkerCount,
)
from repro.core.simulation import SimulationResult
from repro.service.cache import CachedResult, ResultCache

__all__ = [
    "CellState",
    "CellStatus",
    "ExperimentService",
    "JobFailedError",
    "JobState",
    "JobStatus",
    "UnknownJobError",
]

#: What may be submitted: prepared specs or a whole experiment object.
Submittable = Union[Sequence[RunSpec], GridExperiment, ExperimentTemplate]


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class CellState(enum.Enum):
    PENDING = "pending"
    #: Completed and served from the result cache (no simulation ran).
    CACHED = "cached"
    #: Completed by running the simulation.
    COMPUTED = "computed"
    FAILED = "failed"
    SKIPPED = "skipped"


class UnknownJobError(KeyError):
    """No job with that id was ever submitted to this service."""


class JobFailedError(RuntimeError):
    """``results()`` was asked for a job that did not complete.

    ``partial_results`` maps spec position -> result for every cell that
    did finish before the failure or cancellation.
    """

    def __init__(self, job_id: str, state: "JobState", error: Optional[str],
                 partial_results: dict[int, object]) -> None:
        self.job_id = job_id
        self.state = state
        self.error = error
        self.partial_results = partial_results
        detail = f": {error}" if error else ""
        super().__init__(
            f"job {job_id} is {state.value} with "
            f"{len(partial_results)} completed cells{detail}"
        )


@dataclass
class CellStatus:
    """Progress snapshot of one grid cell."""

    index: int
    label: str
    state: CellState = CellState.PENDING
    #: Metric summary, present once the cell completed.
    summary: Optional[dict[str, float]] = None


@dataclass
class JobStatus:
    """Immutable snapshot of one job, safe to render from any thread."""

    job_id: str
    name: str
    state: JobState
    total_cells: int
    completed_cells: int
    cache_hits: int
    cache_misses: int
    error: Optional[str]
    #: Wall-clock seconds: queued -> now while live, queued -> finish after.
    elapsed_s: float
    cells: list[CellStatus] = field(default_factory=list)

    @property
    def done_fraction(self) -> float:
        if not self.total_cells:
            return 1.0
        return self.completed_cells / self.total_cells


class _Cancelled(Exception):
    """Internal: unwinds the executor when a running job is cancelled."""


class _Job:
    """Service-internal mutable job record (guarded by the service lock)."""

    def __init__(self, job_id: str, name: str, specs: list[RunSpec]) -> None:
        self.id = job_id
        self.name = name
        self.specs = specs
        self.state = JobState.QUEUED
        self.cells = [
            CellStatus(index=position, label=str(spec.label))
            for position, spec in enumerate(specs)
        ]
        self.results: dict[int, object] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.error: Optional[str] = None
        self.cancel_requested = False
        self.submitted_at = time.monotonic()
        self.finished_at: Optional[float] = None
        self.done = threading.Event()


class ExperimentService:
    """A long-lived runner absorbing continuous experiment traffic.

    One background thread drains the queue (jobs run one at a time;
    *within* a job, cells fan out over ``workers`` processes).  All
    jobs share this service's :class:`ResultCache` and executor
    hardening parameters (per-run ``timeout`` in seconds, bounded
    ``retries`` -- see PR 5's sweep hardening).

    ``cache=None`` disables result reuse; a string/``Path`` roots a
    :class:`ResultCache` there; a ready cache object is used as-is.
    The service is a context manager: leaving the ``with`` block shuts
    the worker down after the queue drains.
    """

    def __init__(
        self,
        cache: "ResultCache | str | None" = None,
        *,
        workers: WorkerCount = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
    ) -> None:
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self._executor = SweepExecutor(
            workers=workers, timeout=timeout, retries=retries
        )
        self._jobs: dict[str, _Job] = {}
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._worker: Optional[threading.Thread] = None
        self._shutdown = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, work: Submittable, name: Optional[str] = None) -> str:
        """Enqueue an experiment; returns its job id immediately.

        ``work`` is a prepared ``list[RunSpec]``, a
        :class:`GridExperiment` or an :class:`ExperimentTemplate` (their
        ``specs()`` materialise the cells).
        """
        specs, derived_name = self._coerce(work)
        if not specs:
            raise ValueError("cannot submit an empty experiment")
        with self._lock:
            if self._shutdown:
                raise RuntimeError("service is shut down")
            job_id = f"job-{next(self._ids):04d}"
            job = _Job(job_id, name or derived_name, specs)
            self._jobs[job_id] = job
            self._ensure_worker()
        self._queue.put(job)
        return job_id

    def status(self, job_id: str) -> JobStatus:
        """A point-in-time snapshot of the job's progress."""
        job = self._get(job_id)
        with self._lock:
            finished = job.finished_at
            elapsed = (finished if finished is not None else time.monotonic())
            return JobStatus(
                job_id=job.id,
                name=job.name,
                state=job.state,
                total_cells=len(job.specs),
                completed_cells=len(job.results),
                cache_hits=job.cache_hits,
                cache_misses=job.cache_misses,
                error=job.error,
                elapsed_s=elapsed - job.submitted_at,
                cells=[
                    CellStatus(
                        index=cell.index,
                        label=cell.label,
                        state=cell.state,
                        summary=dict(cell.summary) if cell.summary else None,
                    )
                    for cell in job.cells
                ],
            )

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobStatus:
        """Block until the job reaches a terminal state (or ``timeout``
        seconds pass); returns the final (or current) status."""
        job = self._get(job_id)
        job.done.wait(timeout)
        return self.status(job_id)

    def results(
        self, job_id: str, wait: bool = True, timeout: Optional[float] = None
    ) -> list[object]:
        """The job's results in spec order (blocking by default).

        Cache hits come back as :class:`CachedResult`, computed cells as
        full :class:`~repro.core.simulation.SimulationResult` -- both
        with bit-identical ``summary()``.  A job that failed or was
        cancelled raises :class:`JobFailedError` carrying the cells that
        did complete.
        """
        job = self._get(job_id)
        if wait:
            if not job.done.wait(timeout):
                raise TimeoutError(f"job {job_id} still {job.state.value}")
        with self._lock:
            if job.state is not JobState.DONE:
                raise JobFailedError(
                    job.id, job.state, job.error, dict(job.results)
                )
            return [job.results[position] for position in range(len(job.specs))]

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True unless the job already finished.

        A queued job never starts; a running job stops at the next cell
        boundary (the in-flight cell completes and is cached).
        """
        job = self._get(job_id)
        with self._lock:
            if job.state.terminal:
                return False
            job.cancel_requested = True
            if job.state is JobState.QUEUED:
                self._finish(job, JobState.CANCELLED)
        return True

    def jobs(self) -> list[JobStatus]:
        """Snapshots of every job ever submitted, in submission order."""
        with self._lock:
            ids = list(self._jobs)
        return [self.status(job_id) for job_id in ids]

    def cache_stats(self) -> dict[str, object]:
        """The shared cache's :meth:`~ResultCache.stats` report (empty
        when the service runs uncached)."""
        if self.cache is None:
            return {"enabled": False}
        report = self.cache.stats()
        report["enabled"] = True
        return report

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; optionally wait for the queue to drain."""
        with self._lock:
            if self._shutdown:
                worker = self._worker
                if wait and worker is not None and worker.is_alive():
                    worker.join()
                return
            self._shutdown = True
            worker = self._worker
        self._queue.put(None)
        if wait and worker is not None:
            worker.join()

    def __enter__(self) -> "ExperimentService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _coerce(self, work: Submittable) -> tuple[list[RunSpec], str]:
        if isinstance(work, (GridExperiment, ExperimentTemplate)):
            return work.specs(), work.name
        specs = list(work)
        for spec in specs:
            if not isinstance(spec, RunSpec):
                raise TypeError(f"expected RunSpec, got {type(spec).__name__}")
        return specs, f"{len(specs)}-cell experiment"

    def _get(self, job_id: str) -> _Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def _ensure_worker(self) -> None:
        # Called under the lock.  The worker is a daemon so an exiting
        # interpreter is never held hostage by a forgotten service.
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._drain, name="experiment-service", daemon=True
            )
            self._worker.start()

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                break
            if job.state is not JobState.QUEUED:
                continue  # cancelled while queued
            self._run_job(job)

    def _run_job(self, job: _Job) -> None:
        with self._lock:
            if job.cancel_requested:
                self._finish(job, JobState.CANCELLED)
                return
            job.state = JobState.RUNNING

        def progress(spec: RunSpec, result: SimulationResult) -> None:
            position = len(job.results)  # delivery is strictly spec order
            hit = isinstance(result, CachedResult)
            with self._lock:
                job.results[position] = result
                cell = job.cells[position]
                cell.state = CellState.CACHED if hit else CellState.COMPUTED
                cell.summary = result.summary()
                if hit:
                    job.cache_hits += 1
                else:
                    job.cache_misses += 1
                cancelled = job.cancel_requested
            if cancelled:
                raise _Cancelled()

        try:
            list(self._executor.imap(job.specs, progress=progress, cache=self.cache))
        except _Cancelled:
            with self._lock:
                for cell in job.cells:
                    if cell.state is CellState.PENDING:
                        cell.state = CellState.SKIPPED
                self._finish(job, JobState.CANCELLED)
            return
        except SweepRunError as error:
            with self._lock:
                job.error = str(error)
                for cell in job.cells:
                    if cell.index == error.index:
                        cell.state = CellState.FAILED
                    elif cell.state is CellState.PENDING:
                        cell.state = CellState.SKIPPED
                self._finish(job, JobState.FAILED)
            return
        except Exception as error:  # defensive: never kill the drain loop
            with self._lock:
                job.error = f"{type(error).__name__}: {error}"
                self._finish(job, JobState.FAILED)
            return
        with self._lock:
            self._finish(job, JobState.DONE)

    def _finish(self, job: _Job, state: JobState) -> None:
        # Called under the lock.
        job.state = state
        job.finished_at = time.monotonic()
        job.done.set()


def run_to_completion(
    service: ExperimentService,
    work: Submittable,
    name: Optional[str] = None,
    on_progress: Optional[Callable[[JobStatus], None]] = None,
    poll_s: float = 0.1,
) -> tuple[JobStatus, list[object]]:
    """Convenience synchronous driver: submit, poll, return results.

    ``on_progress`` (if given) receives a fresh :class:`JobStatus`
    every ``poll_s`` seconds -- the loop the terminal dashboard runs.
    """
    job_id = service.submit(work, name=name)
    while True:
        status = service.status(job_id)
        if on_progress is not None:
            on_progress(status)
        if status.state.terminal:
            break
        time.sleep(poll_s)
    return status, service.results(job_id)
