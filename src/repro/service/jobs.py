"""The long-lived experiment service: submit / status / results / cancel.

EagleTree's headline artifact is a live demo -- pick parameters, run,
watch the metrics move (paper Figure 2).  :class:`ExperimentService` is
the server-side version of that loop: experiments are *submitted* to a
long-lived object instead of scripted around the simulator, a background
worker drains the job queue through the hardened
:class:`~repro.core.parallel.SweepExecutor`, and every completed cell is
persisted to the content-addressed :class:`~repro.service.cache.
ResultCache` so repeated cells -- across jobs, processes and days -- are
served from disk.

::

    service = ExperimentService(cache=ResultCache(tmp), workers="auto")
    job_id = service.submit(grid)           # or a list[RunSpec]
    service.status(job_id)                  # queued/running/done + progress
    results = service.results(job_id)       # blocks until done, spec order
    service.cancel(job_id)                  # queued: dropped; running: stops
                                            # at the next cell boundary

Everything observable is a *snapshot*: :meth:`status` returns plain
dataclasses copied under the service lock, so dashboards may poll from
any thread while the worker mutates freely.
"""

from __future__ import annotations

import enum
import itertools
import queue
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.core.canonical import code_fingerprint
from repro.core.experiments import ExperimentTemplate, GridExperiment
from repro.core.parallel import (
    RunSpec,
    SweepExecutor,
    SweepRunError,
    WorkerCount,
)
from repro.core.simulation import SimulationResult
from repro.service.cache import CachedResult, ResultCache
from repro.service.journal import (
    JournalMismatchError,
    ReplayedResult,
    SweepJournal,
)

__all__ = [
    "CellState",
    "CellStatus",
    "ExperimentService",
    "JobFailedError",
    "JobState",
    "JobStatus",
    "UnknownJobError",
]

#: What may be submitted: prepared specs or a whole experiment object.
Submittable = Union[Sequence[RunSpec], GridExperiment, ExperimentTemplate]


class JobState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    #: Stopped at a cell boundary by a signal or service shutdown; the
    #: journal holds every completed cell and the job is resumable.
    INTERRUPTED = "interrupted"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.INTERRUPTED,
        )


class CellState(enum.Enum):
    PENDING = "pending"
    #: Completed and served from the result cache (no simulation ran).
    CACHED = "cached"
    #: Completed by running the simulation.
    COMPUTED = "computed"
    #: Completed by an earlier interrupted run, replayed from its journal.
    RESUMED = "resumed"
    FAILED = "failed"
    SKIPPED = "skipped"


class UnknownJobError(KeyError):
    """No job with that id was ever submitted to this service."""


class JobFailedError(RuntimeError):
    """``results()`` was asked for a job that did not complete.

    ``partial_results`` maps spec position -> result for every cell that
    did finish before the failure or cancellation.
    """

    def __init__(self, job_id: str, state: "JobState", error: Optional[str],
                 partial_results: dict[int, object]) -> None:
        self.job_id = job_id
        self.state = state
        self.error = error
        self.partial_results = partial_results
        detail = f": {error}" if error else ""
        super().__init__(
            f"job {job_id} is {state.value} with "
            f"{len(partial_results)} completed cells{detail}"
        )


@dataclass
class CellStatus:
    """Progress snapshot of one grid cell."""

    index: int
    label: str
    state: CellState = CellState.PENDING
    #: Metric summary, present once the cell completed.
    summary: Optional[dict[str, float]] = None


@dataclass
class JobStatus:
    """Immutable snapshot of one job, safe to render from any thread."""

    job_id: str
    name: str
    state: JobState
    total_cells: int
    completed_cells: int
    cache_hits: int
    cache_misses: int
    error: Optional[str]
    #: Wall-clock seconds: queued -> now while live, queued -> finish after.
    elapsed_s: float
    #: Cells replayed from a sweep journal (neither cache hit nor run).
    resumed_cells: int = 0
    #: Human-readable lifecycle log, oldest first: submitted, started,
    #: replayed-from-journal, interrupted, ...
    events: list[str] = field(default_factory=list)
    cells: list[CellStatus] = field(default_factory=list)

    @property
    def done_fraction(self) -> float:
        if not self.total_cells:
            return 1.0
        return self.completed_cells / self.total_cells


class _Cancelled(Exception):
    """Internal: unwinds the executor when a running job is cancelled."""


class _Interrupted(Exception):
    """Internal: unwinds the executor at the next cell boundary when the
    service is asked to stop (signal / shutdown).  Unlike cancellation
    the job stays resumable: completed cells are in the journal."""


#: Keep at most this many lifecycle events per job (oldest dropped).
_MAX_EVENTS = 50


class _Job:
    """Service-internal mutable job record (guarded by the service lock)."""

    def __init__(
        self,
        job_id: str,
        name: str,
        specs: list[RunSpec],
        journal: Optional[SweepJournal] = None,
    ) -> None:
        self.id = job_id
        self.name = name
        self.specs = specs
        self.journal = journal
        self.state = JobState.QUEUED
        self.cells = [
            CellStatus(index=position, label=str(spec.label))
            for position, spec in enumerate(specs)
        ]
        self.results: dict[int, object] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.resumed_cells = 0
        self.error: Optional[str] = None
        self.cancel_requested = False
        self.interrupt_requested = False
        self.submitted_at = time.monotonic()
        self.finished_at: Optional[float] = None
        self.done = threading.Event()
        self.events: list[str] = []

    def log(self, message: str) -> None:
        # Called under the service lock.
        stamp = time.monotonic() - self.submitted_at
        self.events.append(f"[{stamp:+8.2f}s] {message}")
        del self.events[:-_MAX_EVENTS]


class ExperimentService:
    """A long-lived runner absorbing continuous experiment traffic.

    One background thread drains the queue (jobs run one at a time;
    *within* a job, cells fan out over ``workers`` processes).  All
    jobs share this service's :class:`ResultCache` and executor
    hardening parameters (per-run ``timeout`` in seconds, bounded
    ``retries`` -- see PR 5's sweep hardening).

    ``cache=None`` disables result reuse; a string/``Path`` roots a
    :class:`ResultCache` there; a ready cache object is used as-is.
    The service is a context manager: leaving the ``with`` block shuts
    the worker down after the queue drains; leaving it on
    ``KeyboardInterrupt`` interrupts live jobs instead (they become
    ``INTERRUPTED`` and, when journalled, resumable).

    ``journal_dir`` opts a service into crash-safe checkpointing: every
    submitted job gets an append-only journal there
    (``<journal_dir>/<job_id>.jsonl``) and :meth:`resume` can finish an
    interrupted or SIGKILLed job bit-identically, skipping every
    journalled cell.  ``stall_timeout`` arms the executor's heartbeat
    supervision (a run whose event counter freezes that long is killed
    as *hung*, distinct from a merely slow straggler).
    """

    def __init__(
        self,
        cache: "ResultCache | str | None" = None,
        *,
        workers: WorkerCount = 1,
        timeout: Optional[float] = None,
        retries: int = 0,
        journal_dir: "str | Path | None" = None,
        stall_timeout: Optional[float] = None,
    ) -> None:
        if cache is None or isinstance(cache, ResultCache):
            self.cache = cache
        else:
            self.cache = ResultCache(cache)
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self._executor = SweepExecutor(
            workers=workers,
            timeout=timeout,
            retries=retries,
            stall_timeout=stall_timeout,
        )
        self._jobs: dict[str, _Job] = {}
        self._queue: "queue.Queue[Optional[_Job]]" = queue.Queue()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._worker: Optional[threading.Thread] = None
        self._shutdown = False

    def _fingerprint(self) -> str:
        """The fingerprint journals are written under -- the cache's when
        one is attached (so journal keys and cache keys agree), the code
        fingerprint otherwise."""
        if self.cache is not None:
            return self.cache.fingerprint
        return code_fingerprint()

    def journal_path(self, job_id: str) -> Path:
        if self.journal_dir is None:
            raise RuntimeError("service has no journal_dir configured")
        return self.journal_dir / f"{job_id}.jsonl"

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(
        self,
        work: Submittable,
        name: Optional[str] = None,
        *,
        grid: Optional[dict] = None,
    ) -> str:
        """Enqueue an experiment; returns its job id immediately.

        ``work`` is a prepared ``list[RunSpec]``, a
        :class:`GridExperiment` or an :class:`ExperimentTemplate` (their
        ``specs()`` materialise the cells).  With a ``journal_dir``
        configured the job is journalled from cell one; ``grid`` (a
        :func:`~repro.service.grids.grid_manifest` dict) is stored in
        the journal so a fresh process can rebuild the specs and
        :meth:`resume` by job id alone.
        """
        specs, derived_name = self._coerce(work)
        if not specs:
            raise ValueError("cannot submit an empty experiment")
        with self._lock:
            if self._shutdown:
                raise RuntimeError("service is shut down")
            # Ids restart at 1 per service instance, but journals
            # persist across processes -- never overwrite one that an
            # earlier (possibly killed) process left behind.
            while True:
                job_id = f"job-{next(self._ids):04d}"
                if self.journal_dir is None or not self.journal_path(job_id).exists():
                    break
            job_name = name or derived_name
            journal: Optional[SweepJournal] = None
            if self.journal_dir is not None:
                journal = SweepJournal.create(
                    self.journal_path(job_id),
                    job_id=job_id,
                    name=job_name,
                    specs=specs,
                    fingerprint=self._fingerprint(),
                    grid=grid,
                )
            job = _Job(job_id, job_name, specs, journal=journal)
            job.log(f"submitted ({len(specs)} cells)")
            if journal is not None:
                job.log(f"journal {journal.path.name}")
            self._jobs[job_id] = job
            self._ensure_worker()
        self._queue.put(job)
        return job_id

    def resume(self, job_id: str, work: Optional[Submittable] = None) -> str:
        """Re-enqueue an interrupted (or SIGKILLed) job from its journal.

        Every journalled cell is replayed verbatim -- zero re-runs, byte
        identical summaries -- and only the remaining cells execute.
        ``work`` may supply the spec list explicitly; without it the
        specs are rebuilt from the grid manifest recorded at submit
        time.  Raises :class:`~repro.service.journal.JournalError` if
        the journal is unusable and
        :class:`~repro.service.journal.JournalMismatchError` if the
        specs (or the code version) no longer match what was journalled.
        """
        if self.journal_dir is None:
            raise RuntimeError("service has no journal_dir configured")
        journal = SweepJournal.open(self.journal_path(job_id))
        if journal.fingerprint != self._fingerprint():
            raise JournalMismatchError(
                f"journal {job_id} was written under fingerprint "
                f"{journal.fingerprint[:12]}..., current is "
                f"{self._fingerprint()[:12]}... -- results would not be "
                "comparable; rerun instead of resuming"
            )
        if work is not None:
            specs, _ = self._coerce(work)
        else:
            manifest = journal.grid_manifest()
            if manifest is None:
                raise JournalMismatchError(
                    f"journal {job_id} has no grid manifest; pass the "
                    "specs explicitly to resume(job_id, work=...)"
                )
            from repro.service.grids import specs_from_manifest

            specs = specs_from_manifest(manifest)
        journal.validate(specs)
        name = str(journal.manifest.get("name", job_id))
        with self._lock:
            if self._shutdown:
                raise RuntimeError("service is shut down")
            existing = self._jobs.get(job_id)
            if existing is not None and not existing.state.terminal:
                raise RuntimeError(f"job {job_id} is still {existing.state.value}")
            job = _Job(job_id, name, specs, journal=journal)
            job.log(
                f"resumed from journal: {journal.completed}/{journal.cells} "
                "cells already complete"
            )
            self._jobs[job_id] = job
            self._ensure_worker()
        self._queue.put(job)
        return job_id

    def status(self, job_id: str) -> JobStatus:
        """A point-in-time snapshot of the job's progress."""
        job = self._get(job_id)
        with self._lock:
            finished = job.finished_at
            elapsed = (finished if finished is not None else time.monotonic())
            return JobStatus(
                job_id=job.id,
                name=job.name,
                state=job.state,
                total_cells=len(job.specs),
                completed_cells=len(job.results),
                cache_hits=job.cache_hits,
                cache_misses=job.cache_misses,
                error=job.error,
                elapsed_s=elapsed - job.submitted_at,
                resumed_cells=job.resumed_cells,
                events=list(job.events),
                cells=[
                    CellStatus(
                        index=cell.index,
                        label=cell.label,
                        state=cell.state,
                        summary=dict(cell.summary) if cell.summary else None,
                    )
                    for cell in job.cells
                ],
            )

    def wait(self, job_id: str, timeout: Optional[float] = None) -> JobStatus:
        """Block until the job reaches a terminal state (or ``timeout``
        seconds pass); returns the final (or current) status."""
        job = self._get(job_id)
        job.done.wait(timeout)
        return self.status(job_id)

    def results(
        self, job_id: str, wait: bool = True, timeout: Optional[float] = None
    ) -> list[object]:
        """The job's results in spec order (blocking by default).

        Cache hits come back as :class:`CachedResult`, computed cells as
        full :class:`~repro.core.simulation.SimulationResult` -- both
        with bit-identical ``summary()``.  A job that failed or was
        cancelled raises :class:`JobFailedError` carrying the cells that
        did complete.
        """
        job = self._get(job_id)
        if wait:
            if not job.done.wait(timeout):
                raise TimeoutError(f"job {job_id} still {job.state.value}")
        with self._lock:
            if job.state is not JobState.DONE:
                raise JobFailedError(
                    job.id, job.state, job.error, dict(job.results)
                )
            return [job.results[position] for position in range(len(job.specs))]

    def cancel(self, job_id: str) -> bool:
        """Request cancellation; True unless the job already finished.

        A queued job never starts; a running job stops at the next cell
        boundary (the in-flight cell completes and is cached).
        """
        job = self._get(job_id)
        with self._lock:
            if job.state.terminal:
                return False
            job.cancel_requested = True
            if job.state is JobState.QUEUED:
                self._finish(job, JobState.CANCELLED)
        return True

    def jobs(self) -> list[JobStatus]:
        """Snapshots of every job ever submitted, in submission order."""
        with self._lock:
            ids = list(self._jobs)
        return [self.status(job_id) for job_id in ids]

    def cache_stats(self) -> dict[str, object]:
        """The shared cache's :meth:`~ResultCache.stats` report (empty
        when the service runs uncached)."""
        if self.cache is None:
            return {"enabled": False}
        report = self.cache.stats()
        report["enabled"] = True
        return report

    def interrupt(self, wait: bool = True) -> None:
        """Stop the service *now*, leaving live jobs resumable.

        Queued jobs flip straight to ``INTERRUPTED``; the running job
        stops at its next cell boundary (the in-flight cell completes,
        is journalled/cached, then the job goes ``INTERRUPTED``).  This
        is what the CLI's SIGINT/SIGTERM handlers call -- no job is
        ever left claiming to be ``RUNNING`` by a dead process.
        """
        with self._lock:
            self._shutdown = True
            worker = self._worker
            for job in self._jobs.values():
                if job.state is JobState.QUEUED:
                    job.log("interrupted while queued")
                    self._finish(job, JobState.INTERRUPTED)
                elif job.state is JobState.RUNNING:
                    job.interrupt_requested = True
        self._queue.put(None)
        if wait and worker is not None:
            worker.join()
            self._sweep_stranded()

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; optionally wait for the queue to drain.

        After the worker exits, any job still claiming a live state
        (a worker that died mid-job, a queue abandoned with
        ``wait=False`` in an earlier call) is swept to ``INTERRUPTED``
        so dashboards never show phantom live jobs.
        """
        with self._lock:
            already = self._shutdown
            self._shutdown = True
            worker = self._worker
        if not already:
            self._queue.put(None)
        if wait:
            # Outside the lock: the worker needs it to finish its job,
            # and _sweep_stranded re-acquires it.
            if worker is not None and worker.is_alive():
                worker.join()
            self._sweep_stranded()

    def _sweep_stranded(self) -> None:
        """Flip any job the (now stopped) worker left non-terminal to
        ``INTERRUPTED`` -- there is no process left to finish it."""
        with self._lock:
            for job in self._jobs.values():
                if not job.state.terminal:
                    job.log("stranded at shutdown")
                    self._finish(job, JobState.INTERRUPTED)

    def __enter__(self) -> "ExperimentService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if exc_info and isinstance(exc_info[1], KeyboardInterrupt):
            self.interrupt(wait=True)
        else:
            self.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _coerce(self, work: Submittable) -> tuple[list[RunSpec], str]:
        if isinstance(work, (GridExperiment, ExperimentTemplate)):
            return work.specs(), work.name
        specs = list(work)
        for spec in specs:
            if not isinstance(spec, RunSpec):
                raise TypeError(f"expected RunSpec, got {type(spec).__name__}")
        return specs, f"{len(specs)}-cell experiment"

    def _get(self, job_id: str) -> _Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJobError(job_id) from None

    def _ensure_worker(self) -> None:
        # Called under the lock.  The worker is a daemon so an exiting
        # interpreter is never held hostage by a forgotten service.
        if self._worker is None or not self._worker.is_alive():
            self._worker = threading.Thread(
                target=self._drain, name="experiment-service", daemon=True
            )
            self._worker.start()

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                break
            if job.state is not JobState.QUEUED:
                continue  # cancelled while queued
            self._run_job(job)

    def _run_job(self, job: _Job) -> None:
        with self._lock:
            if job.cancel_requested:
                self._finish(job, JobState.CANCELLED)
                return
            if job.interrupt_requested or job.state.terminal:
                return  # interrupted while queued (already terminal)
            job.state = JobState.RUNNING
            job.log("started")

        def progress(spec: RunSpec, result: SimulationResult) -> None:
            position = len(job.results)  # delivery is strictly spec order
            replayed = isinstance(result, ReplayedResult)
            hit = isinstance(result, CachedResult) and not replayed
            with self._lock:
                job.results[position] = result
                cell = job.cells[position]
                if replayed:
                    cell.state = CellState.RESUMED
                    job.resumed_cells += 1
                elif hit:
                    cell.state = CellState.CACHED
                    job.cache_hits += 1
                else:
                    cell.state = CellState.COMPUTED
                    job.cache_misses += 1
                cell.summary = result.summary()
                cancelled = job.cancel_requested
                interrupted = job.interrupt_requested
            if cancelled:
                raise _Cancelled()
            if interrupted:
                raise _Interrupted()

        try:
            list(
                self._executor.imap(
                    job.specs,
                    progress=progress,
                    cache=self.cache,
                    journal=job.journal,
                )
            )
        except _Cancelled:
            with self._lock:
                for cell in job.cells:
                    if cell.state is CellState.PENDING:
                        cell.state = CellState.SKIPPED
                job.log("cancelled")
                self._finish(job, JobState.CANCELLED)
            return
        except _Interrupted:
            # Pending cells stay PENDING: they are not abandoned, they
            # are waiting for resume().
            with self._lock:
                job.log(
                    f"interrupted at cell boundary "
                    f"({len(job.results)}/{len(job.specs)} complete)"
                )
                self._finish(job, JobState.INTERRUPTED)
            return
        except SweepRunError as error:
            with self._lock:
                job.error = str(error)
                for cell in job.cells:
                    if cell.index == error.index:
                        cell.state = CellState.FAILED
                    elif cell.state is CellState.PENDING:
                        cell.state = CellState.SKIPPED
                job.log(f"failed: {error}")
                self._finish(job, JobState.FAILED)
            return
        except Exception as error:  # defensive: never kill the drain loop
            with self._lock:
                job.error = f"{type(error).__name__}: {error}"
                job.log(f"failed: {job.error}")
                self._finish(job, JobState.FAILED)
            return
        with self._lock:
            if job.resumed_cells:
                job.log(
                    f"completed ({job.resumed_cells} replayed, "
                    f"{job.cache_hits} cached, {job.cache_misses} computed)"
                )
            self._finish(job, JobState.DONE)

    _JOURNAL_MARKS = {
        JobState.DONE: "done",
        JobState.FAILED: "failed",
        JobState.CANCELLED: "cancelled",
        JobState.INTERRUPTED: "interrupted",
    }

    def _finish(self, job: _Job, state: JobState) -> None:
        # Called under the lock.
        job.state = state
        job.finished_at = time.monotonic()
        if job.journal is not None:
            mark = self._JOURNAL_MARKS.get(state)
            try:
                if mark is not None:
                    job.journal.mark(mark, completed=len(job.results))
                job.journal.close()
            except OSError:
                pass  # the cell records are already durable
        job.done.set()


def run_to_completion(
    service: ExperimentService,
    work: Submittable,
    name: Optional[str] = None,
    on_progress: Optional[Callable[[JobStatus], None]] = None,
    poll_s: float = 0.1,
) -> tuple[JobStatus, list[object]]:
    """Convenience synchronous driver: submit, poll, return results.

    ``on_progress`` (if given) receives a fresh :class:`JobStatus`
    every ``poll_s`` seconds -- the loop the terminal dashboard runs.
    """
    job_id = service.submit(work, name=name)
    while True:
        status = service.status(job_id)
        if on_progress is not None:
            on_progress(status)
        if status.state.terminal:
            break
        time.sleep(poll_s)
    return status, service.results(job_id)
