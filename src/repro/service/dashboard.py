"""Live views of a running experiment job (paper Figure 2, text-mode).

EagleTree's demo graphs metrics while the simulator runs.  This module
renders the service-side equivalent from :class:`~repro.service.jobs.
JobStatus` snapshots, so it needs no access to the worker thread --
anything that can poll ``service.status(job_id)`` can drive it:

* :func:`render_job` -- a terminal panel: progress bar, cache hit/miss
  counters, a per-cell metric table and a sparkline trend per metric.
* :func:`render_job_html` / :func:`write_html` -- the same content as a
  static HTML page (self-refreshing while the job runs), the artifact
  CI uploads and browsers watch.
* :func:`watch` -- the polling loop: full-screen redraw on a TTY, one
  appended table row per completed cell on plain streams (logs, CI).
"""

from __future__ import annotations

import html
import sys
import time
from pathlib import Path
from types import MappingProxyType
from typing import IO, Optional, Sequence

from repro.analysis.reporting import IncrementalTable, format_event_log, sparkline
from repro.core import units
from repro.service.jobs import CellState, ExperimentService, JobStatus

__all__ = ["render_job", "render_job_html", "watch", "write_html"]

#: Lifecycle events shown under the panel (the tail of the job log).
EVENT_TAIL = 4

#: Default metric columns: the demo's throughput / latency / GC story.
DEFAULT_METRICS = (
    "throughput_iops",
    "write_mean_ns",
    "write_p99_ns",
    "write_amplification",
)

_STATE_GLYPHS = MappingProxyType({
    CellState.PENDING: ".",
    CellState.CACHED: "c",
    CellState.COMPUTED: "#",
    CellState.RESUMED: "r",
    CellState.FAILED: "!",
    CellState.SKIPPED: "-",
})

#: Where a completed cell's summary came from (table "src" column).
_SOURCES = MappingProxyType({
    CellState.CACHED: "cache",
    CellState.RESUMED: "journal",
})


def _source(cell) -> str:
    return _SOURCES.get(cell.state, "run")


def _progress_bar(status: JobStatus, width: int = 32) -> str:
    filled = round(status.done_fraction * width)
    return "[" + "#" * filled + "." * (width - filled) + "]"


def _metric_text(value: float, metric: str) -> str:
    if metric.endswith("_ns"):
        return units.format_time(round(value))
    if abs(value) >= 1000:
        return f"{value:,.0f}"
    return f"{value:,.2f}"


def _completed_cells(status: JobStatus) -> list:
    return [cell for cell in status.cells if cell.summary is not None]


def cell_table(
    status: JobStatus, metrics: Sequence[str] = DEFAULT_METRICS
) -> IncrementalTable:
    """The per-cell metric table for ``status`` (completed cells only)."""
    table = IncrementalTable(["cell", "src"] + list(metrics), min_width=10)
    for cell in _completed_cells(status):
        row = [cell.label, _source(cell)] + [
            _metric_text(cell.summary.get(metric, 0.0), metric) for metric in metrics
        ]
        table.add_row(row)
    return table


def render_job(
    status: JobStatus,
    metrics: Sequence[str] = DEFAULT_METRICS,
    width: int = 32,
) -> str:
    """The full terminal panel for one status snapshot."""
    resumed = f"  journal {status.resumed_cells} replayed" if status.resumed_cells else ""
    lines = [
        f"== {status.name} ({status.job_id}) ==",
        (
            f"state {status.state.value:<11} {_progress_bar(status, width)} "
            f"{status.completed_cells}/{status.total_cells} cells  "
            f"cache {status.cache_hits} hit / {status.cache_misses} miss"
            f"{resumed}  {status.elapsed_s:.1f}s"
        ),
        "cells " + "".join(_STATE_GLYPHS[cell.state] for cell in status.cells),
    ]
    if status.error:
        lines.append(f"error: {status.error}")
    if status.events:
        lines.append(format_event_log(status.events, tail=EVENT_TAIL))
    completed = _completed_cells(status)
    if completed:
        lines.append("")
        lines.append(cell_table(status, metrics).render())
        lines.append("")
        for metric in metrics:
            series = [cell.summary.get(metric, 0.0) for cell in completed]
            lines.append(f"{metric:<22} {sparkline(series)}")
    return "\n".join(lines)


def render_job_html(
    status: JobStatus, metrics: Sequence[str] = DEFAULT_METRICS
) -> str:
    """A static HTML page of the same panel.

    Self-contained (inline CSS, no scripts beyond a ``meta refresh``
    that stops once the job is terminal), so it can be written next to
    the results and opened from anywhere.
    """
    refresh = (
        "" if status.state.terminal else '<meta http-equiv="refresh" content="2">'
    )
    glyphs = "".join(
        f'<span class="cell {cell.state.value}" title="{html.escape(cell.label)}: '
        f'{cell.state.value}"></span>'
        for cell in status.cells
    )
    header_cells = "".join(
        f"<th>{html.escape(name)}</th>" for name in ["cell", "src"] + list(metrics)
    )
    body_rows = []
    for cell in _completed_cells(status):
        source = _source(cell)
        values = "".join(
            f"<td>{html.escape(_metric_text(cell.summary.get(metric, 0.0), metric))}</td>"
            for metric in metrics
        )
        body_rows.append(
            f"<tr><td>{html.escape(cell.label)}</td>"
            f'<td class="{source}">{source}</td>{values}</tr>'
        )
    percent = round(status.done_fraction * 100)
    error = (
        f'<p class="error">{html.escape(status.error)}</p>' if status.error else ""
    )
    resumed = (
        f" &mdash; journal {status.resumed_cells} replayed"
        if status.resumed_cells else ""
    )
    events = ""
    if status.events:
        items = "".join(
            f"<li>{html.escape(line)}</li>" for line in status.events[-EVENT_TAIL:]
        )
        events = f'<ul class="events">{items}</ul>'
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
{refresh}
<title>{html.escape(status.name)} ({html.escape(status.job_id)})</title>
<style>
  body {{ font-family: ui-monospace, monospace; margin: 2rem; color: #222; }}
  .bar {{ background: #eee; width: 24rem; height: 1rem; }}
  .bar > div {{ background: #4a7; height: 100%; width: {percent}%; }}
  .cell {{ display: inline-block; width: .7rem; height: .7rem; margin: 1px; background: #ddd; }}
  .cell.cached {{ background: #58c; }}
  .cell.computed {{ background: #4a7; }}
  .cell.resumed {{ background: #a6d; }}
  .cell.failed {{ background: #c44; }}
  .cell.skipped {{ background: #aaa; }}
  table {{ border-collapse: collapse; margin-top: 1rem; }}
  td, th {{ border: 1px solid #ccc; padding: .25rem .6rem; text-align: right; }}
  td.cache {{ color: #58c; }} td.run {{ color: #4a7; }} td.journal {{ color: #a6d; }}
  .error {{ color: #c44; }}
  .events {{ color: #666; list-style: none; padding-left: 0; font-size: .85rem; }}
</style>
</head>
<body>
<h1>{html.escape(status.name)} <small>({html.escape(status.job_id)})</small></h1>
<p>state <strong>{status.state.value}</strong> &mdash;
{status.completed_cells}/{status.total_cells} cells &mdash;
cache {status.cache_hits} hit / {status.cache_misses} miss{resumed} &mdash;
{status.elapsed_s:.1f}s</p>
<div class="bar"><div></div></div>
<p>{glyphs}</p>
{error}
{events}
<table>
<thead><tr>{header_cells}</tr></thead>
<tbody>
{chr(10).join(body_rows)}
</tbody>
</table>
</body>
</html>
"""


def write_html(
    status: JobStatus,
    path: "str | Path",
    metrics: Sequence[str] = DEFAULT_METRICS,
) -> None:
    Path(path).write_text(render_job_html(status, metrics), encoding="utf-8")


def watch(
    service: ExperimentService,
    job_id: str,
    *,
    interval: float = 0.5,
    stream: Optional[IO[str]] = None,
    metrics: Sequence[str] = DEFAULT_METRICS,
    html_path: "str | Path | None" = None,
    timeout: Optional[float] = None,
) -> JobStatus:
    """Tail a job until it finishes; returns the final status.

    On a TTY the panel redraws in place (ANSI clear) every ``interval``
    seconds.  On plain streams (files, CI logs) it degrades to
    append-only output: the table header once, one row per newly
    completed cell, then the final summary panel -- so logs stay
    readable.  ``html_path`` additionally rewrites the static HTML view
    on every poll.
    """
    out = stream if stream is not None else sys.stdout
    interactive = bool(getattr(out, "isatty", lambda: False)())
    table = IncrementalTable(["cell", "src"] + list(metrics), min_width=10)
    printed_header = False
    reported = 0
    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        status = service.status(job_id)
        if html_path is not None:
            write_html(status, html_path, metrics)
        if interactive:
            out.write("\x1b[2J\x1b[H" + render_job(status, metrics) + "\n")
        else:
            completed = _completed_cells(status)
            if completed and not printed_header:
                for line in table.header_lines():
                    out.write(line + "\n")
                printed_header = True
            for cell in completed[reported:]:
                row = [cell.label, _source(cell)] + [
                    _metric_text(cell.summary.get(metric, 0.0), metric)
                    for metric in metrics
                ]
                out.write(table.add_row(row) + "\n")
            reported = len(_completed_cells(status))
        out.flush()
        if status.state.terminal:
            break
        if deadline is not None and time.monotonic() >= deadline:
            break
        time.sleep(interval)
    if not interactive:
        out.write("\n" + render_job(status, metrics) + "\n")
        out.flush()
    return status
