"""The operating-system layer and the OS<->SSD interface.

* :mod:`repro.host.operating_system` -- manages IO requests from
  simulated concurrent threads: per-thread pending pools, a pluggable
  scheduling policy, the outstanding-IO (queue depth) limit, and
  completion interrupts back to the threads (paper Section 2.2, OS
  Scheduler).
* :mod:`repro.host.schedulers` -- the OS scheduling strategies: FIFO
  (the paper's default), priority, fair (CFQ-like) and deadline.
* :mod:`repro.host.interface` -- the *open interface*: an extensible
  messaging framework letting OS and SSD communicate as peers, plus the
  standard hint vocabulary (priority, update-locality, temperature).
"""

from repro.host.interface import (
    InterfaceClosedError,
    Message,
    OpenInterface,
    locality_hint,
    priority_hint,
    temperature_hint,
)
from repro.host.operating_system import OperatingSystem

__all__ = [
    "InterfaceClosedError",
    "Message",
    "OpenInterface",
    "OperatingSystem",
    "locality_hint",
    "priority_hint",
    "temperature_hint",
]
