"""OS IO scheduling strategies (paper Section 2.2, OS Scheduler).

"It maintains a pool of pending IOs from each thread and decides, based
on a customizable scheduling policy, which IOs to issue next to the SSD.
This policy can take into account the IO type (e.g. read/write/trim),
its priority, the dispatching thread, etc.  The default scheduling
strategy is FIFO."

Unlike the *device* scheduler (:mod:`repro.controller.scheduler`), the OS
always sees thread identities and hint metadata -- the question the open
interface experiments ask is whether the *device* also gets to see them.
"""

from __future__ import annotations

import abc
import heapq
import itertools
from collections import OrderedDict, deque
from typing import Optional

from repro.core.config import HostConfig, OsSchedulerPolicy
from repro.core.events import IoRequest, IoType


class OsScheduler(abc.ABC):
    """Pool of pending IOs plus a pop policy."""

    @abc.abstractmethod
    def add(self, io: IoRequest) -> None:
        """Queue an IO issued by a thread."""

    @abc.abstractmethod
    def pop(self, now: int) -> Optional[IoRequest]:
        """The next IO to dispatch to the SSD, or None if empty."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of queued IOs."""


class FifoOsScheduler(OsScheduler):
    """Dispatch in issue order (the paper's default)."""

    def __init__(self) -> None:
        self._queue: deque[IoRequest] = deque()

    def add(self, io: IoRequest) -> None:
        self._queue.append(io)

    def pop(self, now: int) -> Optional[IoRequest]:
        if self._queue:
            return self._queue.popleft()
        return None

    def __len__(self) -> int:
        return len(self._queue)


class PriorityOsScheduler(OsScheduler):
    """Strict priority order (``priority`` hint, lower first), FIFO
    within a priority level."""

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, IoRequest]] = []
        self._counter = itertools.count()

    def add(self, io: IoRequest) -> None:
        priority = int(io.hints.get("priority", 0))
        heapq.heappush(self._heap, (priority, next(self._counter), io))

    def pop(self, now: int) -> Optional[IoRequest]:
        if self._heap:
            return heapq.heappop(self._heap)[2]
        return None

    def __len__(self) -> int:
        return len(self._heap)


class FairOsScheduler(OsScheduler):
    """CFQ-like fair queueing: round-robin across issuing threads."""

    def __init__(self) -> None:
        self._queues: OrderedDict[str, deque[IoRequest]] = OrderedDict()

    def add(self, io: IoRequest) -> None:
        self._queues.setdefault(io.thread_name, deque()).append(io)

    def pop(self, now: int) -> Optional[IoRequest]:
        # simlint: disable=SIM003 -- the OrderedDict rotation IS the
        # round-robin fairness policy; its order is explicitly managed.
        for thread_name, queue in self._queues.items():
            if queue:
                io = queue.popleft()
                # Rotate the served thread to the back.
                self._queues.move_to_end(thread_name)
                return io
        return None

    def __len__(self) -> int:
        return sum(len(queue) for queue in self._queues.values())


class DeadlineOsScheduler(OsScheduler):
    """Earliest deadline first, with per-type deadlines from the host
    configuration (reads tighter than writes, as in Linux deadline)."""

    def __init__(self, config: HostConfig):
        self._config = config
        self._heap: list[tuple[int, int, IoRequest]] = []
        self._counter = itertools.count()

    def add(self, io: IoRequest) -> None:
        if io.io_type is IoType.READ:
            horizon = self._config.read_deadline_ns
        else:
            horizon = self._config.write_deadline_ns
        deadline = (io.issue_time or 0) + horizon
        heapq.heappush(self._heap, (deadline, next(self._counter), io))

    def pop(self, now: int) -> Optional[IoRequest]:
        if self._heap:
            return heapq.heappop(self._heap)[2]
        return None

    def __len__(self) -> int:
        return len(self._heap)


def build_os_scheduler(config: HostConfig) -> OsScheduler:
    """Factory used by the operating system layer."""
    policy = config.os_scheduler
    if policy is OsSchedulerPolicy.FIFO:
        return FifoOsScheduler()
    if policy is OsSchedulerPolicy.PRIORITY:
        return PriorityOsScheduler()
    if policy is OsSchedulerPolicy.FAIR:
        return FairOsScheduler()
    if policy is OsSchedulerPolicy.DEADLINE:
        return DeadlineOsScheduler(config)
    raise ValueError(f"unknown OS scheduler policy {policy!r}")
