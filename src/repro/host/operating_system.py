"""The operating-system layer.

Paper Section 2.2: "The Operating System manages IO requests incoming
from multiple simulated concurrent threads.  It maintains a pool of
pending IOs from each thread and decides, based on a customizable
scheduling policy, which IOs to issue next to the SSD. [...] Once the
SSD has completed executing an IO, it interrupts and notifies the OS.
The OS then activates the thread that dispatched the IO."

Also implemented here (Section 2.3):

* per-thread statistics gathering objects;
* dependencies among threads -- a thread starts only after the threads
  it depends on have finished, the paper's mechanism for bringing the
  SSD to a well-defined state before measuring.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.core.config import SimulationConfig
from repro.core.engine import Simulator
from repro.core.events import IoRequest, IoStatus, IoType, WriteHints
from repro.core.rng import RandomSource, RandomStream
from repro.core.statistics import StatisticsGatherer
from repro.core.tracing import TraceRecorder
from repro.host.interface import OpenInterface, install_standard_handlers
from repro.host.schedulers import build_os_scheduler


class ThreadContext:
    """The handle a thread uses to talk to the operating system.

    Passed to ``on_init`` and ``on_io_completed``; provides IO issuing,
    virtual time, per-thread randomness, timers and completion.
    """

    def __init__(self, os: "OperatingSystem", record: "_ThreadRecord"):
        self._os = os
        self._record = record

    @property
    def now(self) -> int:
        """Current virtual time (nanoseconds)."""
        return self._os.sim.now

    @property
    def logical_pages(self) -> int:
        """Size of the device's logical address space, in pages."""
        return self._os.config.logical_pages

    @property
    def thread_name(self) -> str:
        return self._record.name

    def rng(self, purpose: str = "main") -> RandomStream:
        """A deterministic random stream private to this thread."""
        return self._os.rng.stream(f"thread:{self._record.name}:{purpose}")

    # ------------------------------------------------------------------
    # IO issuing
    # ------------------------------------------------------------------
    def read(self, lpn: int, hints: Optional[WriteHints] = None) -> IoRequest:
        return self._issue(IoType.READ, lpn, hints)

    def write(self, lpn: int, hints: Optional[WriteHints] = None) -> IoRequest:
        return self._issue(IoType.WRITE, lpn, hints)

    def trim(self, lpn: int, hints: Optional[WriteHints] = None) -> IoRequest:
        return self._issue(IoType.TRIM, lpn, hints)

    def _issue(self, io_type: IoType, lpn: int, hints: Optional[WriteHints]) -> IoRequest:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(
                f"lpn {lpn} outside logical space [0, {self.logical_pages})"
            )
        io = IoRequest(io_type, lpn, thread_name=self._record.name, hints=hints)
        self._os.issue(self._record, io)
        return io

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: int, fn, *args: Any) -> None:
        """Run ``fn(*args)`` after a virtual delay (think time, timers)."""
        self._os.sim.post(delay_ns, fn, *args)

    def finish(self) -> None:
        """Declare this thread done; dependent threads may now start."""
        self._os.finish_thread(self._record)

    def send_message(self, message):
        """Send an open-interface message to the SSD (see
        :mod:`repro.host.interface`)."""
        return self._os.open_interface.send(message)


class _ThreadRecord:
    """OS-side bookkeeping for one registered thread."""

    __slots__ = (
        "thread",
        "name",
        "context",
        "depends_on",
        "started",
        "finished",
        "stats",
        "issued",
        "completed",
    )

    def __init__(self, thread, depends_on: set[str], stats: Optional[StatisticsGatherer]):
        self.thread = thread
        self.name = thread.name
        self.context: Optional[ThreadContext] = None
        self.depends_on = depends_on
        self.started = False
        self.finished = False
        self.stats = stats
        self.issued = 0
        self.completed = 0


class OperatingSystem:
    """Per-thread IO pools, a pluggable OS scheduler and the queue-depth
    limit toward the device."""

    def __init__(
        self,
        sim: Simulator,
        config: SimulationConfig,
        controller,
        stats: StatisticsGatherer,
        tracer: Optional[TraceRecorder] = None,
        rng: Optional[RandomSource] = None,
    ):
        self.sim = sim
        self.config = config
        self.controller = controller
        self.stats = stats
        self.tracer = tracer if tracer is not None else TraceRecorder(enabled=False)
        self.rng = rng or RandomSource(config.seed)
        self.scheduler = build_os_scheduler(config.host)
        self.max_outstanding = config.host.max_outstanding
        self.outstanding = 0
        self.open_interface = OpenInterface(config.host.open_interface)
        install_standard_handlers(self.open_interface, controller)
        controller.on_io_complete = self._interrupt
        self._records: dict[str, _ThreadRecord] = {}
        self._started = False
        #: Completed IoRequest objects, kept only when configured.
        self.completed_ios: list[IoRequest] = []
        self._retain_ios = config.host.retain_completed_ios
        #: Crash subsystem (both set by the simulation only when a power
        #: loss is scheduled; plain no-ops otherwise).  ``_inflight``
        #: tracks dispatched-but-uncompleted IOs so a power cut can fail
        #: them; the auditor observes acknowledged writes.
        self.track_inflight = False
        self._inflight: dict[int, IoRequest] = {}
        self.auditor = None

    # ------------------------------------------------------------------
    # Thread registration and lifecycle
    # ------------------------------------------------------------------
    def add_thread(
        self,
        thread,
        depends_on: Iterable[str] = (),
        collect_stats: bool = True,
    ) -> None:
        """Register a workload thread.

        ``depends_on`` names threads that must *finish* before this one
        starts -- the preconditioning mechanism of Section 2.3.
        """
        if thread.name in self._records:
            raise ValueError(f"duplicate thread name {thread.name!r}")
        stats = StatisticsGatherer(thread.name) if collect_stats else None
        self._records[thread.name] = _ThreadRecord(thread, set(depends_on), stats)

    def start(self) -> None:
        """Kick off all threads without dependencies (at t = now).

        Dependencies may name threads registered in any order; they are
        validated here, once the full roster is known.
        """
        # simlint: disable=SIM003 -- _records is a plain dict keyed by
        # thread name; iteration follows add_thread() registration order,
        # which is part of the experiment definition.
        for record in self._records.values():
            unknown = record.depends_on - set(self._records)
            if unknown:
                raise ValueError(
                    f"unknown dependencies for {record.name!r}: {sorted(unknown)}"
                )
        self._started = True
        # simlint: disable=SIM003 -- registration order, as above.
        for record in self._records.values():
            if not record.depends_on:
                self.sim.post(0, self._start_thread, record)

    def _start_thread(self, record: _ThreadRecord) -> None:
        if record.started:
            return
        record.started = True
        record.context = ThreadContext(self, record)
        self.tracer.record(self.sim.now, "os", "thread-start", record.name)
        record.thread.on_init(record.context)

    def finish_thread(self, record: _ThreadRecord) -> None:
        if record.finished:
            return
        record.finished = True
        self.tracer.record(self.sim.now, "os", "thread-finish", record.name)
        # simlint: disable=SIM003 -- registration order, as above.
        for candidate in self._records.values():
            if candidate.started or candidate.finished:
                continue
            if all(
                self._records[name].finished for name in candidate.depends_on
            ):
                self.sim.post(0, self._start_thread, candidate)

    @property
    def all_finished(self) -> bool:
        return all(record.finished for record in self._records.values())

    def thread_stats(self, name: str) -> StatisticsGatherer:
        stats = self._records[name].stats
        if stats is None:
            raise LookupError(f"thread {name!r} has no statistics gatherer")
        return stats

    # ------------------------------------------------------------------
    # IO path
    # ------------------------------------------------------------------
    def issue(self, record: _ThreadRecord, io: IoRequest) -> None:
        """Accept an IO from a thread into its pending pool."""
        io.issue_time = self.sim.now
        record.issued += 1
        self.tracer.record(
            self.sim.now, "os", "issue", f"{io.io_type} lpn={io.lpn} by {record.name}"
        )
        self.scheduler.add(io)
        self._dispatch()

    def _dispatch(self) -> None:
        while self.outstanding < self.max_outstanding:
            io = self.scheduler.pop(self.sim.now)
            if io is None:
                return
            io.dispatch_time = self.sim.now
            self.outstanding += 1
            if self.track_inflight:
                self._inflight[io.id] = io
            self.tracer.record(
                self.sim.now, "os", "dispatch", f"{io.io_type} lpn={io.lpn} #{io.id}"
            )
            self.controller.submit_io(io)

    def _interrupt(self, io: IoRequest) -> None:
        """Completion interrupt from the SSD."""
        self.outstanding -= 1
        if self.outstanding < 0:
            raise RuntimeError("completion interrupt without outstanding IO")
        if self._inflight:
            self._inflight.pop(io.id, None)
        if self.auditor is not None:
            self.auditor.on_completion(io)
        if self._retain_ios:
            self.completed_ios.append(io)
        self.stats.record_io(io)
        record = self._records.get(io.thread_name)
        if record is not None:
            record.completed += 1
            if record.stats is not None:
                record.stats.record_io(io)
            if not record.finished and record.context is not None:
                record.thread.on_io_completed(record.context, io)
        self._dispatch()

    # ------------------------------------------------------------------
    # Crash support (armed only when a power loss is scheduled)
    # ------------------------------------------------------------------
    def power_fail_inflight(self, ready_ns: int) -> int:
        """Fail every dispatched-but-uncompleted IO with ``POWER_FAIL``.

        Their completion events inside the device died with the power;
        real hosts see such requests time out and error once the device
        is back.  Delivery is deferred to ``ready_ns`` (device remounted)
        through OS-module events, which survive the device-event purge.
        Returns the number of failed IOs.
        """
        failed = 0
        for io_id in sorted(self._inflight):
            io = self._inflight[io_id]
            io.status = IoStatus.POWER_FAIL
            self.sim.post_at(ready_ns, self._deliver_power_fail, io)
            failed += 1
        return failed

    def _deliver_power_fail(self, io: IoRequest) -> None:
        io.complete_time = self.sim.now
        self._interrupt(io)
