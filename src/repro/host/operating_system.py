"""The operating-system layer.

Paper Section 2.2: "The Operating System manages IO requests incoming
from multiple simulated concurrent threads.  It maintains a pool of
pending IOs from each thread and decides, based on a customizable
scheduling policy, which IOs to issue next to the SSD. [...] Once the
SSD has completed executing an IO, it interrupts and notifies the OS.
The OS then activates the thread that dispatched the IO."

Also implemented here (Section 2.3):

* per-thread statistics gathering objects;
* dependencies among threads -- a thread starts only after the threads
  it depends on have finished, the paper's mechanism for bringing the
  SSD to a well-defined state before measuring.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.core.config import SimulationConfig
from repro.core.engine import Simulator
from repro.core.events import IoRequest, IoStatus, IoType, WriteHints
from repro.core.rng import RandomSource, RandomStream
from repro.core.statistics import StatisticsGatherer
from repro.core.tracing import TraceRecorder
from repro.host.interface import (
    OpenInterface,
    QueueFullError,
    install_standard_handlers,
)
from repro.host.schedulers import build_os_scheduler


class ThreadContext:
    """The handle a thread uses to talk to the operating system.

    Passed to ``on_init`` and ``on_io_completed``; provides IO issuing,
    virtual time, per-thread randomness, timers and completion.
    """

    def __init__(self, os: "OperatingSystem", record: "_ThreadRecord"):
        self._os = os
        self._record = record

    @property
    def now(self) -> int:
        """Current virtual time (nanoseconds)."""
        return self._os.sim.now

    @property
    def logical_pages(self) -> int:
        """Size of the device's logical address space, in pages."""
        return self._os.config.logical_pages

    @property
    def thread_name(self) -> str:
        return self._record.name

    def rng(self, purpose: str = "main") -> RandomStream:
        """A deterministic random stream private to this thread."""
        return self._os.rng.stream(f"thread:{self._record.name}:{purpose}")

    # ------------------------------------------------------------------
    # IO issuing
    # ------------------------------------------------------------------
    def read(self, lpn: int, hints: Optional[WriteHints] = None) -> IoRequest:
        return self._issue(IoType.READ, lpn, hints)

    def write(self, lpn: int, hints: Optional[WriteHints] = None) -> IoRequest:
        return self._issue(IoType.WRITE, lpn, hints)

    def trim(self, lpn: int, hints: Optional[WriteHints] = None) -> IoRequest:
        return self._issue(IoType.TRIM, lpn, hints)

    def _issue(self, io_type: IoType, lpn: int, hints: Optional[WriteHints]) -> IoRequest:
        if not 0 <= lpn < self.logical_pages:
            raise ValueError(
                f"lpn {lpn} outside logical space [0, {self.logical_pages})"
            )
        io = IoRequest(io_type, lpn, thread_name=self._record.name, hints=hints)
        self._os.issue(self._record, io)
        return io

    # ------------------------------------------------------------------
    # Control
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: int, fn, *args: Any) -> None:
        """Run ``fn(*args)`` after a virtual delay (think time, timers)."""
        self._os.sim.post(delay_ns, fn, *args)

    def finish(self) -> None:
        """Declare this thread done; dependent threads may now start."""
        self._os.finish_thread(self._record)

    def send_message(self, message):
        """Send an open-interface message to the SSD (see
        :mod:`repro.host.interface`)."""
        return self._os.open_interface.send(message)


class _ThreadRecord:
    """OS-side bookkeeping for one registered thread."""

    __slots__ = (
        "thread",
        "name",
        "context",
        "depends_on",
        "started",
        "finished",
        "stats",
        "issued",
        "completed",
    )

    def __init__(self, thread, depends_on: set[str], stats: Optional[StatisticsGatherer]):
        self.thread = thread
        self.name = thread.name
        self.context: Optional[ThreadContext] = None
        self.depends_on = depends_on
        self.started = False
        self.finished = False
        self.stats = stats
        self.issued = 0
        self.completed = 0


class OperatingSystem:
    """Per-thread IO pools, a pluggable OS scheduler and the queue-depth
    limit toward the device."""

    def __init__(
        self,
        sim: Simulator,
        config: SimulationConfig,
        controller,
        stats: StatisticsGatherer,
        tracer: Optional[TraceRecorder] = None,
        rng: Optional[RandomSource] = None,
    ):
        self.sim = sim
        self.config = config
        self.controller = controller
        self.stats = stats
        self.tracer = tracer if tracer is not None else TraceRecorder(enabled=False)
        self.rng = rng or RandomSource(config.seed)
        self.scheduler = build_os_scheduler(config.host)
        self.max_outstanding = config.host.max_outstanding
        self.outstanding = 0
        self.open_interface = OpenInterface(config.host.open_interface)
        install_standard_handlers(self.open_interface, controller)
        controller.on_io_complete = self._interrupt
        self._records: dict[str, _ThreadRecord] = {}
        self._started = False
        #: Completed IoRequest objects, kept only when configured.
        self.completed_ios: list[IoRequest] = []
        self._retain_ios = config.host.retain_completed_ios
        #: Crash subsystem (both set by the simulation only when a power
        #: loss is scheduled; plain no-ops otherwise).  ``_inflight``
        #: tracks dispatched-but-uncompleted IOs so a power cut can fail
        #: them; the auditor observes acknowledged writes.
        self.track_inflight = False
        self._inflight: dict[int, IoRequest] = {}
        self.auditor = None
        #: Overload layer (None when disabled, the default): host-side
        #: admission control plus the BUSY/TIMEOUT retry ladder.
        self._overload = config.overload if config.overload.enabled else None
        #: Deepest the OS pending pool has ever been.  A pure observer,
        #: tracked unconditionally: the legacy (unbounded) configuration
        #: needs it to *show* runaway queue growth in E20.
        self.os_queue_high_watermark = 0
        #: IOs rejected at host admission (pool at its bound).
        self.host_rejections = 0
        #: Retries scheduled / abandoned by the BUSY-TIMEOUT ladder.
        self.retries_scheduled = 0
        self.retries_exhausted = 0
        #: Final (post-ladder) failure deliveries, by status.
        self.busy_completions = 0
        self.timeout_completions = 0

    # ------------------------------------------------------------------
    # Thread registration and lifecycle
    # ------------------------------------------------------------------
    def add_thread(
        self,
        thread,
        depends_on: Iterable[str] = (),
        collect_stats: bool = True,
    ) -> None:
        """Register a workload thread.

        ``depends_on`` names threads that must *finish* before this one
        starts -- the preconditioning mechanism of Section 2.3.
        """
        if thread.name in self._records:
            raise ValueError(f"duplicate thread name {thread.name!r}")
        stats = StatisticsGatherer(thread.name) if collect_stats else None
        self._records[thread.name] = _ThreadRecord(thread, set(depends_on), stats)

    def start(self) -> None:
        """Kick off all threads without dependencies (at t = now).

        Dependencies may name threads registered in any order; they are
        validated here, once the full roster is known.
        """
        # simlint: disable=SIM003 -- _records is a plain dict keyed by
        # thread name; iteration follows add_thread() registration order,
        # which is part of the experiment definition.
        for record in self._records.values():
            unknown = record.depends_on - set(self._records)
            if unknown:
                raise ValueError(
                    f"unknown dependencies for {record.name!r}: {sorted(unknown)}"
                )
        self._started = True
        # simlint: disable=SIM003 -- registration order, as above.
        for record in self._records.values():
            if not record.depends_on:
                self.sim.post(0, self._start_thread, record)

    def _start_thread(self, record: _ThreadRecord) -> None:
        if record.started:
            return
        record.started = True
        record.context = ThreadContext(self, record)
        self.tracer.record(self.sim.now, "os", "thread-start", record.name)
        record.thread.on_init(record.context)

    def finish_thread(self, record: _ThreadRecord) -> None:
        if record.finished:
            return
        record.finished = True
        self.tracer.record(self.sim.now, "os", "thread-finish", record.name)
        # simlint: disable=SIM003 -- registration order, as above.
        for candidate in self._records.values():
            if candidate.started or candidate.finished:
                continue
            if all(
                self._records[name].finished for name in candidate.depends_on
            ):
                self.sim.post(0, self._start_thread, candidate)

    @property
    def all_finished(self) -> bool:
        return all(record.finished for record in self._records.values())

    def thread_stats(self, name: str) -> StatisticsGatherer:
        stats = self._records[name].stats
        if stats is None:
            raise LookupError(f"thread {name!r} has no statistics gatherer")
        return stats

    # ------------------------------------------------------------------
    # IO path
    # ------------------------------------------------------------------
    def issue(self, record: _ThreadRecord, io: IoRequest) -> None:
        """Accept an IO from a thread into its pending pool.

        With ``overload.host_queue_bound`` set, a full pool *rejects*
        the IO instead of queueing it -- an NVMe-style bounded
        submission queue.  Default: the rejected IO completes with
        ``BUSY`` (the thread observes backpressure through its normal
        completion callback); with ``strict_admission`` a
        :class:`QueueFullError` is raised synchronously instead.  Host
        rejections are final -- the retry ladder serves *device*
        pushback; a saturated host pool means the application itself
        must slow down.
        """
        io.issue_time = self.sim.now
        record.issued += 1
        self.tracer.record(
            self.sim.now, "os", "issue", f"{io.io_type} lpn={io.lpn} by {record.name}"
        )
        overload = self._overload
        if (
            overload is not None
            and overload.host_queue_bound is not None
            and len(self.scheduler) >= overload.host_queue_bound
        ):
            self.host_rejections += 1
            self.tracer.record(
                self.sim.now, "os", "reject", f"pool-full lpn={io.lpn} #{io.id}"
            )
            if overload.strict_admission:
                raise QueueFullError(
                    f"host submission pool at its bound "
                    f"({overload.host_queue_bound} pending IOs)"
                )
            io.status = IoStatus.BUSY
            self.sim.post(0, self._deliver_rejected, io)
            return
        self._enqueue(io)
        self._dispatch()

    def _enqueue(self, io: IoRequest) -> None:
        self.scheduler.add(io)
        depth = len(self.scheduler)
        if depth > self.os_queue_high_watermark:
            self.os_queue_high_watermark = depth

    def _deliver_rejected(self, io: IoRequest) -> None:
        """Complete a host-rejected IO (never dispatched)."""
        io.complete_time = self.sim.now
        self._deliver(io)

    def _dispatch(self) -> None:
        while self.outstanding < self.max_outstanding:
            io = self.scheduler.pop(self.sim.now)
            if io is None:
                return
            io.dispatch_time = self.sim.now
            self.outstanding += 1
            if self.track_inflight:
                self._inflight[io.id] = io
            self.tracer.record(
                self.sim.now, "os", "dispatch", f"{io.io_type} lpn={io.lpn} #{io.id}"
            )
            self.controller.submit_io(io)

    def _interrupt(self, io: IoRequest) -> None:
        """Completion interrupt from the SSD."""
        self.outstanding -= 1
        if self.outstanding < 0:
            raise RuntimeError("completion interrupt without outstanding IO")
        if self._inflight:
            self._inflight.pop(io.id, None)
        if self._overload is not None and self._maybe_retry(io):
            self._dispatch()
            return
        self._deliver(io)

    def _deliver(self, io: IoRequest) -> None:
        """Final delivery: statistics, audit and the thread callback."""
        if self.auditor is not None:
            self.auditor.on_completion(io)
        if self._retain_ios:
            self.completed_ios.append(io)
        if io.status is IoStatus.BUSY:
            self.busy_completions += 1
        elif io.status is IoStatus.TIMEOUT:
            self.timeout_completions += 1
        self.stats.record_io(io)
        record = self._records.get(io.thread_name)
        if record is not None:
            record.completed += 1
            if record.stats is not None:
                record.stats.record_io(io)
            if not record.finished and record.context is not None:
                record.thread.on_io_completed(record.context, io)
        self._dispatch()

    # ------------------------------------------------------------------
    # Retry ladder (overload subsystem)
    # ------------------------------------------------------------------
    def _maybe_retry(self, io: IoRequest) -> bool:
        """Arm a retry for a device BUSY/TIMEOUT completion.

        Deterministic exponential backoff, bounded by ``max_retries``
        and by the per-IO deadline budget (``io_deadline_ns`` from first
        issue).  Returns True when a retry was scheduled -- the
        completion is then consumed and the thread sees nothing until
        the IO either succeeds or fails definitively.
        """
        if io.status not in (IoStatus.BUSY, IoStatus.TIMEOUT):
            return False
        overload = self._overload
        if io.attempts >= overload.max_retries:
            if overload.max_retries > 0:
                self.retries_exhausted += 1
            return False
        delay = int(
            overload.retry_backoff_ns
            * overload.retry_backoff_multiplier ** io.attempts
        )
        if overload.io_deadline_ns is not None and io.issue_time is not None:
            if self.sim.now + delay - io.issue_time > overload.io_deadline_ns:
                self.retries_exhausted += 1
                return False
        io.attempts += 1
        self.retries_scheduled += 1
        self.tracer.record(
            self.sim.now,
            "os",
            "retry",
            f"{io.status} lpn={io.lpn} #{io.id} try={io.attempts} in {delay}ns",
        )
        self.sim.post(delay, self._retry_io, io)
        return True

    def _retry_io(self, io: IoRequest) -> None:
        """Re-submit a backed-off IO through the normal pending pool."""
        io.status = IoStatus.OK
        io.dispatch_time = None
        io.complete_time = None
        self._enqueue(io)
        self._dispatch()

    # ------------------------------------------------------------------
    # Crash support (armed only when a power loss is scheduled)
    # ------------------------------------------------------------------
    def power_fail_inflight(self, ready_ns: int) -> int:
        """Fail every dispatched-but-uncompleted IO with ``POWER_FAIL``.

        Their completion events inside the device died with the power;
        real hosts see such requests time out and error once the device
        is back.  Delivery is deferred to ``ready_ns`` (device remounted)
        through OS-module events, which survive the device-event purge.
        Returns the number of failed IOs.
        """
        failed = 0
        for io_id in sorted(self._inflight):
            io = self._inflight[io_id]
            io.status = IoStatus.POWER_FAIL
            self.sim.post_at(ready_ns, self._deliver_power_fail, io)
            failed += 1
        return failed

    def _deliver_power_fail(self, io: IoRequest) -> None:
        io.complete_time = self.sim.now
        self._interrupt(io)
