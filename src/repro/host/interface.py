"""The open OS<->SSD interface (paper Section 2.2, Open Interface).

"EagleTree takes a departure from the traditional block device interface
by basing communication between the OS and the SSD on an extensible
messaging framework that allows the operating system and SSD to
communicate as peers.  Users are able to create new types of messages
[...] conveying any amount of information or instructions."

Two mechanisms are provided:

* **Per-IO hints** -- small dictionaries attached to
  :class:`~repro.core.events.IoRequest` objects.  The standard
  vocabulary matches the paper's three examples: ``priority``,
  ``locality`` (update-locality group) and ``temperature``.  The helper
  functions below build them.  When the open interface is *disabled*
  (the classic block device), hints still travel to the device but the
  controller ignores them (``SsdController.hints_of``), exactly like
  metadata stripped at a block layer.

* **Standalone messages** -- :class:`Message` objects sent through
  :class:`OpenInterface`, dispatched to handlers registered by the SSD
  (or by user extensions).  Sending on a closed interface raises
  :class:`InterfaceClosedError` -- the demo's "red lock".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.core.events import WriteHints


class InterfaceClosedError(RuntimeError):
    """A message was sent while the interface is the plain block device."""


class QueueFullError(RuntimeError):
    """Strict admission control rejected an IO: the host submission pool
    is at its configured bound (``overload.host_queue_bound`` with
    ``overload.strict_admission``).

    Raised synchronously out of ``ThreadContext.read/write/trim`` so the
    issuing thread observes backpressure directly; the IO was never
    queued.  With ``strict_admission`` off, the same condition instead
    completes the IO with :class:`~repro.core.events.IoStatus.BUSY`.
    """


@dataclass(frozen=True)
class Message:
    """One OS->SSD (or SSD->OS) message on the open interface."""

    kind: str
    payload: dict[str, Any] = field(default_factory=dict)


def priority_hint(level: int) -> WriteHints:
    """Per-IO priority (lower is more urgent); the SSD scheduler can
    honour it when ``scheduler.use_priority_hints`` is set."""
    return {"priority": int(level)}


def locality_hint(group: int) -> WriteHints:
    """Update-locality group: pages sharing a group are expected to be
    updated together, so the SSD co-locates them in one block."""
    return {"locality": int(group)}


def temperature_hint(hot: bool) -> WriteHints:
    """Whether the written page is likely to be updated soon."""
    return {"temperature": "hot" if hot else "cold"}


class OpenInterface:
    """Extensible message bus between the OS and the SSD.

    The SSD registers handlers for the message kinds it understands;
    users may register additional kinds to prototype new protocols
    without touching the framework.
    """

    def __init__(self, enabled: bool):
        self.enabled = enabled
        self._handlers: dict[str, list[Callable[[Message], Any]]] = {}
        self.sent_messages = 0

    def register(self, kind: str, handler: Callable[[Message], Any]) -> None:
        """Subscribe ``handler`` to messages of ``kind``."""
        self._handlers.setdefault(kind, []).append(handler)

    def unregister(self, kind: str) -> None:
        """Drop every handler of ``kind`` (used when the device-side
        endpoint is replaced, e.g. at a post-crash remount)."""
        self._handlers.pop(kind, None)

    def send(self, message: Message) -> list:
        """Deliver a message to all handlers of its kind.

        Returns the handlers' return values (a protocol may use them as
        replies).  Raises :class:`InterfaceClosedError` when the
        interface is the locked block device, and ``LookupError`` when
        nobody understands the message kind (protocol error).
        """
        if not self.enabled:
            raise InterfaceClosedError(
                "the block device interface is locked; enable "
                "host.open_interface to send messages"
            )
        handlers = self._handlers.get(message.kind)
        if not handlers:
            raise LookupError(f"no handler registered for message kind {message.kind!r}")
        self.sent_messages += 1
        return [handler(message) for handler in handlers]


def install_standard_handlers(interface: OpenInterface, controller) -> None:
    """Register the SSD-side handlers for the standard message kinds.

    * ``set_temperature`` -- payload ``{"lpns": iterable, "hot": bool}``;
      feeds the HINT temperature detector.
    * ``get_statistics`` -- returns the controller's statistics summary
      (an example of SSD->OS information flow).
    """

    def set_temperature(message: Message):
        for lpn in message.payload["lpns"]:
            controller.temperature.hint(int(lpn), bool(message.payload["hot"]))

    def get_statistics(message: Message):
        return controller.stats.summary()

    interface.register("set_temperature", set_temperature)
    interface.register("get_statistics", get_statistics)
