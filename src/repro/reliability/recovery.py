"""Error handling and recovery: retries, parity rebuild, retirement.

:class:`ReliabilityManager` is the controller-resident brain of the
reliability subsystem.  The array stays dumb: it only *draws* outcomes
(through the hooks below) and reports them on the command; every
reaction -- re-issuing a read up the retry ladder, rebuilding a page
from channel parity, condemning a block after a program failure --
happens here, by intercepting the controller's command-completion
funnel.  Reactions are therefore ordinary flash commands flowing through
the ordinary scheduler queues, so error handling inflates tail latency
exactly the way it does in a real device.

Recovery hierarchy for reads::

    ECC corrects          -> CORRECTED, data served (decode latency only)
    ECC fails             -> retry ladder: re-issue the read, lower RBER
    ladder exhausted      -> parity rebuild: read the stripe's peers on
                             the other channels, XOR-reconstruct
    no parity / rebuilt   -> REBUILT, or UNCORRECTABLE (data loss,
                             reported to the host via IoStatus)

Program failures invalidate the just-written page, *condemn* the block
(the GC relocates its live pages and retires it -- reusing the normal
relocation machinery) and transparently retransmit the write to another
block.  Erase failures retire the block directly (handled in the array,
counted here).  Every runtime retirement consumes one block of the
spare pool; when more blocks have retired than the pool holds, the
device degrades to read-only mode and rejects further writes with
:class:`~repro.core.events.IoStatus.READ_ONLY` instead of corrupting or
crashing.

Parity is RAISE-style channel striping: pages at the same (lun, block,
page) position across the channels form a stripe whose XOR the
controller maintains incrementally (real devices dedicate a channel or
rotate parity; the capacity cost is out of scope here, the *rebuild
traffic* is what this models).  The tracker doubles as a consistency
oracle for ``check_invariants``.

Two modelling simplifications, both documented where they bite:

* Copyback relocations skip the read-error and program-failure draws: a
  copyback moves raw data without the controller seeing it, so real
  designs disable copyback when error rates demand status checking.
  Configurations that study program failures should disable copyback
  (the E18 benchmark does).
* Peer reads issued for a rebuild are raw array reads and skip the ECC
  draw themselves -- recursive rebuilds of rebuilds are not modelled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from repro.core.events import IoStatus, IoType
from repro.hardware.addresses import PhysicalAddress
from repro.hardware.commands import CommandKind, CommandOutcome, FlashCommand
from repro.hardware.flash import Block, PageContent
from repro.reliability.ecc import EccModel, ReadVerdict
from repro.reliability.errors import BitErrorModel

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import SsdController
    from repro.hardware.array import SsdArray

_MASK64 = (1 << 64) - 1


def pack_content(content: PageContent) -> int:
    """Pack an (lpn, version) token into one XOR-able word.

    LPNs may be negative (DFTL translation pages), so both halves are
    taken modulo 2^64 (two's complement) before packing.
    """
    lpn, version = content
    return ((lpn & _MASK64) << 64) | (version & _MASK64)


class ParityTracker:
    """Incremental XOR signature of every channel stripe.

    A stripe is the set of pages at one (lun, block, page) position
    across all channels.  The tracker is updated when pages are
    programmed and when blocks are erased; at quiescence the signatures
    must equal a from-scratch recomputation over the array (checked by
    :meth:`check`), which catches any bookkeeping drift in the
    program/erase/retirement paths.
    """

    def __init__(self) -> None:
        #: (lun, block, page) -> [xor signature, member count]
        self._stripes: dict[tuple[int, int, int], list[int]] = {}

    def on_program(self, address: PhysicalAddress, content: PageContent) -> None:
        key = (address.lun, address.block, address.page)
        entry = self._stripes.get(key)
        if entry is None:
            entry = self._stripes[key] = [0, 0]
        entry[0] ^= pack_content(content)
        entry[1] += 1

    def on_erase(self, block: Block, lun_id: int, block_id: int) -> None:
        """Remove a block's contributions; call *before* the erase wipes
        the page contents."""
        for page_index in range(block.write_pointer):
            content = block.pages[page_index].content
            if content is None:
                continue
            key = (lun_id, block_id, page_index)
            entry = self._stripes[key]
            entry[0] ^= pack_content(content)
            entry[1] -= 1
            if entry[1] == 0:
                if entry[0] != 0:
                    raise AssertionError(f"parity residue on empty stripe {key}")
                del self._stripes[key]

    def signature(self, lun_id: int, block_id: int, page_index: int) -> int:
        entry = self._stripes.get((lun_id, block_id, page_index))
        return entry[0] if entry else 0

    def resync(self, array: "SsdArray") -> None:
        """Rebuild the signatures from scratch after a crash mount.

        The incremental state died with the controller RAM; the flash
        contents (including torn and retired-block pages, which
        :meth:`on_program` always folded in) are the ground truth.
        """
        self._stripes = {}
        for (_, lun_id), lun in sorted(array.luns.items()):
            for block_id, block in enumerate(lun.blocks):
                for page_index in range(block.write_pointer):
                    content = block.pages[page_index].content
                    if content is None:
                        continue
                    entry = self._stripes.setdefault(
                        (lun_id, block_id, page_index), [0, 0]
                    )
                    entry[0] ^= pack_content(content)
                    entry[1] += 1

    def check(self, array: "SsdArray") -> None:
        """Recompute every stripe from the array and compare."""
        recomputed: dict[tuple[int, int, int], list[int]] = {}
        for (_, lun_id), lun in array.luns.items():
            for block_id, block in enumerate(lun.blocks):
                for page_index in range(block.write_pointer):
                    content = block.pages[page_index].content
                    if content is None:
                        continue
                    entry = recomputed.setdefault((lun_id, block_id, page_index), [0, 0])
                    entry[0] ^= pack_content(content)
                    entry[1] += 1
        if recomputed != self._stripes:
            extra = set(self._stripes) - set(recomputed)
            missing = set(recomputed) - set(self._stripes)
            raise AssertionError(
                f"parity tracker inconsistent with array: "
                f"{len(missing)} stripes missing, {len(extra)} stale "
                f"(e.g. {sorted(missing or extra)[:3]})"
            )


class _Rebuild:
    """One in-progress parity reconstruction of one failed read."""

    __slots__ = ("cmd", "original", "pending")

    def __init__(self, cmd: FlashCommand, original: Optional[Callable]):
        self.cmd = cmd
        self.original = original
        self.pending = 0


class ReliabilityManager:
    """Draws error outcomes and orchestrates every recovery reaction."""

    def __init__(self, controller: "SsdController"):
        self.controller = controller
        config = controller.config.reliability
        self.config = config
        self.errors = BitErrorModel(config)
        self.ecc = EccModel(config, controller.config.geometry.page_size_bytes)
        self.parity: Optional[ParityTracker] = ParityTracker() if config.parity else None
        # Dedicated streams: enabling reliability never perturbs the
        # randomness any other component observes (core/rng.py contract).
        self._read_stream = controller.rng.stream("reliability-read")
        self._program_stream = controller.rng.stream("reliability-program")
        self._erase_stream = controller.rng.stream("reliability-erase")
        # Fault-plan consumption state lives here, not on the plan, so a
        # plan can be shared by several same-seed runs.
        plan = config.fault_plan
        self._planned_erase_fails = dict(plan.erase_failures) if plan else {}
        self._planned_program_fails = dict(plan.program_failures) if plan else {}
        self._forced_reads = dict(plan.read_corruptions) if plan else {}
        self._erase_attempts: dict[tuple[int, int, int], int] = {}
        self._program_attempts: dict[tuple[int, int, int], int] = {}
        #: Command ids of raw peer reads issued for parity rebuilds.
        self._peer_reads: set[int] = set()
        self._peer_owner: dict[int, _Rebuild] = {}
        #: Failing-command id -> rebuild state.
        self._rebuilds: dict[int, _Rebuild] = {}
        self.total_spares = config.spare_blocks_per_lun * len(controller.array.luns)
        self.read_only = False
        self.read_only_entry_ns: Optional[int] = None
        # Counters surfaced through SimulationResult.summary().
        self.corrected_reads = 0
        self.uncorrectable_reads = 0
        self.read_retries = 0
        self.parity_rebuilds = 0
        self.program_fail_count = 0
        self.erase_fail_count = 0
        self.runtime_retired_blocks = 0
        self.writes_rejected = 0
        self.max_retry_index_seen = 0

    # ------------------------------------------------------------------
    # Small shared helpers
    # ------------------------------------------------------------------
    @property
    def read_decode_ns(self) -> int:
        """ECC decode latency the array adds to every read delivery."""
        return self.ecc.decode_ns

    def _note(self, kind: str, detail: str) -> None:
        now = self.controller.sim.now
        self.controller.stats.record_reliability_event(kind, now)
        self.controller.tracer.record(now, "reliability", kind, detail)

    @staticmethod
    def _block_key(address: PhysicalAddress) -> tuple[int, int, int]:
        return (address.channel, address.lun, address.block)

    def _planned_failure(
        self,
        plan: dict[tuple[int, int, int], set[int]],
        attempts: dict[tuple[int, int, int], int],
        address: PhysicalAddress,
    ) -> bool:
        """Count this attempt against the plan; True when it must fail.

        Attempt counters are only kept for blocks the plan mentions, so
        an installed plan costs nothing on unrelated blocks.
        """
        key = self._block_key(address)
        scheduled = plan.get(key)
        if not scheduled:
            return False
        attempt = attempts.get(key, 0) + 1
        attempts[key] = attempt
        return attempt in scheduled

    # ------------------------------------------------------------------
    # Array hooks: outcome draws and flash-state notifications
    # ------------------------------------------------------------------
    def read_outcome(self, cmd: FlashCommand, block: Block, now: int) -> None:
        """Draw the ECC verdict for a completed read (array hook).

        Peer reads of an ongoing rebuild are raw reads and keep SUCCESS.
        """
        if cmd.id in self._peer_reads:
            return
        if cmd.lpn is not None and self._forced_reads.get(cmd.lpn, 0) > 0:
            cmd.outcome = CommandOutcome.UNCORRECTABLE
            return
        rber = self.errors.rber(block.erase_count, max(0, now - block.last_write_ns))
        if rber <= 0.0:
            return
        verdict = self.ecc.classify(rber, cmd.retry_index, self._read_stream)
        if verdict is ReadVerdict.CORRECTED:
            cmd.outcome = CommandOutcome.CORRECTED
        elif verdict is ReadVerdict.UNCORRECTABLE:
            cmd.outcome = CommandOutcome.UNCORRECTABLE

    def program_fails(self, cmd: FlashCommand, block: Block) -> bool:
        """Draw a program-failure status for a completed program."""
        if self._planned_failure(self._planned_program_fails, self._program_attempts, cmd.address):
            self.program_fail_count += 1
            return True
        p = self.errors.program_fail_probability
        if p > 0.0 and self._program_stream.random() < p:
            self.program_fail_count += 1
            return True
        return False

    def erase_fails(self, cmd: FlashCommand, block: Block) -> bool:
        """Draw an erase-failure status for a completing erase."""
        if self._planned_failure(self._planned_erase_fails, self._erase_attempts, cmd.address):
            self.erase_fail_count += 1
            return True
        p = self.errors.erase_fail_probability
        if p > 0.0 and self._erase_stream.random() < p:
            self.erase_fail_count += 1
            return True
        return False

    def on_page_programmed(self, address: PhysicalAddress, content: PageContent) -> None:
        if self.parity is not None:
            self.parity.on_program(address, content)

    def on_block_erase(self, lun_key: tuple[int, int], block_id: int, block: Block) -> None:
        """Array hook, called just before a block's contents are wiped."""
        if self.parity is not None:
            self.parity.on_erase(block, lun_key[1], block_id)

    def on_runtime_retirement(self, lun_key: tuple[int, int], block_id: int, reason: str) -> None:
        """A block left service at runtime (erase failure, condemnation
        after a program failure, or worn past the endurance limit).
        Consumes one spare; entering deficit degrades to read-only."""
        self.runtime_retired_blocks += 1
        self._note(
            "retire",
            f"block (c{lun_key[0]},l{lun_key[1]},b{block_id}) retired: {reason} "
            f"({self.runtime_retired_blocks}/{self.total_spares} spares used)",
        )
        if not self.read_only and self.runtime_retired_blocks > self.total_spares:
            self.read_only = True
            self.read_only_entry_ns = self.controller.sim.now
            self._note(
                "read-only",
                f"spare pool exhausted after {self.runtime_retired_blocks} retirements",
            )

    # ------------------------------------------------------------------
    # Host-facing degradation
    # ------------------------------------------------------------------
    def reject_if_read_only(self, io) -> bool:
        """Controller hook: fail writes/trims once the device is
        read-only.  The IO completes back to the OS with a distinct
        status instead of silently disappearing."""
        if not self.read_only or io.io_type is IoType.READ:
            return False
        io.status = IoStatus.READ_ONLY
        self.writes_rejected += 1
        self._note("write-rejected", f"{io.io_type} lpn={io.lpn} #{io.id}")
        self.controller.complete_quick(io)
        return True

    # ------------------------------------------------------------------
    # Completion-funnel interception
    # ------------------------------------------------------------------
    def intercept_completion(self, original: Optional[Callable], cmd: FlashCommand) -> bool:
        """React to a command's outcome.

        Returns True when the manager consumed the completion: the
        original callback is deferred (a retry, rebuild or retransmitted
        program will deliver it later) and the caller must not invoke it.
        Returns False for normal delivery (possibly after mutating the
        command/IO state, e.g. marking data loss).
        """
        if cmd.kind is CommandKind.READ:
            if cmd.id in self._peer_reads:
                return False  # its own on_complete is the rebuild bookkeeping
            if cmd.outcome is CommandOutcome.CORRECTED:
                self.corrected_reads += 1
                self._note("corrected", f"{cmd.address} lpn={cmd.lpn} try={cmd.retry_index}")
                return False
            if cmd.outcome is CommandOutcome.UNCORRECTABLE:
                if cmd.retry_index < self.ecc.max_retries:
                    self._retry_read(original, cmd)
                    return True
                if self.parity is not None:
                    self._start_rebuild(original, cmd)
                    return True
                self._final_uncorrectable(cmd)
                return False
            return False
        if cmd.kind is CommandKind.PROGRAM and cmd.outcome is CommandOutcome.PROGRAM_FAIL:
            self._handle_program_fail(original, cmd)
            return True
        return False

    # ------------------------------------------------------------------
    # Read retry ladder
    # ------------------------------------------------------------------
    def _retry_read(self, original: Optional[Callable], cmd: FlashCommand) -> None:
        """Re-issue a failed read one step up the retry ladder.

        The clone keeps the source/stream/priority of the original so
        scheduling policies treat it identically (a new command *source*
        would change the FAIR policy's rotation for everyone), and it
        keeps io/context so the deferred callback resumes transparently.
        """
        retry = FlashCommand(
            CommandKind.READ,
            cmd.source,
            cmd.address,
            lpn=cmd.lpn,
            priority=cmd.priority,
            stream=cmd.stream,
            on_complete=original,
            io=cmd.io,
            context=cmd.context,
        )
        retry.retry_index = cmd.retry_index + 1
        if retry.retry_index > self.max_retry_index_seen:
            self.max_retry_index_seen = retry.retry_index
        self.read_retries += 1
        self._note("retry", f"{cmd.address} lpn={cmd.lpn} try={retry.retry_index}")
        self.controller.enqueue_command(retry)

    def _final_uncorrectable(self, cmd: FlashCommand) -> None:
        """Retries exhausted and no parity: the data is lost.  The read
        still completes (the simulator's token survives for bookkeeping)
        but the host sees the failure status."""
        self.uncorrectable_reads += 1
        self._consume_forced_read(cmd.lpn)
        if cmd.io is not None:
            cmd.io.status = IoStatus.UNCORRECTABLE
        self._note("uncorrectable", f"{cmd.address} lpn={cmd.lpn} data lost")

    def _consume_forced_read(self, lpn: Optional[int]) -> None:
        if lpn is None:
            return
        remaining = self._forced_reads.get(lpn)
        if remaining is None:
            return
        if remaining <= 1:
            del self._forced_reads[lpn]
        else:
            self._forced_reads[lpn] = remaining - 1

    # ------------------------------------------------------------------
    # Parity rebuild
    # ------------------------------------------------------------------
    def _start_rebuild(self, original: Optional[Callable], cmd: FlashCommand) -> None:
        """Reconstruct an uncorrectable page from its channel stripe.

        Issues one raw read per programmed stripe peer; the failed read
        completes (outcome REBUILT) once the last peer arrives, so the
        rebuild's latency is the peers' real queueing + service time.
        """
        rebuild = _Rebuild(cmd, original)
        address = cmd.address
        array = self.controller.array
        peers: list[PhysicalAddress] = []
        for channel in range(self.controller.config.geometry.channels):
            if channel == address.channel:
                continue
            lun = array.luns[(channel, address.lun)]
            block = lun.block(address.block)
            if address.page >= block.write_pointer:
                continue  # stripe position not programmed on this channel
            current = lun.current_command
            if (
                current is not None
                and getattr(current, "kind", None) is CommandKind.ERASE
                and current.address.block == address.block
            ):
                # The peer is mid-erase; its contribution is already
                # folded into the parity the controller holds.
                continue
            peers.append(PhysicalAddress(channel, address.lun, address.block, address.page))
        self._rebuilds[cmd.id] = rebuild
        self.parity_rebuilds += 1
        self._consume_forced_read(cmd.lpn)
        self._note(
            "rebuild",
            f"{address} lpn={cmd.lpn} from {len(peers)} stripe peers",
        )
        if not peers:
            # Degenerate stripe: the parity word alone holds the copy.
            self._finish_rebuild(rebuild)
            return
        rebuild.pending = len(peers)
        for peer_address in peers:
            peer = FlashCommand(
                CommandKind.READ,
                cmd.source,
                peer_address,
                priority=cmd.priority,
                stream=cmd.stream,
                on_complete=self._peer_read_done,
            )
            self._peer_reads.add(peer.id)
            self._peer_owner[peer.id] = rebuild
            self.controller.enqueue_command(peer)

    def _peer_read_done(self, peer: FlashCommand) -> None:
        self._peer_reads.discard(peer.id)
        rebuild = self._peer_owner.pop(peer.id)
        rebuild.pending -= 1
        if rebuild.pending == 0:
            self._finish_rebuild(rebuild)

    def _finish_rebuild(self, rebuild: _Rebuild) -> None:
        cmd = rebuild.cmd
        self._rebuilds.pop(cmd.id, None)
        cmd.outcome = CommandOutcome.REBUILT
        self._note("rebuilt", f"{cmd.address} lpn={cmd.lpn}")
        if rebuild.original is not None:
            rebuild.original(cmd)

    # ------------------------------------------------------------------
    # Program failure: condemn + retransmit
    # ------------------------------------------------------------------
    def _handle_program_fail(self, original: Optional[Callable], cmd: FlashCommand) -> None:
        """The array reported a failed program status.

        The page's content is suspect: invalidate it, condemn the block
        (GC relocates its live pages, then it retires) and retransmit
        the write to a fresh block.  The originator (FTL, GC job, write
        buffer) only ever sees the successful retransmission, exactly
        like a real controller hides program failures from the host.
        """
        address = cmd.address
        lun_key = cmd.lun_key
        lun = self.controller.array.luns[lun_key]
        lun.block(address.block).invalidate(address.page)
        self._note(
            "program-fail",
            f"{address} lpn={cmd.lpn}; condemning block b{address.block}",
        )
        self.controller.allocator.release_open_block(lun_key, address.block)
        self.controller.gc.condemn(lun_key, address.block)
        retransmit = FlashCommand(
            CommandKind.PROGRAM,
            cmd.source,
            PhysicalAddress(lun_key[0], lun_key[1], -1, -1),
            lpn=cmd.lpn,
            content=cmd.content,
            priority=cmd.priority,
            stream=cmd.stream,
            on_complete=original,
            io=cmd.io,
            context=cmd.context,
        )
        self.controller.enqueue_command(retransmit)

    # ------------------------------------------------------------------
    # Invariants (quiescent-state checks for the test suite)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        if self._rebuilds or self._peer_reads or self._peer_owner:
            raise AssertionError(
                f"{len(self._rebuilds)} rebuilds / {len(self._peer_reads)} "
                "peer reads still pending at quiescence"
            )
        if self.max_retry_index_seen > self.ecc.max_retries:
            raise AssertionError(
                f"retry index {self.max_retry_index_seen} exceeds ladder "
                f"depth {self.ecc.max_retries}"
            )
        expected_read_only = self.runtime_retired_blocks > self.total_spares
        if self.read_only != expected_read_only:
            raise AssertionError(
                f"read_only={self.read_only} but {self.runtime_retired_blocks} "
                f"retirements against {self.total_spares} spares"
            )
        if self.parity is not None:
            self.parity.check(self.controller.array)


# ----------------------------------------------------------------------
# Crash-consistent mapping persistence (PR 5)
# ----------------------------------------------------------------------
def checkpoint_flash_pages(entries: int, page_size_bytes: int) -> int:
    """Flash pages one mapping checkpoint occupies: 8 bytes per entry
    plus one root/header page (also the floor for an empty mapping)."""
    return -(-entries * 8 // page_size_bytes) + 1


class MappingJournal:
    """A battery-backed RAM journal of committed mapping changes.

    Every mapping commit (host write, relocation, merge move, trim)
    appends one fixed-size record; recovery replays records newer than
    the last checkpoint.  Capacity is bounded by the battery RAM the
    configuration grants; filling up forces an immediate checkpoint
    (scheduled at the current instant, so an in-progress commit finishes
    updating its map before the snapshot is taken).
    """

    def __init__(self, controller: "SsdController"):
        self.controller = controller
        crash = controller.config.crash
        self.capacity = crash.journal_capacity_records
        controller.memory.allocate_battery_ram(
            "mapping journal", self.capacity * crash.journal_record_bytes
        )
        #: (seq, kind, lpn, version, address); seq is monotonic across
        #: clears so replay order is global.
        self.records: list[tuple[int, str, int, int, Optional[PhysicalAddress]]] = []
        self._seq = 0
        self.total_records = 0

    def record_write(self, lpn: int, version: int, address: PhysicalAddress) -> None:
        self._append("write", lpn, version, address)

    def record_trim(self, lpn: int) -> None:
        self._append("trim", lpn, 0, None)

    def _append(
        self, kind: str, lpn: int, version: int, address: Optional[PhysicalAddress]
    ) -> None:
        self._seq += 1
        self.records.append((self._seq, kind, lpn, version, address))
        self.total_records += 1
        checkpointer = self.controller.checkpointer
        if checkpointer is not None:
            checkpointer.ensure_timer()
            if len(self.records) >= self.capacity:
                checkpointer.request_checkpoint("journal-full")

    def clear(self) -> None:
        self.records = []


class CheckpointManager:
    """Periodic synchronous snapshots of the committed mapping.

    The snapshot itself is a dictionary copy (instantaneous in virtual
    time -- real controllers stage it through RAM); its flash footprint
    is *accounted, not contended*: the MAPPING program commands are
    charged to the statistics (so runtime write amplification shows the
    checkpointing tax) without occupying flash blocks, which keeps the
    checkpoint store out of the GC/WL design space.
    """

    def __init__(self, controller: "SsdController"):
        self.controller = controller
        self.interval_ns = controller.config.crash.checkpoint_interval_ns
        #: Last persisted mapping: lpn -> (address, version).
        self.checkpoint: dict[int, tuple[PhysicalAddress, int]] = {}
        self.checkpoints_taken = 0
        self.checkpoint_pages_written = 0
        self._overflow_scheduled = False
        self._timer_running = False

    def start(self) -> None:
        self._timer_running = True
        self.controller.sim.post(self.interval_ns, self._tick)

    def ensure_timer(self) -> None:
        """Journal hook: (re)arm the periodic timer on the first commit
        after an idle stretch."""
        if not self._timer_running:
            self.start()

    def _tick(self) -> None:
        journal = self.controller.journal
        if journal is not None and not journal.records:
            # Nothing committed since the last checkpoint: the timer goes
            # idle instead of keeping the event queue alive forever; the
            # next journal append re-arms it.
            self._timer_running = False
            return
        self.checkpoint_now("periodic")
        self.controller.sim.post(self.interval_ns, self._tick)

    def request_checkpoint(self, reason: str) -> None:
        """Checkpoint at the current instant, after the in-flight commit
        chain unwinds (a synchronous snapshot from inside ``_append``
        would capture a map whose caller has not finished updating it)."""
        if self._overflow_scheduled:
            return
        self._overflow_scheduled = True
        self.controller.sim.post(0, self.checkpoint_now, reason)

    def checkpoint_now(self, reason: str) -> None:
        controller = self.controller
        self._overflow_scheduled = False
        self.checkpoint = controller.ftl.snapshot_map()
        if controller.journal is not None:
            controller.journal.clear()
        pages = checkpoint_flash_pages(
            len(self.checkpoint), controller.config.geometry.page_size_bytes
        )
        self.checkpoints_taken += 1
        self.checkpoint_pages_written += pages
        now = controller.sim.now
        for _ in range(pages):
            controller.stats.record_flash_command("MAPPING", "PROGRAM", now)
        controller.tracer.record(
            now, "crash", "checkpoint",
            f"{reason}: {len(self.checkpoint)} entries in {pages} pages",
        )

    def seed(self, mapping: dict[int, tuple[PhysicalAddress, int]]) -> None:
        """Post-mount: the recovered mapping is the new baseline (the
        mount conceptually rewrote it), with an empty journal."""
        self.checkpoint = dict(mapping)


class RecoveredState:
    """What a recovery strategy hands back to the crash coordinator."""

    __slots__ = ("mapping", "mount_ns", "scanned_pages", "replayed_records")

    def __init__(
        self,
        mapping: dict[int, tuple[PhysicalAddress, int]],
        mount_ns: int,
        scanned_pages: int,
        replayed_records: int,
    ):
        self.mapping = mapping
        self.mount_ns = mount_ns
        self.scanned_pages = scanned_pages
        self.replayed_records = replayed_records


class OobScanRecovery:
    """Full-device scan of every programmed page's OOB token.

    No mapping state needs to survive the crash at all: each programmed
    page's out-of-band area durably carries its ``(lpn, version)`` token
    plus the per-page validity mark the FTL maintained (real FTLs store
    invalidation epochs or sequence numbers there).  The winners are the
    live, non-torn pages -- exactly the committed pre-crash mapping.
    The price is mount time proportional to the device's programmed
    capacity: every page pays a read plus the OOB transfer, parallel
    across LUNs.
    """

    name = "oob_scan"

    def recover(self, controller: "SsdController") -> RecoveredState:
        config = controller.config
        timings = config.timings
        crash = config.crash
        array = controller.array
        state = array.state
        per_page_ns = (
            timings.t_cmd_ns
            + timings.t_read_ns
            + crash.oob_bytes * timings.bus_ns_per_byte
        )
        # Scan cost: every programmed page of every block (retired blocks
        # included -- a real scan cannot know a block is bad until it has
        # read it), parallel across LUNs.
        wp_per_lun = state.write_pointer.reshape(
            state.num_luns, state.blocks_per_lun
        ).sum(axis=1)
        scanned = int(wp_per_lun.sum())
        slowest_lun_ns = int(wp_per_lun.max()) * per_page_ns

        # Candidate OOB tokens: LIVE (programmed & valid), not torn, with
        # a content token carrying a non-negative (host) LPN.
        words = state.programmed & state.valid & ~state.torn & state.has_content
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")
        page_mask = bits.reshape(state.num_blocks, state.words_per_block * 64)[
            :, : state.pages_per_block
        ]
        page_mask = page_mask & (
            np.arange(state.pages_per_block) < state.write_pointer[:, None]
        )
        ppns = np.nonzero(page_mask.ravel())[0]
        lpns = state.page_lpn[ppns]
        versions = state.page_version[ppns]
        host = lpns >= 0  # FTL metadata (DFTL translation pages) is < 0
        ppns, lpns, versions = ppns[host], lpns[host], versions[host]

        mapping: dict[int, tuple[PhysicalAddress, int]] = {}
        if ppns.size:
            # Winner per LPN: highest version; the first-scanned (lowest
            # PPN) copy on a tie.  lexsort keys are least-significant
            # first: within each LPN, descending version then ascending
            # PPN, so each LPN's first row is its winner.
            order = np.lexsort((ppns, -versions, lpns))
            sorted_lpns = lpns[order]
            is_first = np.ones(sorted_lpns.size, dtype=bool)
            is_first[1:] = sorted_lpns[1:] != sorted_lpns[:-1]
            winners = order[is_first]  # aligned with ascending unique LPN
            # Dict insertion order matches the former scan: each LPN
            # appears where the scan first encountered it.
            _, first_seen = np.unique(lpns, return_index=True)
            winners = winners[np.argsort(first_seen, kind="stable")]
            decode = array.codec.decode
            for i in winners.tolist():
                mapping[int(lpns[i])] = (decode(int(ppns[i])), int(versions[i]))
        mount_ns = crash.mount_base_ns + slowest_lun_ns
        return RecoveredState(mapping, mount_ns, scanned, 0)


class CheckpointJournalRecovery:
    """Load the last mapping checkpoint, replay the battery-RAM journal.

    Mount time is the checkpoint read (proportional to the *mapping*
    size, not the device size) plus a per-record replay cost -- the
    classic trade against :class:`OobScanRecovery`: pay MAPPING program
    traffic at runtime to make mounts fast.
    """

    name = "checkpoint_journal"

    def recover(self, controller: "SsdController") -> RecoveredState:
        config = controller.config
        timings = config.timings
        crash = config.crash
        checkpointer = controller.checkpointer
        journal = controller.journal
        if checkpointer is None or journal is None:
            raise RuntimeError(
                "checkpoint_journal recovery needs an armed checkpoint manager"
            )
        mapping = dict(checkpointer.checkpoint)
        records = sorted(journal.records)
        for _seq, kind, lpn, version, address in records:
            if kind == "trim":
                mapping.pop(lpn, None)
            else:
                assert address is not None
                mapping[lpn] = (address, version)
        checkpoint_pages = checkpoint_flash_pages(
            len(checkpointer.checkpoint), config.geometry.page_size_bytes
        )
        page_ns = (
            timings.t_cmd_ns
            + timings.t_read_ns
            + timings.transfer_ns(config.geometry.page_size_bytes)
        )
        mount_ns = (
            crash.mount_base_ns
            + checkpoint_pages * page_ns
            + len(records) * crash.replay_ns_per_record
        )
        return RecoveredState(mapping, mount_ns, checkpoint_pages, len(records))
