"""Power-cycle orchestration: tear down, recover, remount, audit.

:class:`PowerCycleCoordinator` executes one full power cycle at the
instant a scheduled :class:`~repro.core.power.PowerLossEvent` fires:

1. The flash array halts: in-flight programs leave *torn* pages, channel
   and LUN occupancy clears (``SsdArray.power_loss``).
2. Every scheduled device-side event (controller, hardware, reliability
   continuations) is purged from the engine; host-side events survive
   but are later shifted past the outage + mount window.
3. Durable truth is captured: the committed mapping (for the divergence
   check), the battery-RAM journal/checkpoint, and -- battery-backed
   mode only -- the write-buffer contents.
4. The configured recovery strategy rebuilds the mapping from durable
   state alone and prices the mount (:mod:`repro.reliability.recovery`).
5. Page validity is rebuilt from the recovered mapping, fully-dead
   blocks are erased during mount, and a fresh :class:`SsdController`
   is wired around the surviving array.  Hybrid FTLs additionally
   consolidate their recovered log pool at mount time.
6. The host resumes at ``restore + mount``: its events are shifted,
   in-flight IOs complete with ``POWER_FAIL``, and the
   :class:`DurabilityAuditor` verifies that no acknowledged write was
   lost and that the recovered mapping references only intact pages.

The coordinator raises :class:`~repro.core.sanitize.SanitizerError`
unconditionally (not only in sanitize mode) when recovery diverges from
the pre-crash committed mapping or the durability audit fails: both
indicate crash-consistency bugs, never legitimate outcomes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.core.config import RecoveryStrategy
from repro.core.events import IoRequest, IoStatus, IoType
from repro.core.power import CrashStats, MountReport, PowerLossEvent
from repro.core.sanitize import SanitizerError
from repro.hardware.state import popcounts
from repro.host.interface import install_standard_handlers
from repro.reliability.recovery import (
    CheckpointJournalRecovery,
    OobScanRecovery,
    RecoveredState,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.controller.controller import SsdController
    from repro.core.simulation import Simulation
    from repro.hardware.array import SsdArray

#: Event callables whose defining module starts with one of these lose
#: power with the device; everything else is host-side and survives.
DEVICE_EVENT_PREFIXES = ("repro.controller", "repro.hardware", "repro.reliability")


def build_recovery_strategy(strategy: RecoveryStrategy):
    if strategy is RecoveryStrategy.CHECKPOINT_JOURNAL:
        return CheckpointJournalRecovery()
    return OobScanRecovery()


class DurabilityAuditor:
    """The crash-consistency contract, checked at every mount.

    Observes every completion interrupt the OS receives and maintains a
    per-LPN *floor*: the newest acknowledged write version (trims clear
    it -- an acknowledged trim discards the obligation).  After a mount
    the floor must be covered by the recovered mapping or the restored
    battery-backed buffer, and every recovered mapping entry must point
    at an intact page carrying exactly its ``(lpn, version)`` token --
    acknowledged writes are never lost, unacknowledged writes are never
    half-visible.
    """

    def __init__(self) -> None:
        #: lpn -> newest acknowledged write version.
        self.floors: dict[int, int] = {}
        self.audits_passed = 0

    def on_completion(self, io: IoRequest) -> None:
        """OS hook: called for every completion interrupt delivered."""
        if io.status is not IoStatus.OK:
            return
        if io.io_type is IoType.WRITE and io.version is not None:
            if io.version > self.floors.get(io.lpn, 0):
                self.floors[io.lpn] = io.version
        elif io.io_type is IoType.TRIM:
            self.floors.pop(io.lpn, None)

    def forgive_trim(self, lpn: int) -> None:
        """A trim was in flight when power failed: it completes with
        ``POWER_FAIL`` and its effect is legitimately indeterminate, so
        the host may no longer rely on the page's durability."""
        self.floors.pop(lpn, None)

    def audit(
        self,
        mapping: dict[int, tuple],
        restored_buffer: list[tuple[int, dict, int]],
        array: "SsdArray",
    ) -> None:
        buffered: dict[int, int] = {}
        for lpn, _hints, version in restored_buffer:
            if version > buffered.get(lpn, 0):
                buffered[lpn] = version
        for lpn in sorted(self.floors):
            floor = self.floors[lpn]
            entry = mapping.get(lpn)
            durable = entry[1] if entry is not None else 0
            durable = max(durable, buffered.get(lpn, 0))
            if durable < floor:
                raise SanitizerError(
                    "durability-audit",
                    f"acknowledged write lost across power cycle (lpn {lpn})",
                    {"lpn": lpn, "acknowledged": floor, "recovered": durable},
                )
        for lpn in sorted(mapping):
            address, version = mapping[lpn]
            block = array.luns[(address.channel, address.lun)].block(address.block)
            page = block.pages[address.page]
            if page.torn or page.content != (lpn, version):
                raise SanitizerError(
                    "durability-audit",
                    f"recovered mapping references a torn or foreign page (lpn {lpn})",
                    {
                        "lpn": lpn,
                        "address": str(address),
                        "expected": (lpn, version),
                        "found": None if page.torn else page.content,
                        "torn": page.torn,
                    },
                )
        self.audits_passed += 1


class PowerCycleCoordinator:
    """Executes scheduled power cycles for one :class:`Simulation`."""

    def __init__(self, simulation: "Simulation"):
        self.simulation = simulation
        self.auditor = DurabilityAuditor()
        self.stats = CrashStats()
        self.strategy = build_recovery_strategy(simulation.config.crash.strategy)

    # ------------------------------------------------------------------
    # The power cycle
    # ------------------------------------------------------------------
    def power_cycle(self, loss: PowerLossEvent) -> MountReport:
        from repro.controller.controller import SsdController

        simulation = self.simulation
        sim = simulation.sim
        config = simulation.config
        os = simulation.os
        old = simulation.controller
        array = old.array
        now = sim.now
        old.tracer.record(
            now, "crash", "power-loss",
            f"outage {loss.off_ns}ns, {os.outstanding} IOs in flight",
        )

        # In-flight trims complete with POWER_FAIL: their effect on the
        # durable mapping is legitimately indeterminate.
        for io_id in sorted(os._inflight):
            io = os._inflight[io_id]
            if io.io_type is IoType.TRIM:
                self.auditor.forgive_trim(io.lpn)

        # 1. The device loses power: in-flight programs tear their target
        # pages, and every scheduled device-side continuation dies.
        torn = array.power_loss()
        sim.power_cycle_purge(DEVICE_EVENT_PREFIXES, 0)

        # 2. Capture durable truth before any volatile object is dropped.
        committed = old.ftl.snapshot_map()
        issued_versions = old.ftl._issued_versions.to_dict()
        committed_versions = old.ftl._committed_versions.to_dict()
        buffer_snapshot: list[tuple[int, dict, int]] = []
        battery_backed = True
        if old.write_buffer is not None:
            battery_backed = old.write_buffer.battery_backed
            buffer_snapshot = old.write_buffer.snapshot_entries()

        # 3. Reconstruct the mapping from durable state alone (the old
        # controller still holds the battery-RAM journal/checkpoint).
        recovered = self.strategy.recover(old)
        self._check_divergence(recovered, committed, loss)

        # 4. Durable media state for the new life: page validity derived
        # from the recovered mapping, fully-dead blocks erased at mount.
        self._rebuild_validity(array, recovered.mapping)
        cleanup_erases, cleanup_ns = self._mount_cleanup(array, config)

        # 5. A fresh controller around the surviving array.
        new = SsdController(
            sim,
            config,
            rng=old.rng,
            tracer=old.tracer,
            stats=old.stats,
            existing_array=array,
            crash_armed=True,
        )
        new.ftl.rebuild_from_recovery(recovered.mapping, issued_versions, committed_versions)
        consolidation_ns, consolidation_erases = self._consolidation_cost(new, config)
        self._carry_counters(old, new)
        if new.checkpointer is not None:
            new.checkpointer.seed(recovered.mapping)
        if new.reliability is not None and new.reliability.parity is not None:
            new.reliability.parity.resync(array)

        # 6. Rebase the surviving (host-side) world past outage + mount.
        # Events the mount itself scheduled (checkpoint timer, flush
        # continuations) shift with it: "x after the mount started"
        # becomes "x after the device is ready".
        mount_ns = recovered.mount_ns + cleanup_ns + consolidation_ns
        # max() covers a loss scheduled while the device was still down
        # from the previous one: the restore then happens "now".
        ready_ns = max(loss.restore.at_ns, now) + mount_ns
        sim.power_cycle_purge((), ready_ns - now)
        sim.advance_to(ready_ns)

        # 7. Rewire the host to the remounted device.
        simulation.controller = new
        os.controller = new
        new.on_io_complete = os._interrupt
        os.open_interface.unregister("set_temperature")
        os.open_interface.unregister("get_statistics")
        install_standard_handlers(os.open_interface, new)
        lost_buffered = 0
        if battery_backed:
            if buffer_snapshot and new.write_buffer is not None:
                new.write_buffer.restore(buffer_snapshot)
        else:
            # Volatile buffer: entries whose version never reached flash
            # are gone.  None was acknowledged (volatile mode defers the
            # ack until the flush lands), so no durability promise broke.
            for lpn, _hints, version in buffer_snapshot:
                entry = recovered.mapping.get(lpn)
                if entry is None or entry[1] < version:
                    lost_buffered += 1
        os.power_fail_inflight(ready_ns)

        # 8. The contract.  Audited against the FTL's *post-mount* map:
        # hybrid log-pool consolidation may have relocated recovered
        # entries (and erased their source blocks) during the mount.
        restored = buffer_snapshot if battery_backed else []
        self.auditor.audit(new.ftl.snapshot_map(), restored, array)

        report = MountReport(
            strategy=self.strategy.name,
            loss_ns=loss.at_ns,
            restore_ns=loss.restore.at_ns,
            mount_time_ns=mount_ns,
            scanned_pages=recovered.scanned_pages,
            replayed_records=recovered.replayed_records,
            lost_writes=lost_buffered + len(torn),
            torn_pages=len(torn),
            recovered_entries=len(recovered.mapping),
            cleanup_erases=cleanup_erases + consolidation_erases,
            mapping_matches=True,
        )
        self.stats.add(report)
        new.tracer.record(
            ready_ns, "crash", "mount",
            f"{self.strategy.name}: {report.recovered_entries} entries in "
            f"{mount_ns}ns ({report.scanned_pages} pages scanned, "
            f"{report.replayed_records} records replayed, "
            f"{report.lost_writes} writes lost)",
        )
        return report

    # ------------------------------------------------------------------
    # Steps
    # ------------------------------------------------------------------
    def _check_divergence(
        self,
        recovered: RecoveredState,
        committed: dict[int, tuple],
        loss: PowerLossEvent,
    ) -> None:
        """The recovered mapping must be version-identical to the
        pre-crash committed mapping (addresses may differ only for
        entries a relocation raced -- versions never do)."""
        recovered_versions = {
            lpn: entry[1] for lpn, entry in recovered.mapping.items()
        }
        committed_only = {
            lpn: entry[1] for lpn, entry in committed.items()
        }
        if recovered_versions == committed_only:
            return
        missing = sorted(set(committed_only) - set(recovered_versions))[:5]
        extra = sorted(set(recovered_versions) - set(committed_only))[:5]
        wrong = sorted(
            lpn
            for lpn in set(recovered_versions) & set(committed_only)
            if recovered_versions[lpn] != committed_only[lpn]
        )[:5]
        raise SanitizerError(
            "crash-recovery-divergence",
            f"{self.strategy.name} recovery diverged from the committed mapping",
            {
                "loss_ns": loss.at_ns,
                "committed_entries": len(committed_only),
                "recovered_entries": len(recovered_versions),
                "missing_lpns": missing,
                "unexpected_lpns": extra,
                "version_mismatches": wrong,
            },
        )

    def _rebuild_validity(self, array: "SsdArray", mapping: dict[int, tuple]) -> None:
        """Page validity is controller metadata (OOB marks in the model):
        after recovery, exactly the pages the mapping references are
        live; every other programmed page -- superseded copies, torn
        programs, orphaned DFTL translation pages -- is dead space.

        Vectorized as a bitmap rewrite: the new ``valid`` bitmap is the
        referenced PPN set minus torn pages, with retired blocks keeping
        their (unmapped) state, and the live/dead counters recomputed as
        per-block popcounts.
        """
        state = array.state
        encode = array.codec.encode
        ref_ppns = np.fromiter(
            (
                encode(a.channel, a.lun, a.block, a.page)
                for a in (mapping[lpn][0] for lpn in sorted(mapping))
            ),
            dtype=np.int64,
            count=len(mapping),
        )
        new_valid = np.zeros_like(state.valid)
        page = ref_ppns % state.pages_per_block
        word = (ref_ppns // state.pages_per_block) * state.words_per_block + (page >> 6)
        bit = (page & np.int64(63)).astype(np.uint64)
        np.bitwise_or.at(new_valid, word, np.uint64(1) << bit)
        new_valid &= ~state.torn
        bad = state.bad != 0
        state.block_words(new_valid)[bad] = state.block_words(state.valid)[bad]
        # Remount rebuilds validity/counters wholesale from the recovered
        # mapping; this bulk overwrite *is* the recovery mutator, so the
        # leaked-view rule is waived for these three stores.
        # simlint: disable=SIM012 -- bulk state rebuild during remount
        state.valid[:] = new_valid
        live = popcounts(state.block_words(state.valid)).sum(axis=1).astype(np.int64)
        good = ~bad
        # simlint: disable=SIM012 -- bulk state rebuild during remount
        state.live_count[good] = live[good]
        state.dead_count[good] = state.write_pointer[good] - live[good]  # simlint: disable=SIM012 -- bulk rebuild

    def _mount_cleanup(self, array: "SsdArray", config) -> tuple[int, int]:
        """Erase fully-dead blocks while the device is still mounting.

        A real mount reclaims blocks whose every page is superseded (old
        DFTL translation blocks, torn tails) before accepting IO; here it
        also returns taken-but-never-programmed open blocks to the free
        pool.  Erases run parallel across LUNs, so the mount pays the
        slowest LUN's erase chain.
        """
        now = self.simulation.sim.now
        t_erase_ns = config.timings.t_erase_ns
        total = 0
        slowest_ns = 0
        for lun_key in sorted(array.luns):
            lun = array.luns[lun_key]
            lun_erases = 0
            for block_id, block in enumerate(lun.blocks):
                if block.is_bad:
                    continue
                if block.is_empty:
                    if block_id not in lun.free_block_ids:
                        # An open block the old allocator took but never
                        # programmed: already erased, just re-pool it.
                        lun.on_block_erased(block_id)
                    continue
                if block.live_count == 0:
                    block.erase(now)
                    lun.on_block_erased(block_id)
                    lun_erases += 1
            total += lun_erases
            slowest_ns = max(slowest_ns, lun_erases * t_erase_ns)
        return total, slowest_ns

    def _consolidation_cost(self, controller: "SsdController", config) -> tuple[int, int]:
        """Price the hybrid FTL's mount-time log-pool consolidation
        (serial merge stream: reads + programs + erases back to back)."""
        work: Optional[dict[str, int]] = getattr(
            controller.ftl, "mount_consolidation", None
        )
        if not work:
            return 0, 0
        timings = config.timings
        page_transfer = timings.transfer_ns(config.geometry.page_size_bytes)
        ns = (
            work["reads"] * (timings.t_cmd_ns + timings.t_read_ns + page_transfer)
            + work["programs"] * (timings.t_cmd_ns + page_transfer + timings.t_prog_ns)
            + work["erases"] * timings.t_erase_ns
        )
        return ns, work["erases"]

    def _carry_counters(self, old: "SsdController", new: "SsdController") -> None:
        """Cumulative run counters survive the crash: they describe the
        experiment, not the controller incarnation.  Everything here is
        additive (the hybrid mount consolidation already incremented some
        of the new FTL's merge counters)."""
        new.submitted_ios += old.submitted_ios
        for name in (
            "collected_blocks",
            "relocated_pages",
            "copyback_relocations",
            "balancing_jobs",
            "erase_only_reclaims",
            "idle_jobs",
            "condemned_retirements",
        ):
            setattr(new.gc, name, getattr(new.gc, name) + getattr(old.gc, name))
        for name in ("migrations_started", "migrated_pages", "total_erases"):
            setattr(
                new.wear_leveler,
                name,
                getattr(new.wear_leveler, name) + getattr(old.wear_leveler, name),
            )
        if old.write_buffer is not None and new.write_buffer is not None:
            for name in ("hits", "absorbed_rewrites", "flushed_pages"):
                setattr(
                    new.write_buffer,
                    name,
                    getattr(new.write_buffer, name) + getattr(old.write_buffer, name),
                )
        for name in (
            # DFTL
            "cmt_hits",
            "cmt_misses",
            "evictions",
            "batched_flush_entries",
            "tp_fetch_reads",
            # hybrid
            "full_merges",
            "switch_merges",
            "merged_pages",
            "filler_pages",
        ):
            if hasattr(old.ftl, name) and hasattr(new.ftl, name):
                setattr(new.ftl, name, getattr(new.ftl, name) + getattr(old.ftl, name))
        if old.journal is not None and new.journal is not None:
            new.journal.total_records += old.journal.total_records
        if old.checkpointer is not None and new.checkpointer is not None:
            new.checkpointer.checkpoints_taken += old.checkpointer.checkpoints_taken
            new.checkpointer.checkpoint_pages_written += (
                old.checkpointer.checkpoint_pages_written
            )
        if old.reliability is not None and new.reliability is not None:
            for name in (
                "corrected_reads",
                "uncorrectable_reads",
                "read_retries",
                "parity_rebuilds",
                "program_fail_count",
                "erase_fail_count",
                "runtime_retired_blocks",
                "writes_rejected",
                "max_retry_index_seen",
            ):
                setattr(
                    new.reliability,
                    name,
                    getattr(new.reliability, name) + getattr(old.reliability, name),
                )
            # Degradation state and fault-plan consumption are physical:
            # a remount does not un-retire blocks or re-arm spent faults.
            new.reliability.read_only = old.reliability.read_only
            new.reliability.read_only_entry_ns = old.reliability.read_only_entry_ns
            new.reliability._erase_attempts = dict(old.reliability._erase_attempts)
            new.reliability._program_attempts = dict(old.reliability._program_attempts)
            new.reliability._forced_reads = dict(old.reliability._forced_reads)
