"""Reliability and fault injection (new subsystem).

Full-resource SSD studies treat media reliability as a design axis on a
par with GC policy or scheduling: bit errors grow with wear and
retention, ECC strength trades read latency against lifetime, parity
striping trades capacity against data loss, and the spare-block pool
decides when a device degrades to read-only.  This package adds that
axis to the simulator:

* :mod:`repro.reliability.errors`   -- the RBER / program-fail / erase-fail
  probability model.
* :mod:`repro.reliability.ecc`      -- ECC correction threshold, decode
  latency and the read-retry ladder.
* :mod:`repro.reliability.inject`   -- deterministic fault plans for
  targeted experiments and regression tests.
* :mod:`repro.reliability.recovery` -- the manager orchestrating retries,
  parity rebuilds, block condemnation and graceful degradation, plus the
  crash-recovery strategies (OOB scan-rebuild and checkpoint+journal).
* :mod:`repro.reliability.crash`    -- the power-cycle coordinator: tear
  the device down at a scheduled power loss, remount it through a
  recovery strategy, and audit durability afterwards.

Everything is off by default (``ReliabilityConfig.enabled = False``,
no power losses in the fault plan): a default configuration runs
bit-identically to a simulator without this package.
"""

from repro.reliability.ecc import EccModel, ReadVerdict
from repro.reliability.errors import BitErrorModel
from repro.reliability.inject import FaultPlan
from repro.reliability.recovery import (
    CheckpointJournalRecovery,
    CheckpointManager,
    MappingJournal,
    OobScanRecovery,
    ParityTracker,
    RecoveredState,
    ReliabilityManager,
    checkpoint_flash_pages,
    pack_content,
)

__all__ = [
    "BitErrorModel",
    "CheckpointJournalRecovery",
    "CheckpointManager",
    "EccModel",
    "FaultPlan",
    "MappingJournal",
    "OobScanRecovery",
    "ParityTracker",
    "ReadVerdict",
    "RecoveredState",
    "ReliabilityManager",
    "checkpoint_flash_pages",
    "pack_content",
]
