"""The raw bit-error model of the flash array.

Full-resource SSD simulators (SimpleSSD, Amber) treat media errors as a
first-class design axis: the raw bit-error rate (RBER) of a NAND page
grows with the block's program/erase cycle count (wear) and with how
long the data has been sitting in the cells (retention).  This module
computes those probabilities; the draws themselves happen in
:mod:`repro.reliability.recovery` from dedicated seeded RNG streams
(:mod:`repro.core.rng`), so enabling the error model never perturbs the
randomness any other component observes.

The model is deliberately simple and fully documented so sweeps are
interpretable:

``rber(pe, age) = base * (1 + wc * (pe / pe_ref)^we) * (1 + rc * age / age_ref)``

* ``base`` -- RBER of a fresh, young page (``base_rber``);
* the wear term grows polynomially in P/E cycles, reaching ``1 + wc``
  at the reference cycle count;
* the retention term grows linearly in data age, reaching ``1 + rc``
  at the reference age.

Program and erase failures are modelled as flat per-operation
probabilities (``program_fail_probability`` / ``erase_fail_probability``);
endurance-correlated failure is already covered by the deterministic
``ChipTimings.endurance_cycles`` retirement path.
"""

from __future__ import annotations

from repro.core.config import ReliabilityConfig


class BitErrorModel:
    """Pure computation of error probabilities from block state.

    Stateless apart from the configuration, hence trivially deterministic
    and unit-testable without a simulator.
    """

    def __init__(self, config: ReliabilityConfig):
        self.config = config

    def rber(self, erase_count: int, age_ns: int) -> float:
        """Raw bit-error probability per bit for a page read.

        ``erase_count`` is the block's P/E cycle count; ``age_ns`` is the
        retention age of the data (time since the block was last
        written, a block-granularity approximation of per-page program
        time).
        """
        c = self.config
        if c.base_rber <= 0.0:
            return 0.0
        wear = 1.0
        if c.wear_coefficient > 0.0 and erase_count > 0:
            wear += c.wear_coefficient * (
                (erase_count / c.wear_reference_cycles) ** c.wear_exponent
            )
        retention = 1.0
        if c.retention_coefficient > 0.0 and age_ns > 0:
            retention += c.retention_coefficient * (age_ns / c.retention_reference_ns)
        return min(1.0, c.base_rber * wear * retention)

    @property
    def program_fail_probability(self) -> float:
        return self.config.program_fail_probability

    @property
    def erase_fail_probability(self) -> float:
        return self.config.erase_fail_probability
