"""Deterministic fault injection.

Probabilistic error rates answer "how does the design behave on
average"; targeted experiments and regression tests need the opposite:
*this* block fails *its third* erase, *that* logical page's next read is
uncorrectable.  A :class:`FaultPlan` declares such events ahead of the
run; the reliability manager consults it alongside the probabilistic
draws and keeps all consumption state itself, so one plan object can be
attached to several configurations and every same-seed run replays the
exact same failures (the integration tests assert trace-for-trace
equality of two such runs).

Plans are built fluently::

    plan = (
        FaultPlan()
        .fail_erase(channel=0, lun=0, block=3, attempt=2)
        .fail_program(channel=1, lun=0, block=7)
        .corrupt_read(lpn=42, count=2)
    )
    config.reliability.fault_plan = plan

Attempt numbers are 1-based and count the erases (or programs) *of that
block* observed while the plan is installed, not the block's lifetime
totals.
"""

from __future__ import annotations

from repro.core.power import PowerLossEvent, PowerRestoreEvent


class FaultPlan:
    """A declarative schedule of block failures and read corruptions."""

    def __init__(self) -> None:
        #: (channel, lun, block) -> 1-based erase attempts that must fail.
        self.erase_failures: dict[tuple[int, int, int], set[int]] = {}
        #: (channel, lun, block) -> 1-based program attempts that must fail.
        self.program_failures: dict[tuple[int, int, int], set[int]] = {}
        #: lpn -> number of upcoming reads forced uncorrectable.
        self.read_corruptions: dict[int, int] = {}
        #: Scheduled power losses, each paired with its restore.  Read by
        #: the simulation directly; unlike the media faults above these do
        #: NOT require ``reliability.enabled`` -- crash consistency is a
        #: property of the baseline device, not of the RAS add-ons.
        self.power_losses: list[PowerLossEvent] = []

    def canonical(self) -> dict:
        """Deterministic content description for result-cache keys
        (:mod:`repro.core.canonical`): every dict/set ordering made
        explicit, tuples flattened to lists."""
        return {
            "__type__": "FaultPlan",
            "erase_failures": [
                [list(address), sorted(attempts)]
                for address, attempts in sorted(self.erase_failures.items())
            ],
            "program_failures": [
                [list(address), sorted(attempts)]
                for address, attempts in sorted(self.program_failures.items())
            ],
            "read_corruptions": [
                [lpn, count] for lpn, count in sorted(self.read_corruptions.items())
            ],
            "power_losses": [
                [loss.at_ns, loss.restore.at_ns] for loss in self.power_losses
            ],
        }

    # ------------------------------------------------------------------
    # Builders (fluent)
    # ------------------------------------------------------------------
    def fail_erase(self, channel: int, lun: int, block: int, attempt: int = 1) -> "FaultPlan":
        """Make the ``attempt``-th erase of block ``(channel,lun,block)``
        report an erase failure (the block retires on the spot)."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        self.erase_failures.setdefault((channel, lun, block), set()).add(attempt)
        return self

    def fail_program(self, channel: int, lun: int, block: int, attempt: int = 1) -> "FaultPlan":
        """Make the ``attempt``-th program landing on block
        ``(channel,lun,block)`` report a program failure (the page is
        retransmitted elsewhere and the block is condemned)."""
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        self.program_failures.setdefault((channel, lun, block), set()).add(attempt)
        return self

    def corrupt_read(self, lpn: int, count: int = 1) -> "FaultPlan":
        """Force the next ``count`` logical reads of ``lpn`` to be
        uncorrectable.  The mark persists through the retry ladder (every
        retry of the same logical read stays uncorrectable) and is
        consumed when the read finally resolves -- by parity rebuild if
        parity is enabled, otherwise as data loss."""
        if count < 1:
            raise ValueError("count must be >= 1")
        self.read_corruptions[lpn] = self.read_corruptions.get(lpn, 0) + count
        return self

    def power_loss(self, at_ns: int, off_ns: int = 1_000_000) -> "FaultPlan":
        """Cut device power at virtual time ``at_ns``; power returns
        ``off_ns`` later and the device remounts (recovery strategy and
        cost from ``config.crash``).  Multiple losses may be scheduled;
        they are processed in time order."""
        if at_ns < 0:
            raise ValueError("power loss time must be >= 0")
        if off_ns <= 0:
            raise ValueError("outage duration must be positive")
        restore = PowerRestoreEvent(at_ns=at_ns + off_ns)
        self.power_losses.append(PowerLossEvent(at_ns=at_ns, restore=restore))
        return self

    @property
    def is_empty(self) -> bool:
        return not (
            self.erase_failures
            or self.program_failures
            or self.read_corruptions
            or self.power_losses
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(erase={len(self.erase_failures)}, "
            f"program={len(self.program_failures)}, "
            f"reads={len(self.read_corruptions)}, "
            f"power_losses={len(self.power_losses)})"
        )
