"""ECC and the read-retry ladder.

Each flash page is protected by an error-correcting code that corrects
up to ``ecc_correctable_bits`` bit errors.  A read with more errors than
the budget is not immediately lost: real controllers walk a *read-retry
ladder*, re-issuing the read with shifted sensing voltages; each step is
slower (it goes back through the scheduler queues and pays the full
array read again) but sees a lower effective RBER, modelled here by the
``retry_rber_scale`` multiplier per step.

The number of bit errors in a page of ``n`` bits at raw bit-error rate
``p`` is Binomial(n, p); for the regimes that matter (n in the tens of
thousands, p well below 1e-2) the Poisson approximation with
``lambda = n * p`` is accurate and cheap, and -- unlike a per-bit draw --
costs a *single* uniform per read, which keeps the RNG stream usage
independent of page size.

Decode latency scales with code strength (``ecc_decode_ns_per_bit`` per
correctable bit): a stronger code protects longer-lived, more-worn data
but taxes every single read.  That is the mean-latency-vs-lifetime
trade-off experiment E18 sweeps.
"""

from __future__ import annotations

import enum
import math

from repro.core.config import ReliabilityConfig
from repro.core.rng import RandomStream


class ReadVerdict(enum.Enum):
    """ECC's judgement of one read attempt."""

    CLEAN = "clean"  # zero bit errors
    CORRECTED = "corrected"  # errors within the correction budget
    UNCORRECTABLE = "uncorrectable"  # errors exceed the budget


class EccModel:
    """Codeword correction threshold, retry scaling and decode cost."""

    def __init__(self, config: ReliabilityConfig, page_size_bytes: int):
        self.config = config
        self.page_bits = page_size_bytes * 8

    @property
    def correctable_bits(self) -> int:
        return self.config.ecc_correctable_bits

    @property
    def decode_ns(self) -> int:
        """Decode latency added to every read attempt."""
        return self.config.ecc_correctable_bits * self.config.ecc_decode_ns_per_bit

    @property
    def max_retries(self) -> int:
        return self.config.max_read_retries

    def effective_rber(self, rber: float, retry_index: int) -> float:
        """RBER seen by the ``retry_index``-th attempt of a read."""
        if retry_index <= 0:
            return rber
        return rber * (self.config.retry_rber_scale**retry_index)

    # ------------------------------------------------------------------
    # Probability helpers (Poisson approximation of Binomial(n, p))
    # ------------------------------------------------------------------
    def p_clean(self, rber: float) -> float:
        """Probability of zero bit errors in the page."""
        lam = self.page_bits * rber
        if lam <= 0.0:
            return 1.0
        return math.exp(-lam)

    def p_correctable(self, rber: float) -> float:
        """Probability of at most ``correctable_bits`` errors."""
        lam = self.page_bits * rber
        if lam <= 0.0:
            return 1.0
        try:
            base = math.exp(-lam)
        except OverflowError:  # pragma: no cover - enormous lambda
            return 0.0
        total = 0.0
        term = base
        for k in range(self.correctable_bits + 1):
            if k > 0:
                term *= lam / k
            total += term
        return min(1.0, total)

    def classify(self, rber: float, retry_index: int, stream: RandomStream) -> ReadVerdict:
        """Draw the ECC outcome of one read attempt.

        A single uniform draw is compared against the cumulative
        probabilities of "no errors" and "correctable errors"; the RNG
        cost is therefore one draw per read attempt regardless of page
        size or error count.
        """
        p = self.effective_rber(rber, retry_index)
        if p <= 0.0:
            return ReadVerdict.CLEAN
        u = stream.random()
        clean = self.p_clean(p)
        if u < clean:
            return ReadVerdict.CLEAN
        if u < self.p_correctable(p):
            return ReadVerdict.CORRECTED
        return ReadVerdict.UNCORRECTABLE
