"""Documentation consistency checks.

DESIGN.md promises a bench per experiment and a module per subsystem;
these tests keep the documents honest as the code evolves.
"""

import os
import re
import subprocess
import sys

import pytest

ROOT = os.path.join(os.path.dirname(__file__), os.pardir)


def _read(name):
    with open(os.path.join(ROOT, name)) as handle:
        return handle.read()


class TestDesignDocument:
    def test_every_indexed_bench_file_exists(self):
        design = _read("DESIGN.md")
        benches = re.findall(r"`benchmarks/(test_e\d+\w*\.py)`", design)
        assert benches, "DESIGN.md lost its experiment index"
        for bench in benches:
            assert os.path.exists(os.path.join(ROOT, "benchmarks", bench)), bench

    def test_every_indexed_module_importable(self):
        design = _read("DESIGN.md")
        modules = set(re.findall(r"`(repro\.[a-z_.]+)`", design))
        assert modules
        import importlib

        for module in modules:
            importlib.import_module(module)

    def test_experiments_document_covers_every_bench(self):
        experiments = _read("EXPERIMENTS.md")
        bench_files = sorted(
            name
            for name in os.listdir(os.path.join(ROOT, "benchmarks"))
            if re.match(r"test_e\d+", name)
        )
        for name in bench_files:
            experiment_id = re.match(r"test_e(\d+)", name).group(1)
            assert f"E{int(experiment_id)} " in experiments or (
                f"E{int(experiment_id)}" in experiments
            ), f"EXPERIMENTS.md missing E{int(experiment_id)} ({name})"

    def test_readme_mentions_all_entry_points(self):
        readme = _read("README.md")
        for needle in ("pytest benchmarks/", "pytest tests/", "examples/quickstart.py"):
            assert needle in readme


class TestMainModule:
    def test_python_dash_m_repro_runs(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--ops", "400", "--channels", "2"],
            capture_output=True,
            text=True,
            timeout=240,
        )
        assert proc.returncode == 0, proc.stderr
        assert "throughput" in proc.stdout

    def test_help_lists_knobs(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--help"],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0
        assert "--ftl" in proc.stdout
