"""Tests for the write allocator."""


from repro.core.config import AllocationPolicy, TemperatureDetector
from repro.hardware.addresses import PhysicalAddress
from repro.hardware.commands import CommandKind, CommandSource, FlashCommand

from tests.controller.conftest import make_harness


def alloc_harness(policy=AllocationPolicy.ROUND_ROBIN, mutate=None):
    def apply(config):
        config.controller.allocation = policy
        if mutate is not None:
            mutate(config)

    return make_harness(apply)


def _program(lun, stream="app"):
    return FlashCommand(
        CommandKind.PROGRAM,
        CommandSource.APPLICATION,
        PhysicalAddress(lun[0], lun[1], -1, -1),
        content=(0, 1),
        stream=stream,
    )


class TestPlacement:
    def test_round_robin_rotates(self):
        harness = alloc_harness(AllocationPolicy.ROUND_ROBIN)
        allocator = harness.controller.allocator
        picks = [allocator.place_write(lpn, {})[0] for lpn in range(4)]
        assert len(set(picks)) == 4  # all four LUNs visited

    def test_stripe_is_deterministic_in_lpn(self):
        harness = alloc_harness(AllocationPolicy.STRIPE)
        allocator = harness.controller.allocator
        assert allocator.place_write(0, {})[0] == allocator.place_write(4, {})[0]
        assert allocator.place_write(1, {})[0] != allocator.place_write(2, {})[0]

    def test_least_queued_prefers_idle_lun(self):
        harness = alloc_harness(AllocationPolicy.LEAST_QUEUED)
        # Load one LUN's queue artificially.
        busy_key = (0, 0)
        harness.controller.scheduler.queues[busy_key].extend(
            _program(busy_key) for _ in range(5)
        )
        picked, _ = harness.controller.allocator.place_write(0, {})
        assert picked != busy_key

    def test_temperature_policy_splits_streams(self):
        harness = alloc_harness(
            AllocationPolicy.TEMPERATURE,
            mutate=lambda c: setattr(
                c.controller.temperature, "detector", TemperatureDetector.HINT
            ),
        )
        harness.controller.temperature.hint(5, hot=True)
        _, hot_stream = harness.controller.allocator.place_write(5, {})
        _, cold_stream = harness.controller.allocator.place_write(6, {})
        assert hot_stream == "app_hot"
        assert cold_stream == "app_cold"

    def test_locality_policy_groups_by_hint(self):
        harness = alloc_harness(AllocationPolicy.LOCALITY)
        allocator = harness.controller.allocator
        lun_a, stream_a = allocator.place_write(1, {"locality": 3})
        lun_b, stream_b = allocator.place_write(99, {"locality": 3})
        assert (lun_a, stream_a) == (lun_b, stream_b)
        lun_c, _ = allocator.place_write(5, {"locality": 4})
        assert lun_c != lun_a

    def test_locality_without_hint_falls_back(self):
        harness = alloc_harness(AllocationPolicy.LOCALITY)
        _, stream = harness.controller.allocator.place_write(1, {})
        assert stream == "app"


class TestBinding:
    def test_bind_assigns_sequential_pages(self, harness):
        allocator = harness.controller.allocator
        first = allocator.bind_program(_program((0, 0)))
        harness.controller.array.luns[(0, 0)].block(first.block).program_next((0, 1), 0)
        second = allocator.bind_program(_program((0, 0)))
        assert second.block == first.block
        assert second.page == first.page + 1

    def test_streams_use_separate_open_blocks(self, harness):
        allocator = harness.controller.allocator
        app = allocator.bind_program(_program((0, 0), stream="app"))
        gc = allocator.bind_program(_program((0, 0), stream="gc"))
        assert app.block != gc.block

    def test_bind_opens_new_block_when_full(self, harness):
        allocator = harness.controller.allocator
        lun = harness.controller.array.luns[(0, 0)]
        pages = harness.config.geometry.pages_per_block
        addresses = []
        for i in range(pages + 1):
            address = allocator.bind_program(_program((0, 0)))
            lun.block(address.block).program_next((i, 1), 0)
            addresses.append(address)
        assert addresses[-1].block != addresses[0].block
        assert addresses[-1].page == 0

    def test_reserve_blocks_protected_from_app(self, harness):
        allocator = harness.controller.allocator
        lun = harness.controller.array.luns[(0, 0)]
        # Drain free blocks down to the reserve.
        while len(lun.free_block_ids) > allocator.gc_reserve:
            block_id = min(lun.free_block_ids)
            lun.take_free_block(block_id)
        app = _program((0, 0), stream="app")
        gc = _program((0, 0), stream="gc")
        assert not allocator.can_bind(app)
        assert allocator.can_bind(gc)

    def test_free_block_taken_callback_fires(self, harness):
        taken = []
        allocator = harness.controller.allocator
        allocator.on_free_block_taken = taken.append
        address = allocator.bind_program(_program((0, 0)))
        assert taken == [(0, 0)]
        assert address.block not in harness.controller.array.luns[(0, 0)].free_block_ids

    def test_note_erased_clears_stale_registration(self, harness):
        allocator = harness.controller.allocator
        address = allocator.bind_program(_program((0, 0)))
        assert allocator.open_blocks  # registered
        allocator.note_erased((0, 0), address.block)
        assert not any(
            block == address.block for (key, _), block in allocator.open_blocks.items()
            if key == (0, 0)
        )


class TestDynamicWearLeveling:
    def test_hot_stream_gets_young_block_cold_gets_old(self, harness):
        allocator = harness.controller.allocator
        lun = harness.controller.array.luns[(0, 0)]
        lun.block(3).erase_count = 10
        lun.block(4).erase_count = 0
        hot = allocator.bind_program(_program((0, 0), stream="app_hot"))
        cold = allocator.bind_program(_program((0, 0), stream="app_cold"))
        assert lun.block(hot.block).erase_count == 0
        assert cold.block == 3

    def test_dynamic_wl_disabled_uses_lowest_id(self):
        harness = alloc_harness(
            mutate=lambda c: setattr(c.controller.wear_leveling, "dynamic", False)
        )
        allocator = harness.controller.allocator
        lun = harness.controller.array.luns[(0, 0)]
        lun.block(0).erase_count = 99  # would repel a hot stream under dynamic WL
        hot = allocator.bind_program(_program((0, 0), stream="app_hot"))
        assert hot.block == 0  # lowest id wins regardless of age


class TestOpenBlockIntrospection:
    def test_full_open_blocks_not_reported(self, harness):
        allocator = harness.controller.allocator
        lun = harness.controller.array.luns[(0, 0)]
        address = allocator.bind_program(_program((0, 0)))
        block = lun.block(address.block)
        assert address.block in allocator.open_block_ids((0, 0))
        for i in range(harness.config.geometry.pages_per_block):
            block.program_next((i, 1), 0)
        assert address.block not in allocator.open_block_ids((0, 0))


class TestPlaceInternal:
    def test_exclude_skips_lun(self, harness):
        allocator = harness.controller.allocator
        for _ in range(20):
            picked = allocator.place_internal("rebalance", exclude=(0, 0))
            assert picked != (0, 0)

    def test_rotates_over_remaining_luns(self, harness):
        allocator = harness.controller.allocator
        picks = {allocator.place_internal("map") for _ in range(8)}
        assert len(picks) == 4  # all LUNs visited


class TestExplicitBlockBinding:
    """The hybrid FTL's block-bound programs."""

    def _explicit(self, lun, block):
        from repro.hardware.addresses import PhysicalAddress
        from repro.hardware.commands import CommandKind, CommandSource, FlashCommand

        return FlashCommand(
            CommandKind.PROGRAM,
            CommandSource.APPLICATION,
            PhysicalAddress(lun[0], lun[1], block, -1),
            content=(0, 1),
        )

    def test_bind_returns_next_page_of_designated_block(self, harness):
        allocator = harness.controller.allocator
        lun = harness.controller.array.luns[(0, 0)]
        lun.take_free_block(3)
        cmd = self._explicit((0, 0), 3)
        assert allocator.can_bind(cmd)
        address = allocator.bind_program(cmd)
        assert (address.block, address.page) == (3, 0)
        lun.block(3).program_next((0, 1), 0)
        assert allocator.bind_program(self._explicit((0, 0), 3)).page == 1

    def test_full_designated_block_not_bindable(self, harness):
        allocator = harness.controller.allocator
        lun = harness.controller.array.luns[(0, 0)]
        lun.take_free_block(3)
        block = lun.block(3)
        for i in range(harness.config.geometry.pages_per_block):
            block.program_next((i, 1), 0)
        assert not allocator.can_bind(self._explicit((0, 0), 3))


class TestGcStreamFallback:
    def test_gc_bind_falls_back_to_sibling_open_block(self, harness):
        from repro.hardware.addresses import PhysicalAddress
        from repro.hardware.commands import CommandKind, CommandSource, FlashCommand

        allocator = harness.controller.allocator
        lun = harness.controller.array.luns[(0, 0)]
        # Drain every free block so no new gc block can open.
        gc_cmd = FlashCommand(
            CommandKind.PROGRAM,
            CommandSource.GC,
            PhysicalAddress(0, 0, -1, -1),
            content=(0, 1),
            stream="gc",
        )
        first = allocator.bind_program(gc_cmd)  # opens the gc block
        lun.block(first.block).program_next((0, 1), 0)
        while lun.free_block_ids:
            lun.take_free_block(min(lun.free_block_ids))
        # gc_cold cannot open a new block but must spill into gc's.
        cold_cmd = FlashCommand(
            CommandKind.PROGRAM,
            CommandSource.GC,
            PhysicalAddress(0, 0, -1, -1),
            content=(1, 1),
            stream="gc_cold",
        )
        assert allocator.can_bind(cold_cmd)
        address = allocator.bind_program(cold_cmd)
        assert address.block == first.block
