"""Tests for DFTL: cached mapping table, translation pages, evictions."""


from repro.core.config import FtlKind

from tests.controller.conftest import ControllerHarness, make_harness


def dftl_harness(cmt_entries=64, batch=True, mutate=None) -> ControllerHarness:
    def apply(config):
        config.controller.ftl = FtlKind.DFTL
        config.controller.dftl.cmt_entries = cmt_entries
        config.controller.dftl.batch_eviction = batch
        if mutate is not None:
            mutate(config)

    return make_harness(apply)


class TestBasicMapping:
    def test_read_your_write(self):
        harness = dftl_harness()
        harness.write_sync(5)
        assert harness.read_sync(5).data == (5, 1)

    def test_overwrite_returns_latest(self):
        harness = dftl_harness()
        for _ in range(4):
            harness.write_sync(11)
        assert harness.read_sync(11).data == (11, 4)

    def test_unmapped_read(self):
        harness = dftl_harness()
        assert harness.read_sync(30).data is None

    def test_trim(self):
        harness = dftl_harness()
        harness.write_sync(8)
        harness.trim(8)
        harness.run()
        assert harness.read_sync(8).data is None
        harness.controller.check_invariants()


class TestCmtBehaviour:
    def test_hits_and_misses_counted(self):
        harness = dftl_harness(cmt_entries=64)
        harness.write_sync(1)  # miss (first touch)
        harness.read_sync(1)   # hit
        ftl = harness.controller.ftl
        assert ftl.cmt_misses >= 1
        assert ftl.cmt_hits >= 1
        assert 0.0 < ftl.hit_ratio() < 1.0

    def test_capacity_never_exceeded(self):
        harness = dftl_harness(cmt_entries=8)
        for lpn in range(64):
            harness.write_sync(lpn)
        assert len(harness.controller.ftl.cmt) <= 8

    def test_eviction_of_dirty_entry_writes_translation_page(self):
        harness = dftl_harness(cmt_entries=4)
        for lpn in range(32):
            harness.write_sync(lpn)
        mapping_programs = harness.controller.stats.flash_commands.get(
            ("MAPPING", "PROGRAM"), 0
        )
        assert mapping_programs > 0
        assert harness.controller.ftl.evictions > 0

    def test_miss_on_persisted_entry_reads_translation_page(self):
        harness = dftl_harness(cmt_entries=4)
        # Fill enough lpns that lpn 0's entry is evicted and persisted.
        for lpn in range(32):
            harness.write_sync(lpn)
        before = harness.controller.stats.flash_commands.get(("MAPPING", "READ"), 0)
        assert harness.read_sync(0).data == (0, 1)
        after = harness.controller.stats.flash_commands.get(("MAPPING", "READ"), 0)
        assert after > before

    def test_small_cmt_slower_than_page_resident_behaviour(self):
        """More mapping traffic with a tiny CMT than with a huge one."""
        def traffic(cmt_entries):
            harness = dftl_harness(cmt_entries=cmt_entries)
            for lpn in range(0, 128):
                harness.write_sync(lpn)
            flash = harness.controller.stats.flash_commands
            return sum(c for (src, _), c in flash.items() if src == "MAPPING")

        assert traffic(4) > traffic(1024)

    def test_batch_eviction_flushes_siblings(self):
        harness = dftl_harness(cmt_entries=4, batch=True)
        # LPNs 0..3 share a translation page (entries_per_tp >> 4).
        for lpn in range(4):
            harness.write_sync(lpn)
        harness.write_sync(500)  # evicts lpn 0, batching 1..3 with it
        assert harness.controller.ftl.batched_flush_entries > 0

    def test_concurrent_misses_coalesce(self):
        harness = dftl_harness(cmt_entries=4)
        for lpn in range(32):
            harness.write_sync(lpn)
        ftl = harness.controller.ftl
        before = ftl.tp_fetch_reads
        # lpns 0 and 1 share a translation page and are both evicted now.
        harness.read(0)
        harness.read(1)
        harness.run()
        assert ftl.tp_fetch_reads - before == 1  # one fetch, two misses


class TestRamAccounting:
    def test_gtd_and_cmt_charged(self):
        harness = dftl_harness(cmt_entries=16)
        allocations = harness.controller.memory.ram.allocations
        assert "dftl gtd" in allocations
        assert allocations["dftl cmt"] == 16 * 8

    def test_cmt_derived_from_ram_budget_when_unset(self):
        harness = dftl_harness(cmt_entries=None)
        ftl = harness.controller.ftl
        assert ftl.cmt_capacity == harness.config.logical_pages  # capped

    def test_derived_cmt_respects_small_ram(self):
        harness = dftl_harness(
            cmt_entries=None,
            mutate=lambda c: setattr(c.controller, "ram_bytes", 4096),
        )
        ftl = harness.controller.ftl
        assert 1 <= ftl.cmt_capacity < harness.config.logical_pages


class TestGcInteraction:
    def test_sustained_overwrites_preserve_data_under_gc(self):
        harness = dftl_harness(cmt_entries=32)
        rng_lpns = [(i * 37) % harness.config.logical_pages for i in range(3000)]
        writes_per_lpn = {}
        for lpn in rng_lpns:
            harness.write(lpn)
            writes_per_lpn[lpn] = writes_per_lpn.get(lpn, 0) + 1
        harness.run()
        harness.controller.check_invariants()
        assert harness.controller.gc.collected_blocks > 0
        for lpn in list(writes_per_lpn)[:20]:
            assert harness.read_sync(lpn).data == (lpn, writes_per_lpn[lpn])

    def test_translation_pages_survive_gc(self):
        harness = dftl_harness(cmt_entries=4)
        for round_ in range(6):
            for lpn in range(0, harness.config.logical_pages, 3):
                harness.write(lpn)
            harness.run()
        harness.controller.check_invariants()
        # Mapping still resolves everywhere after heavy GC + TP traffic.
        assert harness.read_sync(0).data == (0, 6)
