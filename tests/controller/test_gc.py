"""Tests for the garbage collector."""

import pytest

from repro.core.config import GcVictimPolicy

from tests.controller.conftest import ControllerHarness, make_harness


def gc_harness(greediness=2, policy=GcVictimPolicy.GREEDY, copyback=True, mutate=None):
    def apply(config):
        config.controller.gc_greediness = greediness
        config.controller.gc_victim_policy = policy
        config.controller.enable_copyback = copyback
        if mutate is not None:
            mutate(config)

    return make_harness(apply)


def overwrite_workload(harness: ControllerHarness, rounds=4, stride=2):
    """Fill the logical space, then overwrite every ``stride``-th page
    for ``rounds`` rounds.  ``stride > 1`` leaves live pages interleaved
    with dead ones, so GC victims carry live data to relocate."""
    for lpn in range(harness.config.logical_pages):
        harness.write(lpn)
    harness.run()
    for round_ in range(rounds):
        for lpn in range(0, harness.config.logical_pages, stride):
            harness.write(lpn)
        harness.run()


class TestTriggering:
    def test_no_gc_without_pressure(self, harness):
        for lpn in range(32):
            harness.write(lpn)
        harness.run()
        assert harness.controller.gc.collected_blocks == 0

    def test_sustained_overwrites_trigger_gc(self):
        harness = gc_harness()
        overwrite_workload(harness, rounds=3)
        assert harness.controller.gc.collected_blocks > 0
        harness.controller.check_invariants()

    def test_watermark_restored_at_quiescence(self):
        harness = gc_harness(greediness=3)
        overwrite_workload(harness, rounds=3)
        for lun_key, lun in harness.controller.array.luns.items():
            if len(lun.free_block_ids) >= 3:
                continue
            # Below the watermark is acceptable only when nothing is
            # reclaimable: every dead page sits in an open block.
            open_blocks = harness.controller.allocator.open_block_ids(lun_key)
            for block_id, block in enumerate(lun.blocks):
                if block_id not in open_blocks:
                    assert block.dead_count == 0, (lun_key, block_id)

    def test_higher_greediness_costs_write_amplification(self):
        """The paper's GC trade-off: collecting early (high greediness)
        means victims still hold live pages, so relocation work -- and
        hence write amplification -- is at least that of lazy GC."""
        eager = gc_harness(greediness=4)
        lazy = gc_harness(greediness=1)
        overwrite_workload(eager, rounds=3)
        overwrite_workload(lazy, rounds=3)
        assert (
            eager.controller.stats.write_amplification()
            >= lazy.controller.stats.write_amplification()
        )

    def test_one_job_per_lun(self):
        harness = gc_harness()
        overwrite_workload(harness, rounds=2)
        # The invariant is structural: the dict is keyed by LUN, so at
        # most one job per LUN can ever exist.
        assert set(harness.controller.gc.active_jobs) <= set(harness.controller.array.luns)


class TestDataPreservation:
    def test_gc_preserves_every_mapping(self):
        harness = gc_harness()
        versions = {}
        for round_ in range(4):
            for lpn in range(harness.config.logical_pages):
                harness.write(lpn)
                versions[lpn] = versions.get(lpn, 0) + 1
            harness.run()
        assert harness.controller.gc.collected_blocks > 0
        harness.controller.check_invariants()
        for lpn in range(0, harness.config.logical_pages, 97):
            assert harness.read_sync(lpn).data == (lpn, versions[lpn])

    def test_gc_with_concurrent_reads(self):
        harness = gc_harness()
        for lpn in range(harness.config.logical_pages):
            harness.write(lpn)
        harness.run()
        # Interleave overwrites and reads without draining in between.
        for round_ in range(3):
            for lpn in range(0, harness.config.logical_pages, 2):
                harness.write(lpn)
                harness.read((lpn + 1) % harness.config.logical_pages)
        harness.run()
        harness.controller.check_invariants()
        reads = [io for io in harness.completed if io.is_read]
        for io in reads:
            assert io.data is not None
            assert io.data[0] == io.lpn


class TestCopyback:
    def test_copyback_used_when_enabled(self):
        harness = gc_harness(copyback=True)
        overwrite_workload(harness, rounds=3)
        assert harness.controller.gc.copyback_relocations > 0
        flash = harness.controller.stats.flash_commands
        assert flash.get(("GC", "COPYBACK"), 0) > 0
        # Same-LUN relocations all use copyback; any GC read+program
        # pairs stem from cross-LUN rebalancing evictions only.
        assert flash.get(("GC", "PROGRAM"), 0) == flash.get(("GC", "READ"), 0)

    def test_read_program_used_when_disabled(self):
        harness = gc_harness(copyback=False)
        overwrite_workload(harness, rounds=3)
        flash = harness.controller.stats.flash_commands
        assert flash.get(("GC", "COPYBACK"), 0) == 0
        assert flash.get(("GC", "READ"), 0) > 0
        assert flash.get(("GC", "PROGRAM"), 0) > 0

    def test_chip_without_copyback_support_forces_read_program(self):
        harness = gc_harness(
            copyback=True,
            mutate=lambda c: setattr(c.timings, "supports_copyback", False),
        )
        overwrite_workload(harness, rounds=3)
        assert harness.controller.stats.flash_commands.get(("GC", "COPYBACK"), 0) == 0


class TestVictimPolicies:
    @pytest.mark.parametrize("policy", list(GcVictimPolicy))
    def test_every_policy_completes_and_preserves(self, policy):
        harness = gc_harness(policy=policy)
        overwrite_workload(harness, rounds=3)
        harness.controller.check_invariants()
        assert harness.controller.gc.collected_blocks > 0

    def test_greedy_beats_random_on_write_amplification(self):
        def uniform_overwrites(harness, count=4000):
            """Random overwrites leave blocks with varied liveness --
            exactly where victim choice matters."""
            pages = harness.config.logical_pages
            for lpn in range(pages):
                harness.write(lpn)
            harness.run()
            for step in range(count):
                harness.write((step * 1103515245 + 12345) % pages)
            harness.run()

        greedy = gc_harness(policy=GcVictimPolicy.GREEDY)
        random_ = gc_harness(policy=GcVictimPolicy.RANDOM)
        uniform_overwrites(greedy)
        uniform_overwrites(random_)
        assert (
            greedy.controller.stats.write_amplification()
            < random_.controller.stats.write_amplification()
        )


class TestRebalancing:
    def test_stripe_hotspot_rebalances_instead_of_deadlocking(self):
        """All writes hammer LPNs that stripe onto one LUN while that
        LUN also holds cold data: rebalancing must keep things moving."""
        from repro.core.config import AllocationPolicy

        harness = gc_harness(
            mutate=lambda c: setattr(c.controller, "allocation", AllocationPolicy.STRIPE)
        )
        pages = harness.config.logical_pages
        total_luns = harness.config.geometry.total_luns
        # Fill everything once (cold data pinned by stripe)...
        for lpn in range(pages):
            harness.write(lpn)
        harness.run()
        # ...then overwrite only LUN 0's stripe, repeatedly.
        lun0 = [lpn for lpn in range(pages) if lpn % total_luns == 0]
        for round_ in range(6):
            for lpn in lun0:
                harness.write(lpn)
            harness.run()
        harness.controller.check_invariants()
        assert len(harness.completed) == pages + 6 * len(lun0)
